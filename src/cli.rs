//! Command-line front end logic for the `fd` binary.
//!
//! Kept as a library module (pure functions over parsed options) so the
//! argument parser and command dispatch are unit-testable without
//! spawning processes. The binary in `src/bin/fd.rs` is a thin wrapper.

use crate::core::{
    approx_full_disjunction, canonicalize, format_results, full_disjunction, threshold, top_k,
    AMin, EditDistanceSim, FMax, ImpScores, ProbScores, RankedFdIter,
};
use crate::relational::textio;
use crate::relational::Database;
use std::fmt::Write as _;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Options {
    /// Path of the input database (textual format), or `None` for the
    /// built-in tourist example.
    pub input: Option<String>,
    /// Emit only the first `k` results.
    pub top: Option<usize>,
    /// Rank by this attribute's values (numeric attributes only);
    /// requires `top` or `min_rank`.
    pub rank_attr: Option<String>,
    /// Threshold mode: emit every result with rank ≥ this value.
    pub min_rank: Option<f64>,
    /// Approximate mode with this similarity threshold τ.
    pub approx_tau: Option<f64>,
    /// Print the source tables before the result.
    pub show_sources: bool,
}

/// Usage text.
pub const USAGE: &str = "\
fd — full disjunctions from the command line

USAGE:
    fd [FILE] [OPTIONS]

With no FILE, runs on the paper's built-in tourist example. FILE uses the
textual format:

    relation Climates(Country, Climate)
    Canada | diverse
    UK     | temperate

OPTIONS:
    --top K            emit only the K best results (requires --rank-by)
    --rank-by ATTR     rank by the numeric attribute ATTR (f_max semantics)
    --min-rank X       emit every result ranking at least X (requires --rank-by)
    --approx TAU       approximate full disjunction (edit-distance A_min, threshold TAU)
    --sources          print the source relations first
    --help             this text
";

/// Parses argv (without the program name).
pub fn parse_args<I, S>(args: I) -> Result<Options, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let arg = arg.as_ref();
        match arg {
            "--help" | "-h" => return Err(USAGE.to_owned()),
            "--sources" => opts.show_sources = true,
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                opts.top = Some(
                    v.as_ref()
                        .parse()
                        .map_err(|_| format!("bad --top value: {}", v.as_ref()))?,
                );
            }
            "--rank-by" => {
                let v = it.next().ok_or("--rank-by needs an attribute name")?;
                opts.rank_attr = Some(v.as_ref().to_owned());
            }
            "--min-rank" => {
                let v = it.next().ok_or("--min-rank needs a value")?;
                opts.min_rank = Some(
                    v.as_ref()
                        .parse()
                        .map_err(|_| format!("bad --min-rank value: {}", v.as_ref()))?,
                );
            }
            "--approx" => {
                let v = it.next().ok_or("--approx needs a threshold")?;
                let tau: f64 = v
                    .as_ref()
                    .parse()
                    .map_err(|_| format!("bad --approx value: {}", v.as_ref()))?;
                if !(0.0..=1.0).contains(&tau) {
                    return Err("--approx threshold must be within [0, 1]".into());
                }
                opts.approx_tau = Some(tau);
            }
            _ if arg.starts_with('-') => return Err(format!("unknown option: {arg}\n\n{USAGE}")),
            _ => {
                if opts.input.is_some() {
                    return Err("more than one input file given".into());
                }
                opts.input = Some(arg.to_owned());
            }
        }
    }
    if (opts.top.is_some() || opts.min_rank.is_some()) && opts.rank_attr.is_none() {
        return Err("--top/--min-rank require --rank-by ATTR".into());
    }
    if opts.rank_attr.is_some() && opts.top.is_none() && opts.min_rank.is_none() {
        return Err("--rank-by requires --top K or --min-rank X".into());
    }
    Ok(opts)
}

/// Loads the database named by the options.
pub fn load_database(opts: &Options) -> Result<Database, String> {
    match &opts.input {
        None => Ok(crate::relational::tourist_database()),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            textio::parse_database(&text).map_err(|e| e.to_string())
        }
    }
}

/// Builds `imp(t)` from a numeric attribute: the attribute's value when
/// the tuple has it (non-null, numeric), otherwise 0.
fn attribute_importance(db: &Database, attr_name: &str) -> Result<ImpScores, String> {
    let attr = db
        .attr_id(attr_name)
        .map_err(|_| format!("unknown attribute '{attr_name}'"))?;
    Ok(ImpScores::from_fn(db, |t| match db.tuple_value(t, attr) {
        Some(crate::relational::Value::Int(i)) => *i as f64,
        Some(crate::relational::Value::Float(f)) => *f,
        _ => 0.0,
    }))
}

/// Runs the command described by the options and renders the output.
pub fn run(opts: &Options) -> Result<String, String> {
    let db = load_database(opts)?;
    let mut out = String::new();
    if opts.show_sources {
        for rel in db.relations() {
            let _ = writeln!(out, "{}", textio::format_relation(&db, rel.id()));
        }
    }

    if let Some(tau) = opts.approx_tau {
        let a = AMin::new(EditDistanceSim, ProbScores::uniform(&db, 1.0));
        let afd = canonicalize(approx_full_disjunction(&db, &a, tau));
        let _ = write!(
            out,
            "{}",
            format_results(
                &db,
                &format!("Approximate full disjunction (τ = {tau})"),
                &afd
            )
        );
        return Ok(out);
    }

    match (&opts.rank_attr, opts.top, opts.min_rank) {
        (Some(attr), Some(k), _) => {
            let imp = attribute_importance(&db, attr)?;
            let f = FMax::new(&imp);
            let ranked = top_k(&db, &f, k);
            let sets: Vec<_> = ranked.iter().map(|(s, _)| s.clone()).collect();
            let _ = write!(
                out,
                "{}",
                format_results(&db, &format!("Top-{k} by max({attr})"), &sets)
            );
            for (set, rank) in &ranked {
                let _ = writeln!(out, "rank {rank:>8.3}  {}", set.label(&db));
            }
        }
        (Some(attr), None, Some(min_rank)) => {
            let imp = attribute_importance(&db, attr)?;
            let f = FMax::new(&imp);
            let ranked = threshold(&db, &f, min_rank);
            let sets: Vec<_> = ranked.iter().map(|(s, _)| s.clone()).collect();
            let _ = write!(
                out,
                "{}",
                format_results(
                    &db,
                    &format!("Results with max({attr}) ≥ {min_rank}"),
                    &sets
                )
            );
        }
        _ => {
            let fd = canonicalize(full_disjunction(&db));
            let _ = write!(
                out,
                "{}",
                format_results(
                    &db,
                    &format!("Full disjunction ({} tuple sets)", fd.len()),
                    &fd
                )
            );
        }
    }
    Ok(out)
}

/// Convenience: full ranked stream used by tests.
pub fn ranked_labels(db: &Database, attr: &str) -> Result<Vec<(String, f64)>, String> {
    let imp = attribute_importance(db, attr)?;
    let f = FMax::new(&imp);
    Ok(RankedFdIter::new(db, &f)
        .map(|(s, r)| (s.label(db), r))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let o = parse_args(Vec::<String>::new()).unwrap();
        assert_eq!(o, Options::default());
    }

    #[test]
    fn parse_full_invocation() {
        let o = parse_args(["db.txt", "--top", "5", "--rank-by", "Stars", "--sources"]).unwrap();
        assert_eq!(o.input.as_deref(), Some("db.txt"));
        assert_eq!(o.top, Some(5));
        assert_eq!(o.rank_attr.as_deref(), Some("Stars"));
        assert!(o.show_sources);
    }

    #[test]
    fn parse_rejects_inconsistent_options() {
        assert!(parse_args(["--top", "3"]).is_err());
        assert!(parse_args(["--rank-by", "Stars"]).is_err());
        assert!(parse_args(["--approx", "1.5"]).is_err());
        assert!(parse_args(["--bogus"]).is_err());
        assert!(parse_args(["a.txt", "b.txt"]).is_err());
    }

    #[test]
    fn run_plain_on_builtin_example() {
        let out = run(&Options::default()).unwrap();
        assert!(out.contains("6 tuple sets"));
        assert!(out.contains("{c1, a2, s1}"));
    }

    #[test]
    fn run_topk_on_builtin_example() {
        let opts = parse_args(["--top", "2", "--rank-by", "Stars"]).unwrap();
        let out = run(&opts).unwrap();
        // Highest Stars: Plaza (4), then Ramada (3).
        assert!(out.contains("Plaza"));
        assert!(out.contains("rank    4.000"));
    }

    #[test]
    fn run_threshold_on_builtin_example() {
        let opts = parse_args(["--min-rank", "4", "--rank-by", "Stars"]).unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("Plaza"));
        assert!(!out.contains("Ramada"));
    }

    #[test]
    fn run_approx_on_builtin_example() {
        let opts = parse_args(["--approx", "0.9"]).unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("Approximate"));
    }

    #[test]
    fn run_reports_unknown_attribute() {
        let opts = parse_args(["--top", "1", "--rank-by", "Nope"]).unwrap();
        assert!(run(&opts).unwrap_err().contains("Nope"));
    }

    #[test]
    fn ranked_labels_are_ordered() {
        let db = crate::relational::tourist_database();
        let ranked = ranked_labels(&db, "Stars").unwrap();
        assert_eq!(ranked.len(), 6);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
