//! Command-line front end logic for the `fd` binary.
//!
//! Kept as a library module (pure functions over parsed options) so the
//! argument parser and command dispatch are unit-testable without
//! spawning processes. The binary in `src/bin/fd.rs` is a thin wrapper.

use crate::core::serve::{
    self, AttrMax, Client, Command, ParseError, ServeError, ServeOptions, Server,
};
use crate::core::store::SNAPSHOT_FILE;
use crate::core::{
    canonicalize, format_results, trigger_shutdown_on_signals, AMin, EditDistanceSim, FMax,
    FdConfig, FdError, FdQuery, FdSession, FsyncPolicy, ImpScores, ProbScores, RankedFdIter,
    RankingFunction, StoreEngine,
};
use crate::relational::{textio, Change, Database, DeltaBatch};
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::time::Duration;

/// Where `fd serve`/`fd connect` bind/dial when `--addr` is not given.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7433";

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Options {
    /// `fd watch`: maintain the full disjunction under a mutation REPL.
    pub watch: bool,
    /// `fd serve`: run the network daemon over a shared session.
    pub serve: bool,
    /// `fd connect`: attach a wire-protocol client to a running daemon.
    pub connect: bool,
    /// `fd snapshot DIR`: offline checkpoint — fold the WAL into a fresh
    /// snapshot and truncate it.
    pub snapshot: bool,
    /// `fd recover DIR`: open a data directory, verify the recovered
    /// state against a from-scratch recomputation, print the results.
    pub recover: bool,
    /// `--addr HOST:PORT` for serve/connect (default [`DEFAULT_ADDR`]).
    pub addr: Option<String>,
    /// Path of the input database (textual format), or `None` for the
    /// built-in tourist example.
    pub input: Option<String>,
    /// Emit only the first `k` results.
    pub top: Option<usize>,
    /// Rank by this attribute's values (numeric attributes only);
    /// requires `top` or `min_rank`.
    pub rank_attr: Option<String>,
    /// Threshold mode: emit every result with rank ≥ this value.
    pub min_rank: Option<f64>,
    /// Approximate mode with this similarity threshold τ.
    pub approx_tau: Option<f64>,
    /// Store engine for the incremental algorithm (`--engine`).
    pub engine: Option<StoreEngine>,
    /// Block-based execution page size (`--page-size`).
    pub page_size: Option<usize>,
    /// Worker count for parallel execution (`--threads`).
    pub threads: Option<usize>,
    /// `fd watch --script FILE`: replay a mutation script from FILE
    /// instead of reading commands interactively.
    pub script: Option<String>,
    /// Print the source tables before the result.
    pub show_sources: bool,
    /// `fd serve --metrics-addr HOST:PORT`: also expose a plain-text
    /// HTTP metrics endpoint (`GET /metrics`) at this address.
    pub metrics_addr: Option<String>,
    /// `fd serve --log`: emit structured `key=value` event lines to
    /// stderr (connections, commits, reaps, protocol errors).
    pub log: bool,
    /// `fd serve --data-dir DIR`: durable session backed by DIR — every
    /// commit is WAL-appended before it is acknowledged, and an existing
    /// snapshot in DIR is recovered instead of reloading FILE.
    pub data_dir: Option<String>,
    /// `fd serve --fsync POLICY` (`always` | `on-commit` | `off`): how
    /// eagerly WAL appends reach stable storage. Requires `--data-dir`.
    pub fsync: Option<FsyncPolicy>,
    /// Batch modes: append the operation counters and query timings
    /// after the results (`--stats`).
    pub stats: bool,
}

impl Options {
    /// Has a subcommand (watch/serve/connect/snapshot/recover) already
    /// been selected?
    fn mode_chosen(&self) -> bool {
        self.watch || self.serve || self.connect || self.snapshot || self.recover
    }

    /// The execution configuration the flags describe.
    pub fn fd_config(&self) -> FdConfig {
        FdConfig {
            engine: self.engine.unwrap_or_default(),
            page_size: self.page_size,
            ..FdConfig::default()
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
fd — full disjunctions from the command line

USAGE:
    fd [FILE] [OPTIONS]
    fd watch [FILE] [OPTIONS]
    fd serve [FILE] [OPTIONS]
    fd connect [OPTIONS]
    fd snapshot DIR
    fd recover DIR

With no FILE, runs on the paper's built-in tourist example. FILE uses the
textual format:

    relation Climates(Country, Climate)
    Canada | diverse
    UK     | temperate

`fd watch` maintains the full disjunction while you mutate the database
from a REPL (one command per line on stdin; `--script FILE` replays the
same commands from FILE non-interactively):

    insert REL | V1 | V2 ...   add a tuple; prints +/- result events
    delete tN                  remove tuple N; prints +/- result events
    begin                      open a transaction: queue instead of apply
    commit                     apply every queued mutation atomically in
                               ONE maintenance pass; prints net events
    abort                      discard the queued mutations
    show                       print the current results
    quit                       exit

`fd serve` exposes the same session over TCP: a line-oriented protocol
that is a superset of the watch grammar (adds top / stats / metrics /
subscribe / unsubscribe / shutdown), with commit events fanned out to every
subscribed client. `fd connect` is the matching client (interactive on
stdin, or scripted via --script). Pass --rank-by ATTR --top K to serve a
ranked daemon whose `top` command reports the maintained window.

With --data-dir DIR the served session is durable: every commit is
appended to a write-ahead log in DIR before it is acknowledged, and
restarting against the same DIR recovers the exact pre-crash state
(snapshot + WAL replay — FILE is ignored once DIR holds a snapshot).
Graceful exits (the `shutdown` command, SIGTERM, SIGINT) fold the log
into a fresh snapshot; a SIGKILL loses nothing that was acknowledged.
`fd snapshot DIR` performs that compaction offline; `fd recover DIR`
opens DIR, verifies the recovered state against a from-scratch
recomputation, and prints the results.

OPTIONS:
    --addr HOST:PORT   serve/connect: bind/dial this address
                       (default 127.0.0.1:7433; port 0 picks one)
    --top K            emit only the K best results (requires --rank-by)
    --rank-by ATTR     rank by the numeric attribute ATTR (f_max semantics)
    --min-rank X       emit every result ranking at least X (requires --rank-by)
    --approx TAU       approximate full disjunction (edit-distance A_min, threshold TAU);
                       combines with --rank-by for ranked-approximate output
    --engine ENGINE    store engine: scan | indexed (default indexed; all modes)
    --page-size N      block-based execution with N tuples per page (all modes)
    --threads N        compute with up to N workers (all modes; ranked output
                       is identical to the sequential run, sets and order)
    --script FILE      watch/connect modes: replay commands from FILE
                       instead of stdin and print the resulting events
    --metrics-addr H:P serve: also expose Prometheus-style metrics over
                       HTTP at this address (GET /metrics; port 0 picks one)
    --log              serve: structured key=value event lines on stderr
    --data-dir DIR     serve: durable session backed by DIR (snapshot +
                       write-ahead log; recovers from DIR on restart)
    --fsync POLICY     serve: WAL flush policy: always | on-commit | off
                       (default on-commit; requires --data-dir)
    --stats            batch modes: append the operation counters and
                       query timings after the results
    --sources          print the source relations first
    --help             this text

Every mode is one FdQuery under the hood, so --engine/--page-size/--threads
apply uniformly — including ranked, approximate and watch runs (watch
parallelizes the initial materialization; deltas stay sequential).
";

/// Parses argv (without the program name).
pub fn parse_args<I, S>(args: I) -> Result<Options, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let arg = arg.as_ref();
        match arg {
            "--help" | "-h" => return Err(USAGE.to_owned()),
            "--sources" => opts.show_sources = true,
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                opts.top = Some(
                    v.as_ref()
                        .parse()
                        .map_err(|_| format!("bad --top value: {}", v.as_ref()))?,
                );
            }
            "--rank-by" => {
                let v = it.next().ok_or("--rank-by needs an attribute name")?;
                opts.rank_attr = Some(v.as_ref().to_owned());
            }
            "--min-rank" => {
                let v = it.next().ok_or("--min-rank needs a value")?;
                opts.min_rank = Some(
                    v.as_ref()
                        .parse()
                        .map_err(|_| format!("bad --min-rank value: {}", v.as_ref()))?,
                );
            }
            "--approx" => {
                let v = it.next().ok_or("--approx needs a threshold")?;
                let tau: f64 = v
                    .as_ref()
                    .parse()
                    .map_err(|_| format!("bad --approx value: {}", v.as_ref()))?;
                if !(0.0..=1.0).contains(&tau) {
                    return Err("--approx threshold must be within [0, 1]".into());
                }
                opts.approx_tau = Some(tau);
            }
            "--engine" => {
                let v = it.next().ok_or("--engine needs scan or indexed")?;
                opts.engine = Some(match v.as_ref() {
                    "scan" => StoreEngine::Scan,
                    "indexed" => StoreEngine::Indexed,
                    other => return Err(format!("bad --engine value: {other} (scan | indexed)")),
                });
            }
            "--page-size" => {
                let v = it.next().ok_or("--page-size needs a value")?;
                let n: usize = v
                    .as_ref()
                    .parse()
                    .map_err(|_| format!("bad --page-size value: {}", v.as_ref()))?;
                if n == 0 {
                    return Err("--page-size must be positive".into());
                }
                opts.page_size = Some(n);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v
                    .as_ref()
                    .parse()
                    .map_err(|_| format!("bad --threads value: {}", v.as_ref()))?;
                if n == 0 {
                    return Err("--threads must be positive".into());
                }
                opts.threads = Some(n);
            }
            "--script" => {
                let v = it.next().ok_or("--script needs a file path")?;
                opts.script = Some(v.as_ref().to_owned());
            }
            "--addr" => {
                let v = it.next().ok_or("--addr needs HOST:PORT")?;
                opts.addr = Some(v.as_ref().to_owned());
            }
            "--metrics-addr" => {
                let v = it.next().ok_or("--metrics-addr needs HOST:PORT")?;
                opts.metrics_addr = Some(v.as_ref().to_owned());
            }
            "--log" => opts.log = true,
            "--stats" => opts.stats = true,
            "--data-dir" => {
                let v = it.next().ok_or("--data-dir needs a directory path")?;
                opts.data_dir = Some(v.as_ref().to_owned());
            }
            "--fsync" => {
                let v = it.next().ok_or("--fsync needs always, on-commit or off")?;
                opts.fsync = Some(v.as_ref().parse().map_err(|_| {
                    format!(
                        "bad --fsync value: {} (always | on-commit | off)",
                        v.as_ref()
                    )
                })?);
            }
            "watch" if !opts.mode_chosen() && opts.input.is_none() => opts.watch = true,
            "serve" if !opts.mode_chosen() && opts.input.is_none() => opts.serve = true,
            "connect" if !opts.mode_chosen() && opts.input.is_none() => opts.connect = true,
            "snapshot" if !opts.mode_chosen() && opts.input.is_none() => opts.snapshot = true,
            "recover" if !opts.mode_chosen() && opts.input.is_none() => opts.recover = true,
            _ if arg.starts_with('-') => return Err(format!("unknown option: {arg}\n\n{USAGE}")),
            _ => {
                if opts.input.is_some() {
                    return Err("more than one input file given".into());
                }
                opts.input = Some(arg.to_owned());
            }
        }
    }
    if (opts.top.is_some() || opts.min_rank.is_some()) && opts.rank_attr.is_none() {
        return Err("--top/--min-rank require --rank-by ATTR".into());
    }
    if opts.rank_attr.is_some() && opts.top.is_none() && opts.min_rank.is_none() {
        return Err("--rank-by requires --top K or --min-rank X".into());
    }
    if opts.watch
        && (opts.top.is_some()
            || opts.rank_attr.is_some()
            || opts.min_rank.is_some()
            || opts.approx_tau.is_some())
    {
        return Err("watch mode does not combine with ranking/approx options".into());
    }
    if opts.script.is_some() && !(opts.watch || opts.connect) {
        return Err("--script only applies to watch/connect modes".into());
    }
    if opts.addr.is_some() && !(opts.serve || opts.connect) {
        return Err("--addr only applies to serve/connect modes".into());
    }
    if (opts.metrics_addr.is_some() || opts.log) && !opts.serve {
        return Err("--metrics-addr/--log only apply to serve mode".into());
    }
    if (opts.data_dir.is_some() || opts.fsync.is_some()) && !opts.serve {
        return Err("--data-dir/--fsync only apply to serve mode".into());
    }
    if opts.fsync.is_some() && opts.data_dir.is_none() {
        return Err("--fsync requires --data-dir DIR".into());
    }
    if opts.snapshot || opts.recover {
        let mode = if opts.snapshot { "snapshot" } else { "recover" };
        if opts.input.is_none() {
            return Err(format!("fd {mode} needs a data directory"));
        }
        if opts.top.is_some()
            || opts.rank_attr.is_some()
            || opts.min_rank.is_some()
            || opts.approx_tau.is_some()
            || opts.threads.is_some()
            || opts.show_sources
            || opts.stats
        {
            return Err(format!("fd {mode} takes only a data directory"));
        }
    }
    if opts.stats && (opts.watch || opts.serve || opts.connect) {
        return Err(
            "--stats only applies to the batch query modes (serve exposes `stats`/`metrics`)"
                .into(),
        );
    }
    if opts.serve && (opts.min_rank.is_some() || opts.approx_tau.is_some()) {
        return Err(
            "serve mode ranks via --rank-by ATTR --top K only (no --min-rank/--approx)".into(),
        );
    }
    if opts.connect
        && (opts.input.is_some()
            || opts.top.is_some()
            || opts.rank_attr.is_some()
            || opts.min_rank.is_some()
            || opts.approx_tau.is_some()
            || opts.engine.is_some()
            || opts.page_size.is_some()
            || opts.threads.is_some()
            || opts.show_sources)
    {
        return Err("connect mode only combines with --addr and --script".into());
    }
    Ok(opts)
}

/// Loads the database named by the options.
pub fn load_database(opts: &Options) -> Result<Database, String> {
    match &opts.input {
        None => Ok(crate::relational::tourist_database()),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            textio::parse_database(&text).map_err(|e| e.to_string())
        }
    }
}

/// Builds `imp(t)` from a numeric attribute: the attribute's value when
/// the tuple has it (non-null, numeric), otherwise 0.
fn attribute_importance(db: &Database, attr_name: &str) -> Result<ImpScores, String> {
    let attr = db
        .attr_id(attr_name)
        .map_err(|_| format!("unknown attribute '{attr_name}'"))?;
    Ok(ImpScores::from_fn(db, |t| match db.tuple_value(t, attr) {
        Some(crate::relational::Value::Int(i)) => *i as f64,
        Some(crate::relational::Value::Float(f)) => *f,
        _ => 0.0,
    }))
}

/// Builds the one [`FdQuery`] every subcommand executes. `imp` must be
/// the importance assignment for `opts.rank_attr` when that is set.
fn build_query<'db>(
    opts: &Options,
    db: &'db Database,
    imp: Option<&'db ImpScores>,
) -> FdQuery<'db> {
    let mut query = FdQuery::over(db).with_config(opts.fd_config());
    if let Some(n) = opts.threads {
        query = query.parallel(n);
    }
    if let Some(tau) = opts.approx_tau {
        query = query.approx(
            AMin::new(EditDistanceSim, ProbScores::uniform(db, 1.0)),
            tau,
        );
    }
    if let Some(imp) = imp {
        query = query.ranked(FMax::new(imp));
        if let Some(k) = opts.top {
            query = query.top_k(k);
        }
        if let Some(t) = opts.min_rank {
            query = query.threshold(t);
        }
    }
    query
}

/// The headline describing what the options asked for.
fn headline(opts: &Options, n_results: usize) -> String {
    let approx = opts
        .approx_tau
        .map(|tau| format!(", approximate (τ = {tau})"))
        .unwrap_or_default();
    match &opts.rank_attr {
        Some(attr) => match (opts.top, opts.min_rank) {
            (Some(k), Some(t)) => format!("Top-{k} by max({attr}) with rank ≥ {t}{approx}"),
            (Some(k), None) => format!("Top-{k} by max({attr}){approx}"),
            (None, Some(t)) => format!("Results with max({attr}) ≥ {t}{approx}"),
            (None, None) => format!("Ranked by max({attr}){approx}"),
        },
        None => match opts.approx_tau {
            Some(tau) => format!("Approximate full disjunction (τ = {tau})"),
            None => format!("Full disjunction ({n_results} tuple sets)"),
        },
    }
}

/// Runs the command described by the options and renders the output.
pub fn run(opts: &Options) -> Result<String, String> {
    let db = load_database(opts)?;
    let mut out = String::new();
    if opts.show_sources {
        for rel in db.relations() {
            let _ = writeln!(out, "{}", textio::format_relation(&db, rel.id()));
        }
    }

    let imp = match &opts.rank_attr {
        Some(attr) => Some(attribute_importance(&db, attr)?),
        None => None,
    };
    let result = build_query(opts, &db, imp.as_ref())
        .run()
        .map_err(|e| e.to_string())?;

    let ranked = result.ranks().map(|r| r.to_vec());
    let run_stats = *result.stats();
    let timings = result.timings();
    let sets = if ranked.is_some() {
        // Ranked modes: keep the emission (rank) order.
        result.into_sets()
    } else {
        canonicalize(result.into_sets())
    };
    let _ = write!(
        out,
        "{}",
        format_results(&db, &headline(opts, sets.len()), &sets)
    );
    if let Some(ranks) = ranked {
        for (set, rank) in sets.iter().zip(ranks) {
            let _ = writeln!(out, "rank {rank:>8.3}  {}", set.label(&db));
        }
    }
    if opts.stats {
        let _ = writeln!(out, "\nstats:");
        let _ = write!(out, "{run_stats}");
        let _ = writeln!(out, "wall_us={}", timings.wall.as_micros());
        if let Some(d) = timings.first_result {
            let _ = writeln!(out, "first_result_us={}", d.as_micros());
        }
        if let Some(d) = timings.kth_result {
            let _ = writeln!(out, "kth_result_us={}", d.as_micros());
        }
    }
    Ok(out)
}

/// The `fd watch` REPL: maintains the full disjunction of the loaded
/// database through an [`FdSession`] while mutation commands arrive on
/// `input` (or, with `--script FILE`, from the file), writing result
/// events (`+ {…}` / `- {…}`) to `out`. Line protocol:
///
/// ```text
/// insert REL | V1 | V2 ...   delete tN (or: delete N)
/// begin   commit   abort     show   quit
/// ```
///
/// Outside a transaction every `insert`/`delete` commits immediately
/// (a batch of one). Between `begin` and `commit` mutations queue up and
/// land atomically in **one** maintenance pass; a rejected commit
/// discards the whole batch and changes nothing.
///
/// Errors on individual commands are reported and the loop continues;
/// only I/O failures abort.
pub fn run_watch(opts: &Options, input: impl BufRead, mut out: impl Write) -> Result<(), String> {
    // `parse_args` already rejects these, but `run_watch` is a public
    // entry point over public `Options` fields — guard here too so a
    // programmatic caller gets an error, not a silently dropped option.
    if opts.approx_tau.is_some()
        || opts.rank_attr.is_some()
        || opts.top.is_some()
        || opts.min_rank.is_some()
    {
        return Err("watch mode does not combine with ranking/approx options".into());
    }
    let db = load_database(opts)?;
    // Validate + derive the configuration through the query, then hand
    // the database over by move — `FdQuery::session` would clone it.
    // `--threads` parallelizes the initial materialization only; the
    // per-commit maintenance passes are sequential.
    let query = build_query(opts, &db, None);
    query.validate().map_err(|e| e.to_string())?;
    let cfg = query.config();
    let threads = opts.threads;
    drop(query); // release the borrow of `db` before moving it
    let mut state = WatchState {
        session: FdSession::with_config_parallel(db, cfg, threads),
        pending: None,
    };
    // Non-interactive mode: replay the script file instead of `input`.
    let script_text = match &opts.script {
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?)
        }
        None => None,
    };
    let reader: Box<dyn BufRead> = match &script_text {
        Some(text) => Box::new(text.as_bytes()),
        None => Box::new(input),
    };
    let emit = |out: &mut dyn Write, line: &str| -> Result<(), String> {
        writeln!(out, "{line}").map_err(|e| format!("write failed: {e}"))
    };
    emit(
        &mut out,
        &format!(
            "watching {} ({} results); insert REL | V.. / delete tN / begin / commit / show / quit",
            opts.input.as_deref().unwrap_or("the tourist example"),
            state.session.len()
        ),
    )?;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read failed: {e}"))?;
        let cmd = line.trim();
        if cmd.is_empty() || cmd.starts_with('#') {
            continue;
        }
        if cmd == "quit" || cmd == "exit" {
            break;
        }
        if cmd == "show" {
            for set in state.session.canonical_results() {
                emit(&mut out, &format!("  {}", set.label(state.session.db())))?;
            }
            continue;
        }
        match state.command(cmd) {
            Ok(lines) => {
                for l in lines {
                    emit(&mut out, &l)?;
                }
            }
            Err(msg) => emit(&mut out, &format!("error: {msg}"))?,
        }
    }
    emit(&mut out, &format!("bye ({} results)", state.session.len()))?;
    Ok(())
}

/// The watch REPL's mutable state: the session plus the open
/// transaction, if any.
struct WatchState {
    session: FdSession<'static>,
    pending: Option<DeltaBatch>,
}

impl WatchState {
    /// Executes one command, returning the lines to print (status first,
    /// then one `+`/`-` line per event). The grammar is
    /// [`serve::parse_command`] — the same parser the daemon uses, so a
    /// watch script is a valid `fd connect` script — rendered with the
    /// REPL's historical wording.
    fn command(&mut self, cmd: &str) -> Result<Vec<String>, String> {
        let parsed = serve::parse_command(cmd).map_err(|e| match e {
            ParseError::Unknown { cmd } => format!(
                "unknown command: {cmd} (insert / delete / begin / commit / abort / show / quit)"
            ),
            other => other.to_string(),
        })?;
        match parsed {
            Command::Begin => {
                if self.pending.is_some() {
                    return Err("a batch is already open (commit or abort first)".into());
                }
                self.pending = Some(self.session.begin());
                Ok(vec!["begin (mutations now queue until commit)".into()])
            }
            Command::Commit => {
                let batch = self.pending.take().ok_or("no open batch (begin first)")?;
                let n = batch.len();
                // A rejected commit discards the batch: transactional
                // all-or-nothing, nothing to retry piecemeal.
                let commit = self
                    .session
                    .commit(batch)
                    .map_err(|e| format!("{e} (batch of {n} discarded)"))?;
                let mut lines = vec![format!(
                    "committed {} mutation(s) in 1 maintenance pass",
                    commit.changes.len()
                )];
                for change in &commit.changes {
                    lines.push(self.change_line(change));
                }
                lines.extend(commit.events.iter().map(|e| e.label(self.session.db())));
                Ok(lines)
            }
            Command::Abort => {
                let batch = self.pending.take().ok_or("no open batch (begin first)")?;
                Ok(vec![format!(
                    "aborted ({} queued mutation(s) discarded)",
                    batch.len()
                )])
            }
            Command::Insert {
                rel: rel_name,
                values,
            } => {
                let rel = self
                    .session
                    .db()
                    .relation_by_name(&rel_name)
                    .map_err(|e| e.to_string())?
                    .id();
                if let Some(batch) = &mut self.pending {
                    batch.insert(rel, values);
                    return Ok(vec![format!(
                        "queued insert into {rel_name} ({} pending)",
                        batch.len()
                    )]);
                }
                let commit = self
                    .session
                    .apply(crate::relational::Delta::Insert { rel, values })
                    .map_err(|e| e.to_string())?;
                let tuple = commit.inserted()[0];
                let mut lines = vec![format!(
                    "inserted {} into {rel_name}",
                    self.session.db().tuple_label(tuple)
                )];
                lines.extend(commit.events.iter().map(|e| e.label(self.session.db())));
                Ok(lines)
            }
            Command::Delete(tuple) => {
                if let Some(batch) = &mut self.pending {
                    batch.delete(tuple);
                    return Ok(vec![format!(
                        "queued delete t{} ({} pending)",
                        tuple.0,
                        batch.len()
                    )]);
                }
                let commit = self
                    .session
                    .apply(crate::relational::Delta::Delete { tuple })
                    .map_err(|e| e.to_string())?;
                // Tombstones retain row data, so the label still renders.
                let mut lines = vec![format!("deleted {}", self.session.db().tuple_label(tuple))];
                lines.extend(commit.events.iter().map(|e| e.label(self.session.db())));
                Ok(lines)
            }
            // `show`/`quit` are intercepted by the REPL loop before
            // parsing; nothing to do if a caller routes them here.
            Command::Show | Command::Quit => Ok(vec![]),
            // The serve-only extensions of the shared grammar.
            Command::Top
            | Command::Stats
            | Command::Metrics
            | Command::Subscribe
            | Command::Unsubscribe
            | Command::Shutdown => {
                let word = cmd.trim();
                Err(format!(
                    "{word} is only available over fd serve (use fd connect)"
                ))
            }
        }
    }

    /// Renders one realized change the way the singleton path prints it.
    fn change_line(&self, change: &Change) -> String {
        let db = self.session.db();
        match change {
            Change::Inserted { rel, tuple } => format!(
                "inserted {} into {}",
                db.tuple_label(*tuple),
                db.relation(*rel).name()
            ),
            Change::Removed { tuple, .. } => format!("deleted {}", db.tuple_label(*tuple)),
        }
    }
}

/// Builds the session a `fd serve` daemon exposes: plain, or — with
/// `--rank-by ATTR --top K` — ranked under the owned [`AttrMax`]
/// function (a frozen [`ImpScores`] table would pin the session's
/// lifetime and default later-inserted tuples to rank 0; `AttrMax`
/// evaluates the live attribute value instead).
pub fn build_serve_session(opts: &Options) -> Result<FdSession<'static>, String> {
    if let Some(dir) = &opts.data_dir {
        return build_durable_serve_session(opts, dir);
    }
    build_fresh_serve_session(opts)
}

/// The non-durable session: FILE (or the tourist example) materialized
/// in memory.
fn build_fresh_serve_session(opts: &Options) -> Result<FdSession<'static>, String> {
    let db = load_database(opts)?;
    let cfg = opts.fd_config();
    let threads = opts.threads;
    match &opts.rank_attr {
        None => Ok(FdSession::with_config_parallel(db, cfg, threads)),
        Some(attr) => {
            let k = opts
                .top
                .ok_or("a ranked daemon needs a window: --rank-by requires --top K")?;
            let f = AttrMax::new(&db, attr).map_err(|e| serve_error(&e))?;
            Ok(FdSession::ranked_with_config_parallel(
                db, f, k, cfg, threads,
            ))
        }
    }
}

/// The durable session behind `fd serve --data-dir DIR`: recover from
/// an existing snapshot (FILE is then ignored — the directory *is* the
/// database), or materialize FILE and start a fresh history in DIR.
fn build_durable_serve_session(opts: &Options, dir: &str) -> Result<FdSession<'static>, String> {
    let policy = opts.fsync.unwrap_or_default();
    let cfg = opts.fd_config();
    if std::path::Path::new(dir).join(SNAPSHOT_FILE).exists() {
        return match &opts.rank_attr {
            None => FdSession::open_with_config(dir, cfg, policy).map_err(|e| e.to_string()),
            Some(attr) => {
                let k = opts
                    .top
                    .ok_or("a ranked daemon needs a window: --rank-by requires --top K")?;
                let attr = attr.clone();
                FdSession::open_ranked_with_config(dir, cfg, policy, k, move |db| {
                    AttrMax::new(db, &attr)
                        .map(|f| Box::new(f) as Box<dyn RankingFunction + Send>)
                        .map_err(|e| FdError::Storage {
                            reason: serve_error(&e),
                        })
                })
                .map_err(|e| e.to_string())
            }
        };
    }
    let mut session = build_fresh_serve_session(opts)?;
    session.persist_to(dir, policy).map_err(|e| e.to_string())?;
    Ok(session)
}

/// Renders a [`ServeError`] for the CLI (drops the `protocol:` prefix on
/// config-level complaints like an unknown attribute).
fn serve_error(e: &ServeError) -> String {
    match e {
        ServeError::Protocol { reason } => reason.clone(),
        other => other.to_string(),
    }
}

/// The `fd serve` daemon: binds `--addr` (default [`DEFAULT_ADDR`]),
/// prints the bound address, and blocks until a client issues
/// `shutdown` — or, equivalently, the process receives SIGTERM/SIGINT:
/// both paths flush subscriber queues, join forwarders, and (with
/// `--data-dir`) write a final snapshot. With `--data-dir`, even a
/// SIGKILL loses nothing acknowledged: the WAL replays on restart.
pub fn run_serve(opts: &Options, mut out: impl Write) -> Result<(), String> {
    let session = build_serve_session(opts)?;
    let addr = opts.addr.as_deref().unwrap_or(DEFAULT_ADDR);
    let options = ServeOptions {
        metrics_addr: opts.metrics_addr.clone(),
        log: opts.log,
    };
    let server = Server::start_with(session, addr, options).map_err(|e| serve_error(&e))?;
    trigger_shutdown_on_signals(server.shutdown_handle());
    let bound = server.addr();
    let (n, replayed) = server
        .handle()
        .with(|s| (s.len(), s.replayed_batches()))
        .map_err(|e| serve_error(&e))?;
    writeln!(
        out,
        "fd serve: listening on {bound} ({n} results); attach with: fd connect --addr {bound}"
    )
    .map_err(|e| format!("write failed: {e}"))?;
    if let Some(dir) = &opts.data_dir {
        writeln!(
            out,
            "fd serve: durable in {dir} (fsync {}, {replayed} WAL batches replayed)",
            opts.fsync.unwrap_or_default()
        )
        .map_err(|e| format!("write failed: {e}"))?;
    }
    if let Some(maddr) = server.metrics_addr() {
        writeln!(out, "fd serve: metrics on http://{maddr}/metrics")
            .map_err(|e| format!("write failed: {e}"))?;
    }
    // Piped stdout is block-buffered: push the line out before blocking,
    // so a supervising script can read the bound address.
    out.flush().map_err(|e| format!("flush failed: {e}"))?;
    server.wait().map_err(|e| serve_error(&e))
}

/// The `fd snapshot DIR` command: offline compaction — recover the
/// session from DIR, fold the WAL tail into a fresh snapshot, truncate
/// the log. A daemon restarting against DIR then replays zero batches.
pub fn run_snapshot(opts: &Options, mut out: impl Write) -> Result<(), String> {
    let dir = opts
        .input
        .as_deref()
        .ok_or("fd snapshot needs a data directory")?;
    let mut session = FdSession::open_with_config(dir, opts.fd_config(), FsyncPolicy::default())
        .map_err(|e| e.to_string())?;
    let replayed = session.replayed_batches();
    session.checkpoint().map_err(|e| e.to_string())?;
    writeln!(
        out,
        "fd snapshot: {dir} compacted ({} results, {replayed} WAL batches folded in)",
        session.len()
    )
    .map_err(|e| format!("write failed: {e}"))
}

/// The `fd recover DIR` command: open the data directory as a recovery
/// would, verify the recovered state against a from-scratch
/// recomputation of the full disjunction, and print the results.
pub fn run_recover(opts: &Options, mut out: impl Write) -> Result<(), String> {
    let dir = opts
        .input
        .as_deref()
        .ok_or("fd recover needs a data directory")?;
    let session = FdSession::open_with_config(dir, opts.fd_config(), FsyncPolicy::default())
        .map_err(|e| e.to_string())?;
    let emit = |out: &mut dyn Write, line: &str| -> Result<(), String> {
        writeln!(out, "{line}").map_err(|e| format!("write failed: {e}"))
    };
    emit(
        &mut out,
        &format!(
            "fd recover: {dir} opened ({} results, {} WAL batches replayed)",
            session.len(),
            session.replayed_batches()
        ),
    )?;
    if !session.verify_snapshot() {
        return Err("recovered state does not match a from-scratch recomputation".into());
    }
    emit(
        &mut out,
        "verified: recovered state equals the full disjunction recomputed from scratch",
    )?;
    for set in session.canonical_results() {
        emit(&mut out, &format!("  {}", set.label(session.db())))?;
    }
    Ok(())
}

/// The `fd connect` client: dials the daemon (retrying briefly, so a
/// script can race a just-spawned `fd serve`), prints the greeting, then
/// runs commands from `--script FILE` (or `input`) in lockstep — send a
/// line, print the reply block. Asynchronous `event` lines print in
/// arrival order, with the first reply block read after they land. A
/// session not ending in `quit`/`shutdown` is closed with a `quit`.
pub fn run_connect(opts: &Options, input: impl BufRead, mut out: impl Write) -> Result<(), String> {
    let addr = opts.addr.as_deref().unwrap_or(DEFAULT_ADDR);
    let mut client = Client::connect_retry(addr, Duration::from_secs(10))
        .map_err(|e| format!("cannot connect to {addr}: {}", serve_error(&e)))?;
    let emit = |out: &mut dyn Write, lines: &[String]| -> Result<(), String> {
        for line in lines {
            writeln!(out, "{line}").map_err(|e| format!("write failed: {e}"))?;
        }
        Ok(())
    };
    let greeting = client.read_response().map_err(|e| serve_error(&e))?;
    emit(&mut out, &greeting)?;

    let script_text = match &opts.script {
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?)
        }
        None => None,
    };
    let reader: Box<dyn BufRead> = match &script_text {
        Some(text) => Box::new(text.as_bytes()),
        None => Box::new(input),
    };
    let mut closed = false;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read failed: {e}"))?;
        let cmd = line.trim();
        if cmd.is_empty() || cmd.starts_with('#') {
            continue;
        }
        client.send(cmd).map_err(|e| serve_error(&e))?;
        let reply = client.read_response().map_err(|e| serve_error(&e))?;
        emit(&mut out, &reply)?;
        let status = reply.last().map(String::as_str).unwrap_or_default();
        if status == "ok bye" || status == "ok shutting down" {
            closed = true;
            break;
        }
    }
    if !closed {
        // Input ran dry (ctrl-d / script without quit): close cleanly.
        if client.send("quit").is_ok() {
            if let Ok(reply) = client.read_response() {
                emit(&mut out, &reply)?;
            }
        }
    }
    // Trailing event lines that raced the close.
    let rest = client.drain().map_err(|e| serve_error(&e))?;
    emit(&mut out, &rest)?;
    Ok(())
}

/// Convenience: full ranked stream used by tests.
pub fn ranked_labels(db: &Database, attr: &str) -> Result<Vec<(String, f64)>, String> {
    let imp = attribute_importance(db, attr)?;
    let f = FMax::new(&imp);
    Ok(RankedFdIter::new(db, &f)
        .map(|(s, r)| (s.label(db), r))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let o = parse_args(Vec::<String>::new()).unwrap();
        assert_eq!(o, Options::default());
    }

    #[test]
    fn parse_full_invocation() {
        let o = parse_args(["db.txt", "--top", "5", "--rank-by", "Stars", "--sources"]).unwrap();
        assert_eq!(o.input.as_deref(), Some("db.txt"));
        assert_eq!(o.top, Some(5));
        assert_eq!(o.rank_attr.as_deref(), Some("Stars"));
        assert!(o.show_sources);
    }

    #[test]
    fn parse_rejects_inconsistent_options() {
        assert!(parse_args(["--top", "3"]).is_err());
        assert!(parse_args(["--rank-by", "Stars"]).is_err());
        assert!(parse_args(["--approx", "1.5"]).is_err());
        assert!(parse_args(["--bogus"]).is_err());
        assert!(parse_args(["a.txt", "b.txt"]).is_err());
    }

    #[test]
    fn parse_engine_and_page_size_flags() {
        let o = parse_args(["--engine", "scan", "--page-size", "8"]).unwrap();
        assert_eq!(o.engine, Some(StoreEngine::Scan));
        assert_eq!(o.page_size, Some(8));
        let cfg = o.fd_config();
        assert_eq!(cfg.engine, StoreEngine::Scan);
        assert_eq!(cfg.page_size, Some(8));

        let o = parse_args(["--engine", "indexed"]).unwrap();
        assert_eq!(o.engine, Some(StoreEngine::Indexed));
        // Defaults flow through untouched.
        assert_eq!(Options::default().fd_config().engine, StoreEngine::Indexed);
        assert_eq!(Options::default().fd_config().page_size, None);
    }

    #[test]
    fn parse_rejects_bad_engine_and_page_size() {
        assert!(parse_args(["--engine", "btree"]).is_err());
        assert!(parse_args(["--engine"]).is_err());
        assert!(parse_args(["--page-size", "0"]).is_err());
        assert!(parse_args(["--page-size", "x"]).is_err());
    }

    #[test]
    fn parse_threads_flag() {
        let o = parse_args(["--threads", "4"]).unwrap();
        assert_eq!(o.threads, Some(4));
        // Valid together with ranked mode — the parallel × ranked
        // rejection is gone.
        let o = parse_args(["--threads", "2", "--top", "3", "--rank-by", "Stars"]).unwrap();
        assert_eq!(o.threads, Some(2));
        assert_eq!(o.top, Some(3));
        // And with watch (parallel initial materialization).
        let o = parse_args(["watch", "--threads", "2"]).unwrap();
        assert!(o.watch);
        assert_eq!(o.threads, Some(2));
        assert!(parse_args(["--threads", "0"]).is_err());
        assert!(parse_args(["--threads", "x"]).is_err());
        assert!(parse_args(["--threads"]).is_err());
    }

    #[test]
    fn parse_serve_and_connect_modes() {
        let o = parse_args(["serve"]).unwrap();
        assert!(o.serve && !o.connect && !o.watch);
        assert!(o.addr.is_none(), "default address resolves at run time");

        let o = parse_args(["serve", "db.txt", "--addr", "0.0.0.0:9999"]).unwrap();
        assert!(o.serve);
        assert_eq!(o.input.as_deref(), Some("db.txt"));
        assert_eq!(o.addr.as_deref(), Some("0.0.0.0:9999"));

        // A ranked daemon: --rank-by + --top build an AttrMax window.
        let o = parse_args(["serve", "--rank-by", "Stars", "--top", "3"]).unwrap();
        assert_eq!(o.rank_attr.as_deref(), Some("Stars"));
        assert_eq!(o.top, Some(3));

        let o = parse_args(["connect", "--addr", "127.0.0.1:7000", "--script", "s.txt"]).unwrap();
        assert!(o.connect && !o.serve);
        assert_eq!(o.addr.as_deref(), Some("127.0.0.1:7000"));
        assert_eq!(o.script.as_deref(), Some("s.txt"));
    }

    #[test]
    fn parse_observability_flags() {
        let o = parse_args(["serve", "--metrics-addr", "127.0.0.1:9434", "--log"]).unwrap();
        assert!(o.serve && o.log);
        assert_eq!(o.metrics_addr.as_deref(), Some("127.0.0.1:9434"));

        let o = parse_args(["--stats"]).unwrap();
        assert!(o.stats);
        let o = parse_args(["--stats", "--top", "2", "--rank-by", "Stars"]).unwrap();
        assert!(o.stats);

        // Mode-scoped: metrics/log are serve-only, stats is batch-only.
        assert!(parse_args(["--metrics-addr", "127.0.0.1:9434"]).is_err());
        assert!(parse_args(["--log"]).is_err());
        assert!(parse_args(["watch", "--log"]).is_err());
        assert!(parse_args(["connect", "--metrics-addr", "127.0.0.1:9434"]).is_err());
        assert!(parse_args(["serve", "--stats"]).is_err());
        assert!(parse_args(["watch", "--stats"]).is_err());
        assert!(parse_args(["connect", "--stats"]).is_err());
        assert!(parse_args(["serve", "--metrics-addr"]).is_err());
    }

    #[test]
    fn parse_durability_flags_and_modes() {
        let o = parse_args([
            "serve",
            "db.txt",
            "--data-dir",
            "/tmp/d",
            "--fsync",
            "always",
        ])
        .unwrap();
        assert!(o.serve);
        assert_eq!(o.data_dir.as_deref(), Some("/tmp/d"));
        assert_eq!(o.fsync, Some(FsyncPolicy::Always));

        let o = parse_args(["serve", "--data-dir", "/tmp/d"]).unwrap();
        assert_eq!(o.fsync, None, "policy defaults at run time");

        let o = parse_args(["snapshot", "/tmp/d"]).unwrap();
        assert!(o.snapshot && !o.recover && !o.serve);
        assert_eq!(o.input.as_deref(), Some("/tmp/d"));
        let o = parse_args(["recover", "/tmp/d"]).unwrap();
        assert!(o.recover && !o.snapshot);
        assert_eq!(o.input.as_deref(), Some("/tmp/d"));

        // Flag scoping and required arguments.
        assert!(parse_args(["--data-dir", "/tmp/d"]).is_err());
        assert!(parse_args(["watch", "--data-dir", "/tmp/d"]).is_err());
        assert!(
            parse_args(["serve", "--fsync", "off"]).is_err(),
            "--fsync needs --data-dir"
        );
        assert!(parse_args(["serve", "--data-dir", "/tmp/d", "--fsync", "sometimes"]).is_err());
        assert!(parse_args(["serve", "--data-dir"]).is_err());
        assert!(parse_args(["snapshot"]).is_err(), "needs a directory");
        assert!(parse_args(["recover"]).is_err(), "needs a directory");
        assert!(parse_args(["snapshot", "/tmp/d", "--stats"]).is_err());
        assert!(parse_args(["recover", "/tmp/d", "--top", "2", "--rank-by", "Stars"]).is_err());
    }

    #[test]
    fn parse_rejects_inconsistent_serve_connect_options() {
        // --addr and --script are mode-scoped flags.
        assert!(parse_args(["--addr", "127.0.0.1:7000"]).is_err());
        assert!(parse_args(["watch", "--addr", "127.0.0.1:7000"]).is_err());
        assert!(parse_args(["serve", "--script", "s.txt"]).is_err());
        // Serve ranks via --rank-by/--top only.
        assert!(parse_args(["serve", "--rank-by", "Stars", "--min-rank", "3"]).is_err());
        assert!(parse_args(["serve", "--approx", "0.9"]).is_err());
        // Connect is a pure client: no local query options.
        assert!(parse_args(["connect", "db.txt"]).is_err());
        assert!(parse_args(["connect", "--threads", "2"]).is_err());
        assert!(parse_args(["connect", "--rank-by", "Stars", "--top", "2"]).is_err());
    }

    #[test]
    fn run_parallel_output_is_identical_to_sequential() {
        // Ranked, threshold, approx and plain batch runs must print the
        // same bytes with and without --threads.
        for base_args in [
            vec![],
            vec!["--top", "4", "--rank-by", "Stars"],
            vec!["--min-rank", "3", "--rank-by", "Stars"],
            vec!["--approx", "0.9"],
            vec!["--approx", "0.9", "--rank-by", "Stars", "--top", "2"],
        ] {
            let sequential = run(&parse_args(base_args.clone()).unwrap()).unwrap();
            for threads in ["1", "2", "4"] {
                let mut args = base_args.clone();
                args.extend(["--threads", threads]);
                let parallel = run(&parse_args(args).unwrap()).unwrap();
                assert_eq!(sequential, parallel, "{base_args:?} --threads {threads}");
            }
        }
    }

    #[test]
    fn engine_and_page_size_are_accepted_in_ranked_and_approx_modes() {
        // The FdQuery rewiring made every mode honor the execution
        // knobs — the old "refuse rather than silently ignore" parse
        // errors are gone.
        let o = parse_args(["--top", "2", "--rank-by", "Stars", "--engine", "scan"]).unwrap();
        assert_eq!(o.engine, Some(StoreEngine::Scan));
        let o = parse_args(["--approx", "0.9", "--page-size", "4"]).unwrap();
        assert_eq!(o.page_size, Some(4));
    }

    #[test]
    fn parse_watch_subcommand() {
        let o = parse_args(["watch"]).unwrap();
        assert!(o.watch);
        assert_eq!(o.input, None);

        let o = parse_args(["watch", "db.txt", "--engine", "scan"]).unwrap();
        assert!(o.watch);
        assert_eq!(o.input.as_deref(), Some("db.txt"));
        assert_eq!(o.engine, Some(StoreEngine::Scan));

        // "watch" after a file is a second positional, i.e. an input file.
        assert!(parse_args(["db.txt", "watch"]).is_err());
        // Watch does not combine with ranking modes.
        assert!(parse_args(["watch", "--top", "2", "--rank-by", "Stars"]).is_err());
    }

    #[test]
    fn run_plain_respects_engine_and_pages() {
        for args in [
            vec!["--engine", "scan"],
            vec!["--engine", "indexed", "--page-size", "3"],
        ] {
            let opts = parse_args(args).unwrap();
            let out = run(&opts).unwrap();
            assert!(out.contains("6 tuple sets"), "{out}");
        }
    }

    #[test]
    fn watch_repl_smoke() {
        let script = "insert Climates | Chile | arid\nshow\ndelete t10\nquit\n";
        let mut out = Vec::new();
        run_watch(
            &Options {
                watch: true,
                ..Options::default()
            },
            script.as_bytes(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("watching the tourist example (6 results)"),
            "{text}"
        );
        assert!(text.contains("inserted c4 into Climates"), "{text}");
        assert!(text.contains("+ {c4}"), "{text}");
        assert!(text.contains("deleted c4"), "{text}");
        assert!(text.contains("- {c4}"), "{text}");
        assert!(text.contains("bye (6 results)"), "{text}");
    }

    #[test]
    fn run_watch_rejects_ranking_and_approx_options_programmatically() {
        // Bypassing parse_args must not silently drop the options.
        for opts in [
            Options {
                watch: true,
                approx_tau: Some(0.9),
                ..Options::default()
            },
            Options {
                watch: true,
                rank_attr: Some("Stars".into()),
                top: Some(2),
                ..Options::default()
            },
        ] {
            let mut out = Vec::new();
            let err = run_watch(&opts, "quit\n".as_bytes(), &mut out).unwrap_err();
            assert!(err.contains("watch mode"), "{err}");
        }
    }

    #[test]
    fn watch_repl_accepts_threads_for_the_initial_materialization() {
        let script = "insert Climates | Chile | arid\nquit\n";
        let mut out = Vec::new();
        run_watch(
            &Options {
                watch: true,
                threads: Some(2),
                ..Options::default()
            },
            script.as_bytes(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("(6 results)"), "{text}");
        assert!(text.contains("+ {c4}"), "{text}");
    }

    #[test]
    fn parse_script_flag_requires_watch() {
        let o = parse_args(["watch", "--script", "muts.txt"]).unwrap();
        assert!(o.watch);
        assert_eq!(o.script.as_deref(), Some("muts.txt"));
        assert!(parse_args(["--script", "muts.txt"]).is_err());
        assert!(parse_args(["watch", "--script"]).is_err());
    }

    #[test]
    fn watch_repl_batches_mutations_into_one_commit() {
        let script = "\
begin
insert Climates | Chile | arid
insert Climates | Peru | arid
delete t3
commit
quit
";
        let mut out = Vec::new();
        run_watch(
            &Options {
                watch: true,
                ..Options::default()
            },
            script.as_bytes(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("begin (mutations now queue until commit)"),
            "{text}"
        );
        assert!(
            text.contains("queued insert into Climates (1 pending)"),
            "{text}"
        );
        assert!(
            text.contains("queued insert into Climates (2 pending)"),
            "{text}"
        );
        assert!(text.contains("queued delete t3 (3 pending)"), "{text}");
        assert!(
            text.contains("committed 3 mutation(s) in 1 maintenance pass"),
            "{text}"
        );
        assert!(text.contains("inserted c4 into Climates"), "{text}");
        assert!(text.contains("inserted c5 into Climates"), "{text}");
        assert!(text.contains("deleted a1"), "{text}");
        assert!(text.contains("+ {c4}"), "{text}");
        assert!(text.contains("+ {c5}"), "{text}");
        assert!(text.contains("- {c1, a1}"), "{text}");
    }

    #[test]
    fn watch_repl_rejects_stray_transaction_commands() {
        let script = "commit\nabort\nbegin\nbegin\nabort\nquit\n";
        let mut out = Vec::new();
        run_watch(
            &Options {
                watch: true,
                ..Options::default()
            },
            script.as_bytes(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text.matches("error: no open batch (begin first)").count(),
            2,
            "{text}"
        );
        assert!(text.contains("error: a batch is already open"), "{text}");
        assert!(
            text.contains("aborted (0 queued mutation(s) discarded)"),
            "{text}"
        );
        assert!(text.contains("bye (6 results)"), "{text}");
    }

    #[test]
    fn watch_repl_failed_commit_discards_the_batch_atomically() {
        // The delete of t99 is invalid: the whole batch (including the
        // valid insert) must be rolled back, and the session must stay
        // usable.
        let script = "\
begin
insert Climates | Chile | arid
delete t99
commit
show
quit
";
        let mut out = Vec::new();
        run_watch(
            &Options {
                watch: true,
                ..Options::default()
            },
            script.as_bytes(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("mutation rejected"), "{text}");
        assert!(text.contains("(batch of 2 discarded)"), "{text}");
        assert!(!text.contains("{c4}"), "rolled-back insert leaked: {text}");
        assert!(text.contains("bye (6 results)"), "{text}");
    }

    #[test]
    fn watch_script_file_replays_non_interactively() {
        let mut path = std::env::temp_dir();
        path.push(format!("fd-cli-watch-script-{}", std::process::id()));
        std::fs::write(
            &path,
            "begin\ninsert Climates | Chile | arid\ncommit\nquit\n",
        )
        .unwrap();
        let opts = Options {
            watch: true,
            script: Some(path.to_string_lossy().into_owned()),
            ..Options::default()
        };
        let mut out = Vec::new();
        // Stdin content is ignored when a script is given.
        run_watch(&opts, "delete t0\nquit\n".as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("committed 1 mutation(s)"), "{text}");
        assert!(
            !text.contains("deleted c1"),
            "stdin leaked into script mode: {text}"
        );
        assert!(text.contains("bye (7 results)"), "{text}");
        std::fs::remove_file(path).ok();

        let missing = Options {
            watch: true,
            script: Some("/definitely/not/here.txt".into()),
            ..Options::default()
        };
        let err = run_watch(&missing, "quit\n".as_bytes(), &mut Vec::new()).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn watch_repl_reports_command_errors_and_continues() {
        let script = "frobnicate\ndelete t99\ninsert Nowhere | 1\nshow\nquit\n";
        let mut out = Vec::new();
        run_watch(
            &Options {
                watch: true,
                ..Options::default()
            },
            script.as_bytes(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("unknown command"), "{text}");
        assert!(text.contains("no live tuple"), "{text}");
        assert!(text.contains("unknown relation"), "{text}");
        assert!(text.contains("bye (6 results)"), "{text}");
    }

    #[test]
    fn run_plain_on_builtin_example() {
        let out = run(&Options::default()).unwrap();
        assert!(out.contains("6 tuple sets"));
        assert!(out.contains("{c1, a2, s1}"));
    }

    #[test]
    fn run_topk_on_builtin_example() {
        let opts = parse_args(["--top", "2", "--rank-by", "Stars"]).unwrap();
        let out = run(&opts).unwrap();
        // Highest Stars: Plaza (4), then Ramada (3).
        assert!(out.contains("Plaza"));
        assert!(out.contains("rank    4.000"));
    }

    #[test]
    fn run_threshold_on_builtin_example() {
        let opts = parse_args(["--min-rank", "4", "--rank-by", "Stars"]).unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("Plaza"));
        assert!(!out.contains("Ramada"));
    }

    #[test]
    fn run_approx_on_builtin_example() {
        let opts = parse_args(["--approx", "0.9"]).unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("Approximate"));
    }

    #[test]
    fn run_ranked_honors_engine_and_page_size() {
        let base = run(&parse_args(["--top", "3", "--rank-by", "Stars"]).unwrap()).unwrap();
        for extra in [
            vec!["--engine", "scan"],
            vec!["--engine", "indexed", "--page-size", "2"],
        ] {
            let mut args = vec!["--top", "3", "--rank-by", "Stars"];
            args.extend(&extra);
            let out = run(&parse_args(args).unwrap()).unwrap();
            assert_eq!(base, out, "{extra:?}");
        }
    }

    #[test]
    fn run_approx_honors_engine_and_page_size() {
        let base = run(&parse_args(["--approx", "0.9"]).unwrap()).unwrap();
        for extra in [
            vec!["--engine", "scan"],
            vec!["--engine", "scan", "--page-size", "2"],
        ] {
            let mut args = vec!["--approx", "0.9"];
            args.extend(&extra);
            let out = run(&parse_args(args).unwrap()).unwrap();
            assert_eq!(base, out, "{extra:?}");
        }
    }

    #[test]
    fn run_ranked_approx_combination() {
        // Combining --approx with --rank-by/--top now works (one FdQuery
        // in ranked-approximate mode) instead of ignoring the ranking.
        let opts = parse_args(["--approx", "0.9", "--rank-by", "Stars", "--top", "2"]).unwrap();
        let out = run(&opts).unwrap();
        assert!(out.contains("Top-2 by max(Stars), approximate"), "{out}");
        assert!(out.contains("rank    4.000"), "{out}");
    }

    #[test]
    fn run_reports_unknown_attribute() {
        let opts = parse_args(["--top", "1", "--rank-by", "Nope"]).unwrap();
        assert!(run(&opts).unwrap_err().contains("Nope"));
    }

    #[test]
    fn ranked_labels_are_ordered() {
        let db = crate::relational::tourist_database();
        let ranked = ranked_labels(&db, "Stars").unwrap();
        assert_eq!(ranked.len(), 6);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
