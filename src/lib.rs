//! # full-disjunction
//!
//! A complete Rust implementation of **"An incremental algorithm for
//! computing ranked full disjunctions"** (Sara Cohen & Yehoshua Sagiv,
//! PODS 2005 / JCSS 2007): the `INCREMENTALFD`, `PRIORITYINCREMENTALFD`
//! and `APPROXINCREMENTALFD` algorithms, their substrates, baselines and
//! workload generators.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`relational`] — the relational substrate (values, nulls, schemas,
//!   catalogs, joins/outerjoins, acyclicity tests, paged storage);
//! * [`core`] — the paper's algorithms and data structures;
//! * [`baselines`] — brute-force oracle, Rajaraman–Ullman outerjoin
//!   sequences, and a Kanza–Sagiv-2003-style batch algorithm;
//! * [`workloads`] — synthetic schema/data generators for experiments;
//! * [`live`] — a re-export shim over the dynamic surface, which lives
//!   in [`core`]: the transactional [`FdSession`](crate::core::FdSession)
//!   (batched `DeltaBatch` commits, one maintenance pass per commit,
//!   push `EventSink` subscribers). The `fd watch` REPL drives it from
//!   the command line, and `fd serve` / `fd connect`
//!   ([`core::serve`]) expose one shared session
//!   over TCP with commit events fanned out to subscribed clients.
//!
//! ## Quickstart
//!
//! Every enumeration mode is reachable through one typed builder,
//! [`FdQuery`](crate::core::FdQuery):
//!
//! ```
//! use full_disjunction::prelude::*;
//!
//! // Table 1 of the paper: Climates, Accommodations, Sites.
//! let db = tourist_database();
//!
//! // Batch: the full disjunction (Table 2 of the paper), 6 tuple sets.
//! let fd = FdQuery::over(&db).run()?;
//! assert_eq!(fd.len(), 6);
//!
//! // Streaming, tuple set by tuple set with polynomial delay:
//! let first = FdQuery::over(&db).stream()?.next().unwrap()?;
//! assert!(!first.tuples().is_empty());
//!
//! // Ranked: the 2 best answers under an importance assignment, with
//! // engine/page-size knobs honored like in every other mode.
//! let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
//! let top = FdQuery::over(&db)
//!     .engine(StoreEngine::Scan)
//!     .ranked(FMax::new(&imp))
//!     .top_k(2)
//!     .run()?;
//! assert_eq!(top.len(), 2);
//!
//! // Parallel ranked enumeration: identical output — sets and order —
//! // across any worker count.
//! let par = FdQuery::over(&db)
//!     .ranked(FMax::new(&imp))
//!     .top_k(2)
//!     .parallel(4)
//!     .run()?;
//! assert_eq!(top.sets(), par.sets());
//! assert_eq!(top.ranks(), par.ranks());
//!
//! // Invalid combinations are typed errors, not panics:
//! assert!(FdQuery::over(&db).top_k(3).run().is_err());
//! # Ok::<(), FdError>(())
//! ```
//!
//! ## Migrating from the removed free functions
//!
//! The pre-builder free functions were kept as thin wrappers for one
//! release and are now gone; each maps to a builder chain:
//!
//! | Removed entry point | Builder equivalent |
//! |---|---|
//! | `full_disjunction(&db)` | `FdQuery::over(&db).run()?.into_sets()` |
//! | `full_disjunction_with(&db, cfg)` | `FdQuery::over(&db).with_config(cfg).run()?` |
//! | `top_k(&db, &f, k)` | `FdQuery::over(&db).ranked(&f).top_k(k).run()?` |
//! | `threshold(&db, &f, t)` | `FdQuery::over(&db).ranked(&f).threshold(t).run()?` |
//! | `approx_full_disjunction(&db, &a, tau)` | `FdQuery::over(&db).approx(&a, tau).run()?` |
//! | `approx_top_k(&db, &a, tau, &f, k)` | `FdQuery::over(&db).approx(&a, tau).ranked(&f).top_k(k).run()?` |
//! | `parallel_full_disjunction(&db, cfg, n)` | `FdQuery::over(&db).with_config(cfg).parallel(n).run()?` |
//! | `delta_insert(&db, t, prev, cfg)` | `FdQuery::over(&db).with_config(cfg).delta_insert(t, prev)?` |
//! | `delta_delete(&db, t, prev, cfg)` | `FdQuery::over(&db).with_config(cfg).delta_delete(t, prev)?` |
//!
//! The streaming iterator types (`FdIter`, `RankedFdIter`, …) remain
//! public — they are the engines the builder plans run on.

#![deny(rustdoc::broken_intra_doc_links)]

pub use fd_baselines as baselines;
pub use fd_core as core;
pub use fd_live as live;
pub use fd_relational as relational;
pub use fd_workloads as workloads;

pub mod cli;

/// One-stop imports for applications.
pub mod prelude {
    pub use fd_core::{
        fdi, AMin, AProd, ApproxAllIter, ApproxFdIter, AttrMax, BatchDelta, ChannelSink, Commit,
        CommitTimings, Counter, DeleteDelta, EventLog, EventSink, FMax, FPairSum, FSum, FTriple,
        FdConfig, FdError, FdEvent, FdIter, FdQuery, FdResult, FdSession, FdStream, FdiIter,
        FsyncPolicy, Gauge, Histogram, ImpScores, InitStrategy, InsertDelta, MetricsServer,
        MonotoneCDetermined, ProbScores, QueryTimings, RankedFdIter, RankingFunction, Registry,
        ServeError, ServeOptions, Server, SessionHandle, ShutdownHandle, SinkId, Span, Stats,
        StoreEngine, TopKUpdate, TupleSet, VecSink,
    };
    pub use fd_relational::{
        tourist_database, AttrId, Change, ChangeLog, Database, DatabaseBuilder, Delta, DeltaBatch,
        RelId, TupleId, Value, NULL,
    };
}
