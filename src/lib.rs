//! # full-disjunction
//!
//! A complete Rust implementation of **"An incremental algorithm for
//! computing ranked full disjunctions"** (Sara Cohen & Yehoshua Sagiv,
//! PODS 2005 / JCSS 2007): the `INCREMENTALFD`, `PRIORITYINCREMENTALFD`
//! and `APPROXINCREMENTALFD` algorithms, their substrates, baselines and
//! workload generators.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`relational`] — the relational substrate (values, nulls, schemas,
//!   catalogs, joins/outerjoins, acyclicity tests, paged storage);
//! * [`core`] — the paper's algorithms and data structures;
//! * [`baselines`] — brute-force oracle, Rajaraman–Ullman outerjoin
//!   sequences, and a Kanza–Sagiv-2003-style batch algorithm;
//! * [`workloads`] — synthetic schema/data generators for experiments;
//! * [`live`] — dynamic full disjunctions: delta maintenance under tuple
//!   inserts/deletes with a watch/subscribe event stream (the `fd watch`
//!   REPL drives it from the command line).
//!
//! ## Quickstart
//!
//! ```
//! use full_disjunction::prelude::*;
//!
//! // Table 1 of the paper: Climates, Accommodations, Sites.
//! let db = tourist_database();
//!
//! // Compute the full disjunction (Table 2 of the paper): 6 tuple sets.
//! let fd = full_disjunction(&db);
//! assert_eq!(fd.len(), 6);
//!
//! // Or stream it tuple set by tuple set with polynomial delay:
//! let first = FdIter::new(&db).next().unwrap();
//! assert!(!first.tuples().is_empty());
//! ```

pub use fd_baselines as baselines;
pub use fd_core as core;
pub use fd_live as live;
pub use fd_relational as relational;
pub use fd_workloads as workloads;

pub mod cli;

/// One-stop imports for applications.
pub mod prelude {
    pub use fd_core::{
        approx_full_disjunction, delta_delete, delta_insert, fdi, full_disjunction, threshold,
        top_k, AMin, AProd, ApproxFdIter, DeleteDelta, FMax, FPairSum, FSum, FTriple, FdConfig,
        FdIter, FdiIter, ImpScores, InsertDelta, MonotoneCDetermined, ProbScores, RankedFdIter,
        RankingFunction, Stats, StoreEngine, TupleSet,
    };
    pub use fd_live::{FdEvent, LiveFd, LiveRankedFd, TopKUpdate};
    pub use fd_relational::{
        tourist_database, AttrId, Change, ChangeLog, Database, DatabaseBuilder, Delta, RelId,
        TupleId, Value, NULL,
    };
}
