//! `fd` — compute full disjunctions from the command line.
//!
//! ```sh
//! fd                                  # the paper's tourist example
//! fd catalog.txt --sources
//! fd catalog.txt --top 5 --rank-by Price
//! fd catalog.txt --approx 0.85
//! fd watch catalog.txt                # live maintenance REPL
//! fd serve catalog.txt --addr :7433   # network daemon over one session
//! fd connect --addr :7433             # wire-protocol client
//! ```

// The CLI entry point: usage and error reporting on stderr is its
// interface, so the workspace-wide print_stderr deny stops here.
#![allow(clippy::print_stderr)]

use full_disjunction::cli;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if opts.watch {
        return match cli::run_watch(&opts, std::io::stdin().lock(), std::io::stdout()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if opts.serve {
        return match cli::run_serve(&opts, std::io::stdout()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if opts.connect {
        return match cli::run_connect(&opts, std::io::stdin().lock(), std::io::stdout()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if opts.snapshot {
        return match cli::run_snapshot(&opts, std::io::stdout()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if opts.recover {
        return match cli::run_recover(&opts, std::io::stdout()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    match cli::run(&opts) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
