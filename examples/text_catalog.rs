//! Loading relations from plain text and exploring them: parse a small
//! product catalog scraped from three "sources", compute its full
//! disjunction, and contrast it with the natural join and the outerjoin
//! baseline.
//!
//! ```sh
//! cargo run --example text_catalog
//! ```

use full_disjunction::baselines::{outerjoin_fd, OuterjoinFdError};
use full_disjunction::prelude::*;
use full_disjunction::relational::join::natural_join_all;
use full_disjunction::relational::textio;

const CATALOG: &str = "
# Three scraped product sources.
relation Vendors(Product, Vendor)
laptop   | Acme
phone    | Bravo
tablet   | Acme

relation Prices(Product, Price)
laptop   | 999
phone    | 599
camera   | 450

relation Reviews(Product, Stars)
laptop   | 5
camera   | 4
";

fn main() {
    let db = textio::parse_database(CATALOG).expect("catalog parses");
    for rel in db.relations() {
        println!("{}", textio::format_relation(&db, rel.id()));
    }

    // The natural join keeps only products present in ALL sources.
    let rels: Vec<RelId> = (0..db.num_relations() as u16).map(RelId).collect();
    let join = natural_join_all(&db, &rels);
    println!("natural join: {} row(s) — information lost!", join.len());

    // The full disjunction keeps every product, maximally combined.
    let fd = full_disjunction::core::canonicalize(FdQuery::over(&db).run().unwrap().into_sets());
    println!(
        "{}",
        full_disjunction::core::format_results(&db, "Full disjunction of the catalog", &fd)
    );

    // This schema is γ-acyclic and null-free, so the Rajaraman–Ullman
    // outerjoin sequence applies and must agree.
    match outerjoin_fd(&db) {
        Ok(oj) => {
            assert_eq!(oj.len(), fd.len());
            println!("outerjoin baseline agrees: {} rows", oj.len());
        }
        Err(OuterjoinFdError::NotGammaAcyclic) => unreachable!("catalog is γ-acyclic"),
        Err(e) => panic!("unexpected refusal: {e}"),
    }

    assert_eq!(join.len(), 1);
    assert_eq!(fd.len(), 4); // laptop, phone, tablet, camera combinations
}
