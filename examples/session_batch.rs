//! Transactional sessions: batch several mutations, commit them in ONE
//! maintenance pass, and let subscribers receive the net-effect events
//! by push instead of polling.
//!
//! ```sh
//! cargo run --example session_batch
//! ```

use full_disjunction::prelude::*;

fn main() {
    // Open a session over Table 1 of the paper — the session clones the
    // database, materializes Table 2 (six tuple sets) and maintains it.
    let db = tourist_database();
    let mut session = FdQuery::over(&db).session().expect("plain session");
    println!("session opened: {} tuple sets", session.len());

    // Two push subscribers: a collecting sink and an mpsc channel (what
    // a network front end would drain).
    let sink = VecSink::new();
    session.subscribe(sink.clone());
    let (channel, events_rx) = ChannelSink::new();
    session.subscribe(channel);

    // One transaction, three mutations: a new hotel joining c1 and s1,
    // a brand-new country, and the Ramada closing. Commit applies all
    // three to the database atomically and runs ONE maintenance pass —
    // deletes processed as a group, inserts seeded together in a single
    // multi-seed FDi run.
    let mut batch = session.begin();
    batch
        .insert(
            RelId(1),
            vec![
                "Canada".into(),
                "London".into(),
                "Fairmont".into(),
                5.into(),
            ],
        )
        .insert(RelId(0), vec!["Chile".into(), "arid".into()])
        .delete(TupleId(4)); // the Ramada (a2)
    let commit = session.commit(batch).expect("valid batch");

    println!(
        "\ncommitted {} mutations in {} maintenance pass(es):",
        commit.changes.len(),
        session.maintenance_passes()
    );
    for event in &commit.events {
        println!("  {}", event.label(session.db()));
    }
    assert_eq!(session.maintenance_passes(), 1);

    // Both subscribers saw exactly the commit's net-effect events.
    let pushed: Vec<FdEvent> = events_rx.try_iter().collect();
    assert_eq!(pushed, commit.events);
    assert_eq!(sink.events(), commit.events);
    println!("subscribers received {} pushed events", pushed.len());

    // A failed commit is transactional: nothing changes, typed error.
    let mut bad = session.begin();
    bad.insert(RelId(0), vec!["Peru".into(), "arid".into()])
        .delete(TupleId(999));
    let err = session.commit(bad).expect_err("t999 does not exist");
    println!("\nrejected commit: {err}");
    assert!(matches!(err, FdError::Mutation { .. }));
    assert_eq!(session.maintenance_passes(), 1, "no pass on failure");

    // The invariant: the maintained state equals a from-scratch
    // recomputation of the current snapshot.
    assert!(session.verify_snapshot());

    // Ranked sessions maintain a top-k window through the same commits.
    let stars = db.attr_id("Stars").expect("Stars attribute");
    let imp = ImpScores::from_fn(&db, |t| match db.tuple_value(t, stars) {
        Some(Value::Int(i)) => *i as f64,
        _ => 0.0,
    });
    let mut ranked = FdQuery::over(&db)
        .ranked(FMax::new(&imp))
        .top_k(2)
        .session()
        .expect("ranked session");
    println!("\ntop-2 by max(Stars):");
    for (set, rank) in ranked.window().expect("ranked") {
        println!("  {:>5.1}  {}", rank, set.label(ranked.db()));
    }
    let mut batch = ranked.begin();
    batch.delete(TupleId(3)).delete(TupleId(4)); // both London hotels close
    let commit = ranked.commit(batch).expect("valid batch");
    let update = commit.topk.expect("ranked commits report the window");
    println!(
        "after one batched commit: {} entered, {} left the window",
        update.entered.len(),
        update.left.len()
    );
    for (set, rank) in ranked.window().expect("ranked") {
        println!("  {:>5.1}  {}", rank, set.label(ranked.db()));
    }
    assert!(ranked.verify_snapshot());

    println!(
        "\nchangelog: {} commits, {} mutations",
        session.changelog().num_batches(),
        session.changelog().len()
    );
}
