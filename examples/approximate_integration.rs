//! Approximate full disjunctions (Section 6 of the paper): integrating
//! web-extracted tables where the same entity is spelled differently —
//! `Cannada` vs `Canada` — and each tuple carries an extraction
//! confidence.
//!
//! Reproduces the paper's Fig. 4 / Examples 6.1 and 6.3 numbers, then
//! runs `APPROXINCREMENTALFD` across thresholds.
//!
//! ```sh
//! cargo run --example approximate_integration
//! ```

use full_disjunction::core::sim::TableSim;
use full_disjunction::core::{AMin, AProd, ApproxJoin, ProbScores};
use full_disjunction::core::{EditDistanceSim, ExactSim};
use full_disjunction::prelude::*;

fn main() {
    let db = tourist_database();
    let (c1, a2, s1, s2) = (TupleId(0), TupleId(4), TupleId(6), TupleId(7));

    // Fig. 4: c1 is misspelled "Cannada"; edges carry similarities.
    let mut sim = TableSim::new(ExactSim);
    sim.set(c1, a2, 0.8);
    sim.set(c1, s1, 0.8);
    sim.set(c1, s2, 0.8);
    sim.set(a2, s1, 1.0);
    sim.set(a2, s2, 0.5);
    let prob = ProbScores::from_fn(&db, |t| match t.0 {
        0 => 0.9,
        4 => 1.0,
        6 => 0.9,
        7 => 0.7,
        _ => 1.0,
    });

    let amin = AMin::new(sim.clone(), prob);
    let aprod = AProd::new(sim);

    // Example 6.1: T1 = {c1, a2, s2}.
    let t1 = [c1, a2, s2];
    println!("Example 6.1: A_min(T1) = {}", amin.score(&db, &t1));
    println!("Example 6.1: A_prod(T1) = {}", aprod.score(&db, &t1));
    assert!((amin.score(&db, &t1) - 0.5).abs() < 1e-12);
    assert!((aprod.score(&db, &t1) - 0.32).abs() < 1e-12);

    // AFD under A_min for a sweep of thresholds: lower τ tolerates more
    // noise and produces larger combined answers.
    for tau in [0.9, 0.75, 0.5] {
        let afd = FdQuery::over(&db)
            .approx(&amin, tau)
            .run()
            .unwrap()
            .into_sets();
        println!("\nAFD(A_min, τ = {tau}): {} tuple sets", afd.len());
        for set in &afd {
            println!(
                "  {}  (score {:.2})",
                set.label(&db),
                amin.score(&db, set.tuples())
            );
        }
    }

    // A fully automatic similarity: per-attribute edit distance. With a
    // typo'd database this recovers the intended joins without any
    // hand-made table.
    let mut b = DatabaseBuilder::new();
    b.relation("Climates", &["Country", "Climate"])
        .row(["Cannada", "diverse"]) // extraction typo
        .row(["UK", "temperate"]);
    b.relation("Sites", &["Country", "Site"])
        .row(["Canada", "Air Show"])
        .row(["UK", "Hyde Park"]);
    let noisy = b.build().unwrap();
    let auto = AMin::new(EditDistanceSim, ProbScores::uniform(&noisy, 1.0));
    let afd = FdQuery::over(&noisy)
        .approx(&auto, 0.8)
        .run()
        .unwrap()
        .into_sets();
    println!("\nEdit-distance AFD over the typo'd database (τ = 0.8):");
    for set in &afd {
        println!("  {}", set.label(&noisy));
    }
    // "Cannada" ≈ "Canada" joins; exact FD would have kept them apart.
    assert!(afd.iter().any(|s| s.len() == 2));
}
