//! Database-integration substrate in action (the Section 7 context):
//! catalog statistics, a pre-execution output-size signal, the schema's
//! acyclicity classification with its join tree, and ranked *approximate*
//! retrieval — everything a query planner consults before deciding how
//! to evaluate a full disjunction.
//!
//! ```sh
//! cargo run --release --example planner_statistics
//! ```

use full_disjunction::core::{AMin, EditDistanceSim};
use full_disjunction::prelude::*;
use full_disjunction::relational::hypergraph::{join_tree, Hypergraph};
use full_disjunction::relational::stats::{estimate_fd_pairs, CatalogStats};
use full_disjunction::workloads::{travel, DataSpec};

fn main() {
    // A 40-country travel corpus with missing cities and star ratings.
    let db = travel(
        40,
        300,
        &DataSpec {
            null_rate: 0.1,
            ..DataSpec::default()
        },
    );
    println!(
        "database: {} relations, {} tuples",
        db.num_relations(),
        db.num_tuples()
    );

    // 1. Column statistics: what a catalog would know.
    let stats = CatalogStats::collect(&db);
    for rel in db.relations() {
        for &attr in rel.schema().attrs() {
            let c = stats.column(&db, rel.id(), attr).expect("own attribute");
            println!(
                "  {}.{}: {} rows, {} distinct, {:.0}% null",
                rel.name(),
                db.attr_name(attr),
                c.rows,
                c.distinct,
                100.0 * c.null_fraction()
            );
        }
    }

    // 2. Pre-execution signal: estimated join-consistent pairs per edge.
    let (edges, total) = estimate_fd_pairs(&db, &stats);
    println!("\nestimated join-consistent pairs:");
    for (a, b, est) in &edges {
        println!(
            "  {} ⋈ {} ≈ {est:.0}",
            db.relation(*a).name(),
            db.relation(*b).name()
        );
    }
    println!("  total ≈ {total:.0}");

    // 3. Schema classification: γ-acyclic, so even the restricted
    //    outerjoin plan would be available on null-free data; the join
    //    tree drives such plans.
    let hg = Hypergraph::of_database(&db);
    println!(
        "\nschema: α-acyclic = {}, γ-acyclic = {}",
        hg.is_alpha_acyclic(),
        hg.is_gamma_acyclic()
    );
    if let Some(jt) = join_tree(&db) {
        println!("join tree (child -> parent on shared attrs):");
        for (c, p, shared) in &jt.edges {
            let names: Vec<&str> = shared.iter().map(|&a| db.attr_name(a)).collect();
            println!(
                "  {} -> {} on {:?}",
                db.relation(RelId(*c as u16)).name(),
                db.relation(RelId(*p as u16)).name(),
                names
            );
        }
    }

    // 4. Execute: the actual full disjunction, then ranked approximate
    //    retrieval of the 5 best-rated combined answers, tolerant of the
    //    injected nulls and future typos.
    let fd = FdQuery::over(&db).run().unwrap().into_sets();
    println!("\nactual |FD| = {} tuple sets", fd.len());

    let stars = db.attr_id("Stars").expect("attribute exists");
    let imp = ImpScores::from_fn(&db, |t| match db.tuple_value(t, stars) {
        Some(Value::Int(s)) => *s as f64,
        _ => 0.0,
    });
    let f = FMax::new(&imp);
    let a = AMin::new(EditDistanceSim, ProbScores::uniform(&db, 1.0));
    println!("top-5 by star rating (approximate, τ = 0.9):");
    let top5 = FdQuery::over(&db)
        .approx(&a, 0.9)
        .ranked(&f)
        .top_k(5)
        .run()
        .unwrap()
        .into_ranked()
        .unwrap();
    for (set, rank) in top5 {
        println!("  rank {rank:.0}  {} tuples: {}", set.len(), set.label(&db));
    }
}
