//! Tour of `FdQuery`, the unified builder: every enumeration mode of the
//! paper's algorithm family — batch, streaming, ranked top-k/threshold,
//! approximate, ranked-approximate, parallel, delta and live — behind one
//! typed entry point, with engine/page-size/init knobs honored uniformly
//! and invalid combinations surfacing as typed `FdError`s.
//!
//! ```sh
//! cargo run --example query_builder
//! ```

use full_disjunction::core::{ExactSim, FdQuery};
use full_disjunction::prelude::*;

fn main() -> Result<(), FdError> {
    let db = tourist_database();

    // 1. Batch, with explicit execution knobs (Section 7 ablation axes).
    let fd = FdQuery::over(&db)
        .engine(StoreEngine::Scan)
        .page_size(4)
        .init(InitStrategy::ReuseResults)
        .run()?;
    println!("batch: {} tuple sets (Table 2 of the paper)", fd.len());

    // 2. Streaming with polynomial delay — one enum-backed stream type
    //    regardless of mode.
    let mut stream = FdQuery::over(&db).stream()?;
    let first = stream.next().expect("non-empty")?;
    println!("stream: first answer {}", first.label(&db));

    // 3. Ranked enumeration (PRIORITYINCREMENTALFD): prefer high tuple
    //    ids, take the top 3, in non-increasing rank order.
    let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
    let top = FdQuery::over(&db).ranked(FMax::new(&imp)).top_k(3).run()?;
    for (set, rank) in top.sets().iter().zip(top.ranks().expect("ranked mode")) {
        println!("ranked: {rank:>4.1}  {}", set.label(&db));
    }

    // 4. Threshold variant (Remark 5.6), streamed.
    let at_least_5 = FdQuery::over(&db)
        .ranked(FMax::new(&imp))
        .threshold(5.0)
        .run()?;
    println!("threshold ≥ 5: {} answers", at_least_5.len());

    // 5. Approximate full disjunction (APPROXINCREMENTALFD), and the
    //    ranked-approximate combination the paper sketches at the end of
    //    Section 6 — same builder, same knobs.
    let a = AMin::new(ExactSim, ProbScores::uniform(&db, 1.0));
    let afd = FdQuery::over(&db).approx(&a, 0.9).run()?;
    let ranked_afd = FdQuery::over(&db)
        .approx(&a, 0.9)
        .ranked(FMax::new(&imp))
        .top_k(2)
        .run()?;
    println!(
        "approx: {} sets; ranked-approx top-2 best rank {:.1}",
        afd.len(),
        ranked_afd.ranks().expect("ranked mode")[0]
    );

    // 6. Parallel execution — batch across the independent FDi runs,
    //    and *ranked*: sharded priority queues k-way merged into one
    //    globally ordered stream, output-identical to the sequential
    //    plan (sets and order) for any worker count.
    let par = FdQuery::over(&db).parallel(4).run()?;
    assert_eq!(par.len(), fd.len());
    println!("parallel: {} tuple sets across 4 workers", par.len());
    let par_ranked = FdQuery::over(&db)
        .ranked(FMax::new(&imp))
        .top_k(3)
        .parallel(4)
        .run()?;
    assert_eq!(top.sets(), par_ranked.sets());
    assert_eq!(top.ranks(), par_ranked.ranks());
    println!(
        "parallel ranked: top-{} identical to the sequential plan across 4 workers",
        par_ranked.len()
    );

    // 7. Delta maintenance through the same builder (no bare FdConfig).
    let mut mutable = tourist_database();
    let before = FdQuery::over(&mutable).run()?.into_sets();
    let t = mutable
        .insert_tuple(RelId(0), vec!["Chile".into(), "arid".into()])
        .expect("valid row");
    let delta = FdQuery::over(&mutable).delta_insert(t, &before)?;
    println!(
        "delta: +{} / -{} after inserting {}",
        delta.added.len(),
        delta.subsumed.len(),
        mutable.tuple_label(t)
    );

    // 8. Live maintenance is built from a query too: `.session()` turns
    // the configured builder into a transactional FdSession.
    let mut session = FdQuery::over(&db).engine(StoreEngine::Indexed).session()?;
    let commit = session
        .apply(Delta::Insert {
            rel: RelId(0),
            values: vec!["Iceland".into(), "arctic".into()],
        })
        .expect("valid row");
    println!("live: {} event(s) from one insert", commit.events.len());

    // 9. Invalid combinations are typed errors, not panics.
    let err = FdQuery::over(&db).top_k(3).run().unwrap_err();
    println!("typed error: {err}");
    assert_eq!(err, FdError::RankingRequired { option: ".top_k" });
    let err = FdQuery::over(&db).approx(&a, 1.5).run().unwrap_err();
    println!("typed error: {err}");

    Ok(())
}
