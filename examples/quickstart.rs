//! Quickstart: compute the full disjunction of the paper's Table 1 and
//! print it as Table 2.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use full_disjunction::prelude::*;

fn main() {
    // The three tourist relations of Table 1 — note the nulls: the Hilton
    // is missing its rating, Mount Logan its city.
    let db = tourist_database();

    for rel in db.relations() {
        println!(
            "{}",
            full_disjunction::relational::textio::format_relation(&db, rel.id())
        );
    }

    // The full disjunction maximally combines join-consistent connected
    // tuples while preserving every tuple of every relation.
    let fd = full_disjunction::core::canonicalize(FdQuery::over(&db).run().unwrap().into_sets());
    println!(
        "{}",
        full_disjunction::core::format_results(
            &db,
            "FD(Climates, Accommodations, Sites) — Table 2",
            &fd
        )
    );

    // Results can also be streamed one at a time with polynomial delay —
    // the first answer arrives long before the computation finishes.
    let mut stream = FdIter::new(&db);
    let first = stream.next().expect("non-empty database");
    println!("first streamed answer: {}", first.label(&db));

    assert_eq!(fd.len(), 6, "Table 2 has six tuple sets");
}
