//! The introduction's scenario: a tourist who prefers tropical over
//! temperate over diverse climates wants the *best* destinations first,
//! without waiting for the whole integration result.
//!
//! Uses `PRIORITYINCREMENTALFD` with the monotonically 1-determined
//! ranking function `f_max` (Section 5 of the paper).
//!
//! ```sh
//! cargo run --example ranked_destinations
//! ```

use full_disjunction::prelude::*;

fn main() -> Result<(), FdError> {
    let db = tourist_database();

    // imp(t): climate preference on Climates tuples, neutral elsewhere.
    let climate_attr = db.attr_id("Climate").expect("attribute exists");
    let imp = ImpScores::from_fn(&db, |t| {
        match db.tuple_value(t, climate_attr).map(|v| v.to_string()) {
            Some(c) if c == "tropical" => 3.0,
            Some(c) if c == "temperate" => 2.0,
            Some(c) if c == "diverse" => 1.0,
            _ => 0.0,
        }
    });
    let f = FMax::new(&imp);

    // One streamed FdQuery: answers arrive best-first with polynomial
    // delay (PRIORITYINCREMENTALFD under the hood).
    println!("All destinations, best climate first:");
    let mut stream = FdQuery::over(&db).ranked(&f).stream()?;
    while let Some((set, rank)) = stream.next_ranked() {
        println!(
            "  rank {:.1}  {}",
            rank.expect("ranked mode"),
            set.label(&db)
        );
    }

    // Top-k: the paper's Theorem 5.5 — polynomial in the input and k.
    println!("\nTop-2 destinations:");
    let top = FdQuery::over(&db).ranked(&f).top_k(2).run()?;
    for (set, rank) in top.into_ranked().expect("ranked mode") {
        println!("  rank {rank:.1}  {}", set.label(&db));
    }

    // Threshold variant (Remark 5.6): everything at least 'temperate'.
    println!("\nDestinations with rank ≥ 2 (temperate or better):");
    let warm = FdQuery::over(&db).ranked(&f).threshold(2.0).run()?;
    for (set, rank) in warm.sets().iter().zip(warm.ranks().expect("ranked mode")) {
        println!("  rank {rank:.1}  {}", set.label(&db));
    }
    assert_eq!(warm.len(), 3);
    Ok(())
}
