//! The introduction's scenario: a tourist who prefers tropical over
//! temperate over diverse climates wants the *best* destinations first,
//! without waiting for the whole integration result.
//!
//! Uses `PRIORITYINCREMENTALFD` with the monotonically 1-determined
//! ranking function `f_max` (Section 5 of the paper).
//!
//! ```sh
//! cargo run --example ranked_destinations
//! ```

use full_disjunction::core::{threshold, RankedFdIter};
use full_disjunction::prelude::*;

fn main() {
    let db = tourist_database();

    // imp(t): climate preference on Climates tuples, neutral elsewhere.
    let climate_attr = db.attr_id("Climate").expect("attribute exists");
    let imp = ImpScores::from_fn(&db, |t| {
        match db.tuple_value(t, climate_attr).map(|v| v.to_string()) {
            Some(c) if c == "tropical" => 3.0,
            Some(c) if c == "temperate" => 2.0,
            Some(c) if c == "diverse" => 1.0,
            _ => 0.0,
        }
    });
    let f = FMax::new(&imp);

    println!("All destinations, best climate first:");
    for (set, rank) in RankedFdIter::new(&db, &f) {
        println!("  rank {rank:.1}  {}", set.label(&db));
    }

    // Top-k: the paper's Theorem 5.5 — polynomial in the input and k.
    println!("\nTop-2 destinations:");
    for (set, rank) in top_k(&db, &f, 2) {
        println!("  rank {rank:.1}  {}", set.label(&db));
    }

    // Threshold variant (Remark 5.6): everything at least 'temperate'.
    println!("\nDestinations with rank ≥ 2 (temperate or better):");
    let warm = threshold(&db, &f, 2.0);
    for (set, rank) in &warm {
        println!("  rank {rank:.1}  {}", set.label(&db));
    }
    assert_eq!(warm.len(), 3);
}
