//! Section 7 in action: the execution knobs a database implementor cares
//! about — store engines (linked-list scans vs hash indexing by the
//! `Ri`-tuple), block-based execution over simulated pages, alternative
//! `Incomplete` initializations, and parallel execution across the `n`
//! runs. All configurations compute the same full disjunction; they
//! differ in operation counts.
//!
//! ```sh
//! cargo run --release --example engine_tuning
//! ```

use full_disjunction::core::{FdConfig, FdIter, FdQuery, InitStrategy, StoreEngine};
use full_disjunction::workloads::{chain, DataSpec};

fn main() {
    let db = chain(4, &DataSpec::new(40, 10).seed(7));
    println!(
        "database: {} relations, {} tuples",
        db.num_relations(),
        db.num_tuples()
    );

    let run = |cfg: FdConfig| {
        let mut it = FdIter::with_config(&db, cfg);
        let mut count = 0usize;
        for _ in it.by_ref() {
            count += 1;
        }
        (count, it.stats_total())
    };

    // 1. Store engines: Section 7's hash indexing removes the f² scan.
    let (n1, scan) = run(FdConfig {
        engine: StoreEngine::Scan,
        ..FdConfig::default()
    });
    let (n2, indexed) = run(FdConfig {
        engine: StoreEngine::Indexed,
        ..FdConfig::default()
    });
    assert_eq!(n1, n2);
    println!("\nstore engines ({n1} results):");
    println!(
        "  Scan    — store scans: {:9}, jcc checks: {:9}",
        scan.total_store_scans(),
        scan.jcc_checks
    );
    println!(
        "  Indexed — store scans: {:9}, jcc checks: {:9}",
        indexed.total_store_scans(),
        indexed.jcc_checks
    );

    // 2. Initialization strategies (Section 7, "minimizing repeated work").
    println!("\ninitialization strategies:");
    for init in [
        InitStrategy::Singletons,
        InitStrategy::ReuseResults,
        InitStrategy::TrimExtend,
    ] {
        let (n, s) = run(FdConfig {
            init,
            ..FdConfig::default()
        });
        println!(
            "  {init:?}: results {n}, candidate scans {:9}, jcc checks {:9}",
            s.candidate_scans, s.jcc_checks
        );
        assert_eq!(n, n1);
    }

    // 3. Block-based execution: pages touched shrink as blocks grow.
    println!("\nblock-based execution (simulated pages):");
    for pages in [1usize, 8, 64] {
        let cfg = FdConfig {
            page_size: Some(pages),
            ..FdConfig::default()
        };
        let mut it = FdIter::with_config(&db, cfg);
        let mut count = 0;
        for _ in it.by_ref() {
            count += 1;
        }
        assert_eq!(count, n1);
        println!("  page size {pages:3}: results {count}");
    }
    let results = FdQuery::over(&db).run().unwrap().into_sets();
    assert_eq!(results.len(), n1);

    // 4. Parallel full disjunction: one worker per FDi run.
    println!("\nparallel execution:");
    for threads in [1usize, 2, 4] {
        let t0 = std::time::Instant::now();
        let out = FdQuery::over(&db)
            .parallel(threads)
            .run()
            .unwrap()
            .into_sets();
        println!(
            "  {threads} thread(s): {} results in {:?}",
            out.len(),
            t0.elapsed()
        );
        assert_eq!(out.len(), n1);
    }
}
