//! Incremental delivery on a large synthetic integration (Theorem 4.10):
//! the first answers arrive after a handful of `GETNEXTRESULT` calls,
//! while the batch baseline returns nothing until the entire full
//! disjunction is computed.
//!
//! ```sh
//! cargo run --release --example streaming_first_k
//! ```

use full_disjunction::baselines::pio_fd;
use full_disjunction::prelude::*;
use full_disjunction::workloads::{chain, DataSpec};
use std::time::Instant;

fn main() {
    // A 5-relation chain with selective joins: sizable output.
    let spec = DataSpec::new(36, 9).seed(2024);
    let db = chain(5, &spec);
    println!(
        "database: {} relations, {} tuples, total size {}",
        db.num_relations(),
        db.num_tuples(),
        db.total_size()
    );

    // Stream the first 10 answers through the unified query builder.
    let t0 = Instant::now();
    let mut stream = FdQuery::over(&db).stream().expect("plain batch query");
    for k in 1..=10 {
        let set = stream
            .next()
            .expect("large output")
            .expect("streams do not fail");
        println!(
            "answer {k:2} after {:8.2?}: {} tuples",
            t0.elapsed(),
            set.len()
        );
    }
    let first10 = t0.elapsed();

    // Finish the stream for the total.
    let mut total = 10usize;
    for _ in stream.by_ref() {
        total += 1;
    }
    let full = t0.elapsed();
    println!("full disjunction: {total} tuple sets in {full:.2?}");

    // The batch baseline (Kanza–Sagiv 2003 style) cannot produce anything
    // early: its first answer IS the full computation.
    let t1 = Instant::now();
    let (batch, _) = pio_fd(&db);
    let batch_time = t1.elapsed();
    println!(
        "batch baseline: first answer only after {batch_time:.2?} ({} tuple sets)",
        batch.len()
    );
    assert_eq!(batch.len(), total);
    println!(
        "\nincremental delivered 10 answers {}x faster than the batch's first answer",
        (batch_time.as_nanos().max(1) / first10.as_nanos().max(1)).max(1)
    );
}
