//! Dynamic full disjunctions: maintain the paper's Table 2 while the
//! database changes, watching the result events stream by.
//!
//! ```sh
//! cargo run --example live_updates
//! ```

use full_disjunction::prelude::*;

fn main() {
    // Start from Table 1 and materialize Table 2 (six tuple sets).
    let mut live = LiveFd::new(tourist_database());
    println!("initial full disjunction: {} tuple sets", live.len());
    for set in live.canonical_results() {
        println!("  {}", set.label(live.db()));
    }
    assert_eq!(live.len(), 6);

    // A new hotel opens in London, Canada: it joins c1 on Country and s1
    // on City, so a brand-new combined answer appears.
    println!("\ninsert Accommodations | Canada | London | Fairmont | 5");
    let events = live
        .apply(Delta::Insert {
            rel: RelId(1),
            values: vec![
                "Canada".into(),
                "London".into(),
                "Fairmont".into(),
                5.into(),
            ],
        })
        .expect("insert");
    for event in &events {
        println!("  {}", event.label(live.db()));
    }
    assert!(
        events.iter().any(|e| matches!(e, FdEvent::Added(_))),
        "insert yields additions"
    );

    // The Ramada closes: every answer containing a2 is retracted, and the
    // previously subsumed {c1, s1} combination resurfaces.
    println!("\ndelete a2 (t4)");
    let events = live
        .apply(Delta::Delete { tuple: TupleId(4) })
        .expect("delete");
    for event in &events {
        println!("  {}", event.label(live.db()));
    }

    // The live state always equals a from-scratch recomputation of the
    // current snapshot — the subsystem's oracle invariant.
    assert!(live.verify_snapshot());

    // A ranked window stays current under the same mutations.
    let db = live.db().clone();
    let stars = db.attr_id("Stars").expect("Stars attribute");
    let imp = ImpScores::from_fn(&db, |t| match db.tuple_value(t, stars) {
        Some(Value::Int(i)) => *i as f64,
        _ => 0.0,
    });
    let mut ranked = LiveRankedFd::new(db, FMax::new(&imp), 2);
    println!("\ntop-2 by max(Stars):");
    for (set, rank) in ranked.top() {
        println!("  {:>5.1}  {}", rank, set.label(ranked.db()));
    }
    let update = ranked
        .apply(Delta::Delete { tuple: TupleId(10) }) // the Fairmont again
        .expect("delete");
    println!(
        "after deleting the Fairmont: {} window changes",
        update.entered.len() + update.left.len()
    );
    for (set, rank) in ranked.top() {
        println!("  {:>5.1}  {}", rank, set.label(ranked.db()));
    }
    println!("\nchangelog: {} mutations applied", live.changelog().len());
}
