//! Dynamic full disjunctions: maintain the paper's Table 2 while the
//! database changes, watching the result events stream by — all through
//! the transactional [`FdSession`] API.
//!
//! ```sh
//! cargo run --example live_updates
//! ```

use full_disjunction::prelude::*;

fn main() {
    // Start from Table 1 and materialize Table 2 (six tuple sets).
    let mut session = FdSession::new(tourist_database());
    println!("initial full disjunction: {} tuple sets", session.len());
    for set in session.canonical_results() {
        println!("  {}", set.label(session.db()));
    }
    assert_eq!(session.len(), 6);

    // Push subscribers see every commit's net events; a VecSink collects.
    let sink = VecSink::new();
    session.subscribe(sink.clone());

    // A new hotel opens in London, Canada: it joins c1 on Country and s1
    // on City, so a brand-new combined answer appears.
    println!("\ninsert Accommodations | Canada | London | Fairmont | 5");
    let commit = session
        .apply(Delta::Insert {
            rel: RelId(1),
            values: vec![
                "Canada".into(),
                "London".into(),
                "Fairmont".into(),
                5.into(),
            ],
        })
        .expect("insert");
    for event in &commit.events {
        println!("  {}", event.label(session.db()));
    }
    assert!(
        commit.events.iter().any(|e| matches!(e, FdEvent::Added(_))),
        "insert yields additions"
    );
    assert_eq!(sink.events(), commit.events, "the sink saw the same events");

    // The Ramada closes and a second climate arrives — two mutations,
    // ONE transaction, ONE maintenance pass.
    println!("\nbegin; delete a2 (t4); insert Climates | Chile | arid; commit");
    let mut batch = session.begin();
    batch
        .delete(TupleId(4))
        .insert(RelId(0), vec!["Chile".into(), "arid".into()]);
    let commit = session.commit(batch).expect("commit");
    for event in &commit.events {
        println!("  {}", event.label(session.db()));
    }
    assert_eq!(session.maintenance_passes(), 2);

    // The live state always equals a from-scratch recomputation of the
    // current snapshot — the subsystem's oracle invariant.
    assert!(session.verify_snapshot());

    // A ranked session keeps a top-k window current under the same
    // mutations. AttrMax ranks by the live attribute value, so it owns
    // no borrowed score table — the same function `fd serve` uses.
    let db = session.db().clone();
    let f = AttrMax::new(&db, "Stars").expect("Stars attribute");
    let mut ranked = FdSession::ranked(db, f, 2);
    println!("\ntop-2 by max(Stars):");
    for (set, rank) in ranked.window().expect("ranked session") {
        println!("  {:>5.1}  {}", rank, set.label(ranked.db()));
    }
    let commit = ranked
        .apply(Delta::Delete { tuple: TupleId(10) }) // the Fairmont again
        .expect("delete");
    let update = commit.topk.expect("ranked sessions report window changes");
    println!(
        "after deleting the Fairmont: {} window changes",
        update.entered.len() + update.left.len()
    );
    for (set, rank) in ranked.window().expect("ranked session") {
        println!("  {:>5.1}  {}", rank, set.label(ranked.db()));
    }
    println!(
        "\nchangelog: {} commits applied",
        session.changelog().num_batches()
    );
}
