//! Offline stand-in for the `criterion` crate (API subset, see
//! `shims/README.md`).
//!
//! Implements the structural API the workspace's ten bench targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! `bench_function`, `bench_with_input`, [`BenchmarkId`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] —
//! with plain wall-clock means instead of criterion's statistics. Bench
//! ids can be filtered with a substring argument, as under `cargo bench
//! -- <filter>`; other harness flags are accepted and ignored.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group (subset of criterion's).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{function_name}/{parameter}"`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures; handed to bench bodies (subset of criterion's).
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup call, then the timed samples.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark manager (subset of criterion's `Criterion`).
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    default_samples: u64,
}

/// Harness flags that take no value, so the token after them can be a
/// positional bench-id filter (`cargo bench -- myfilter` arrives as
/// `--bench myfilter`).
const BOOLEAN_FLAGS: &[&str] = &[
    "--bench",
    "--test",
    "--exact",
    "--ignored",
    "--include-ignored",
    "--nocapture",
    "--no-run",
    "--quiet",
    "-q",
];

impl Default for Criterion {
    fn default() -> Self {
        // A bare argument filters bench ids by substring. Boolean harness
        // flags are ignored; any other `--flag value` pair is consumed
        // whole so a flag's value (e.g. `--save-baseline main`) is never
        // mistaken for a filter.
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut filter = None;
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if !a.starts_with('-') {
                filter = Some(a.clone());
            } else if !a.contains('=') && !BOOLEAN_FLAGS.contains(&a.as_str()) {
                i += 1; // skip this flag's value
            }
            i += 1;
        }
        Criterion {
            filter,
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            samples: None,
        }
    }

    /// Benchmarks one routine outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: R,
    ) -> &mut Self {
        let samples = self.default_samples;
        self.run_one(&id.into().id, samples, routine);
        self
    }

    fn run_one<R: FnMut(&mut Bencher)>(&self, id: &str, samples: u64, mut routine: R) {
        if let Some(f) = &self.filter {
            if !id.contains(f.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            iters: samples,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let mean = bencher
            .elapsed
            .checked_div(bencher.iters as u32)
            .unwrap_or_default();
        println!(
            "bench: {id:<56} {mean:>12.2?}/iter ({} iters)",
            bencher.iters
        );
    }
}

/// A group of benchmarks sharing a name and sample count.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    samples: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n as u64);
        self
    }

    /// Benchmarks one routine.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let samples = self.samples.unwrap_or(self.criterion.default_samples);
        self.criterion.run_one(&full, samples, routine);
        self
    }

    /// Benchmarks one routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (report flushing is a no-op in this shim).
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
