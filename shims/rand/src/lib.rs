//! Offline stand-in for the `rand` crate (API subset, see `shims/README.md`).
//!
//! Implements exactly the surface this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng`]'s `gen`, `gen_range` and
//! `gen_bool` — over a SplitMix64 core. Deterministic in the seed, which
//! is all the workload generators and property tests require; it makes
//! no statistical-quality claims beyond that.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random `u64`s (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (stands in for `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng` with the "standard" distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits: the standard [0, 1) construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`] (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::standard_sample(rng) * (hi - lo)
    }
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` with the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): full-period, passes
            // BigCrush — more than enough for deterministic workloads.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..7);
            assert!((3..7).contains(&x));
            let y = rng.gen_range(1i64..=5);
            assert!((1..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.1)));
    }
}
