//! Test-runner configuration and per-case bookkeeping.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Derives the RNG for one case from the test seed and case index.
#[doc(hidden)]
pub fn case_rng(test_seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(test_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Identifies the currently running case; used to report failures.
#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub struct CaseInfo {
    /// Fully qualified test name.
    pub test: &'static str,
    /// Zero-based case index.
    pub case: u32,
}

impl CaseInfo {
    /// Returns a guard that reports this case if dropped during a panic.
    pub fn armed(self) -> CaseGuard {
        CaseGuard { info: self }
    }
}

/// Drop guard reporting the failing case index during unwinding.
#[doc(hidden)]
pub struct CaseGuard {
    info: CaseInfo,
}

impl Drop for CaseGuard {
    // stderr directly: this runs mid-panic, where the harness's normal
    // capture is the only thing that will show the failing case.
    #[allow(clippy::print_stderr)]
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: {} failed at case {} (deterministic; rerun reproduces it)",
                self.info.test, self.info.case
            );
        }
    }
}
