//! `proptest::collection` subset: `vec` and `btree_set`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Collection-size specification (mirrors `proptest::collection::SizeRange`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty collection size range");
        SizeRange { lo, hi }
    }
}

/// Strategy for `Vec<T>` with a size drawn from the given range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<T>` with a size drawn from the given range.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set; retry a bounded number of times so
        // small element domains still usually reach the target size.
        let mut attempts = 0usize;
        while set.len() < target && attempts < 16 * (target + 1) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        assert!(
            set.len() >= self.size.lo,
            "btree_set strategy could not reach minimum size {} (element domain too small?)",
            self.size.lo
        );
        set
    }
}

/// Mirrors `proptest::collection::btree_set`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
