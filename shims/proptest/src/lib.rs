//! Offline stand-in for the `proptest` crate (API subset, see
//! `shims/README.md`).
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map`, tuple composition,
//! integer/float range strategies, a `[x-y]{m,n}` regex-subset string
//! strategy, [`option::of`], and [`collection`]'s `vec`/`btree_set`.
//!
//! Differences from real proptest: cases are generated from a seed
//! derived deterministically from the test's module path and name (fully
//! reproducible, CI-stable), and there is **no shrinking** — a failing
//! case panics with the case index so it can be replayed.

#![warn(missing_docs)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// FNV-1a hash of a string — stable seed derivation for test functions.
#[doc(hidden)]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __info = $crate::test_runner::CaseInfo {
                    test: concat!(module_path!(), "::", stringify!($name)),
                    case: __case,
                };
                let mut __rng = $crate::test_runner::case_rng(__seed, __case);
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                let __guard = __info.armed();
                $body
                ::std::mem::forget(__guard);
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}
