//! `proptest::option` subset.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy for `Option<T>` values; `Some` with probability 1/2.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_bool(0.5) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// Wraps `inner` into an `Option` strategy (mirrors `proptest::option::of`).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
