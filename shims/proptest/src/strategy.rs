//! The [`Strategy`] trait and the combinators this workspace uses.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values (no shrinking in this shim).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Blanket impl so `&strategy` composes like in real proptest.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Boxed strategies (`S.boxed()` is not provided; this covers direct use).
impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}
