//! String generation from the tiny regex subset the workspace's tests
//! use: concatenations of literal characters and `[x-y]{m,n}` /
//! `[x-y]{n}` / `[x-y]` character-class atoms.

use rand::rngs::StdRng;
use rand::Rng;

/// Generates a string matching `pattern`, panicking on syntax outside
/// the supported subset.
pub(crate) fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| unsupported(pattern, "unclosed '['"));
            let class: Vec<char> = parse_class(&chars[i + 1..close], pattern);
            i = close + 1;
            let (lo, hi, next) = parse_repetition(&chars, i, pattern);
            i = next;
            let n = rng.gen_range(lo..=hi);
            for _ in 0..n {
                out.push(class[rng.gen_range(0..class.len())]);
            }
        } else {
            // Literal character (escapes and other metacharacters are
            // outside the supported subset).
            if "\\^$.|?*+()".contains(chars[i]) {
                unsupported(pattern, "metacharacter outside the supported subset");
            }
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

/// Expands a character class body like `a-cx0-2` into its member chars.
fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut class = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
            if lo > hi {
                unsupported(pattern, "inverted character range");
            }
            class.extend((lo..=hi).filter_map(char::from_u32));
            j += 3;
        } else {
            class.push(body[j]);
            j += 1;
        }
    }
    if class.is_empty() {
        unsupported(pattern, "empty character class");
    }
    class
}

/// Parses an optional `{m,n}` or `{n}` suffix at `chars[i]`, returning
/// `(min, max, next_index)`; absent suffix means exactly one repetition.
fn parse_repetition(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    if i >= chars.len() || chars[i] != '{' {
        return (1, 1, i);
    }
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .map(|p| i + p)
        .unwrap_or_else(|| unsupported(pattern, "unclosed '{'"));
    let body: String = chars[i + 1..close].iter().collect();
    let parse = |s: &str| -> usize {
        s.trim()
            .parse()
            .unwrap_or_else(|_| unsupported(pattern, "non-numeric repetition bound"))
    };
    let (lo, hi) = match body.split_once(',') {
        Some((lo, hi)) => (parse(lo), parse(hi)),
        None => {
            let n = parse(&body);
            (n, n)
        }
    };
    if lo > hi {
        unsupported(pattern, "inverted repetition bounds");
    }
    (lo, hi, close + 1)
}

fn unsupported(pattern: &str, what: &str) -> ! {
    panic!(
        "proptest shim: pattern {pattern:?} is outside the supported \
         regex subset ({what}); see shims/README.md"
    )
}

#[cfg(test)]
mod tests {
    use super::generate_from_pattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn class_with_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-c]{0,6}", &mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = generate_from_pattern("x[0-1]{3}y", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with('x') && s.ends_with('y'));
    }
}
