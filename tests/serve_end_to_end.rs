//! End-to-end tests of the `fd serve` daemon over real sockets: shared
//! session, multi-client fan-out, protocol-error isolation, and the
//! replay identity — the served state must be byte-identical to a
//! single-process `FdSession` fed the same batches.

use full_disjunction::core::serve::{Client, ServeOptions, Server};
use full_disjunction::core::{FdEvent, FdSession};
use full_disjunction::relational::{tourist_database, Database, Delta, RelId, TupleId};
use std::io::{Read as _, Write as _};

/// Renders a commit's events exactly as the daemon's fan-out does.
fn event_lines(events: &[FdEvent], db: &Database) -> Vec<String> {
    events
        .iter()
        .map(|e| format!("event {}", e.label(db)))
        .collect()
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    let greeting = client.read_response().expect("greeting");
    assert!(
        greeting.last().unwrap().starts_with("ok fd serve ("),
        "{greeting:?}"
    );
    client
}

/// The ISSUE acceptance scenario: a daemon on an ephemeral port, three
/// concurrent subscribed clients, one actor. Every subscriber receives
/// the identical net-effect event sequence for each commit; a malformed
/// line from one client earns an error reply without disturbing the
/// others; and the final `show` is byte-identical to a single-process
/// `FdSession` replay of the same batches.
#[test]
fn three_subscribers_see_identical_feeds_matching_an_in_process_replay() {
    let server = Server::start(FdSession::new(tourist_database()), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let mut subs: Vec<Client> = (0..3).map(|_| connect(addr)).collect();
    for (i, sub) in subs.iter_mut().enumerate() {
        assert_eq!(
            sub.request("subscribe").unwrap(),
            vec![format!("ok subscribed s{i}")]
        );
    }

    // Before any mutation: a malformed line from subscriber 0 earns a
    // protocol error, nothing more.
    assert_eq!(
        subs[0].request("insert NoPipeHere").unwrap(),
        vec!["error protocol: usage: insert REL | V1 | V2 ..."]
    );

    // The actor drives three commits: a singleton insert, a batched
    // insert+delete transaction, and a singleton delete.
    let mut actor = connect(addr);
    assert_eq!(
        actor.request("insert Climates | Chile | arid").unwrap(),
        vec!["ok inserted c4 into Climates; 1 event(s)"]
    );
    actor.request("begin").unwrap();
    actor
        .request("insert Accommodations | Canada | London | Fairmont | 5")
        .unwrap();
    actor.request("delete t4").unwrap();
    assert_eq!(
        actor.request("commit").unwrap(),
        vec!["ok committed 2 mutation(s) in 1 maintenance pass; 2 event(s)"]
    );
    assert!(actor.request("delete t10").unwrap()[0].starts_with("ok deleted c4"));

    // Mid-stream, another malformed line: the error reply must not
    // disturb the feed (events already in flight may precede it).
    let mut reply = subs[0].request("delete nope").unwrap();
    assert_eq!(reply.pop().unwrap(), "error protocol: bad tuple id: nope");
    let early_events = reply; // whatever fan-out raced the reply block

    // The same three batches through a single-process session, rendering
    // events exactly as the daemon's fan-out does.
    let mut replay = FdSession::new(tourist_database());
    let mut expected: Vec<String> = Vec::new();
    let commit = replay
        .apply(Delta::Insert {
            rel: RelId(0),
            values: vec!["Chile".into(), "arid".into()],
        })
        .unwrap();
    expected.extend(event_lines(&commit.events, replay.db()));
    let mut batch = replay.begin();
    batch
        .insert(
            RelId(1),
            vec![
                "Canada".into(),
                "London".into(),
                "Fairmont".into(),
                5.into(),
            ],
        )
        .delete(TupleId(4));
    let commit = replay.commit(batch).unwrap();
    expected.extend(event_lines(&commit.events, replay.db()));
    let commit = replay.apply(Delta::Delete { tuple: TupleId(10) }).unwrap();
    expected.extend(event_lines(&commit.events, replay.db()));
    assert!(expected.len() >= 4, "the scenario must produce events");

    // Unsubscribing joins the forwarding thread after draining its
    // queue, so the reply block is preceded by every remaining event:
    // no sleeps, no polling, a complete feed per subscriber.
    let mut feeds: Vec<Vec<String>> = Vec::new();
    for (i, sub) in subs.iter_mut().enumerate() {
        let mut lines = sub.request("unsubscribe").unwrap();
        assert_eq!(lines.pop().unwrap(), format!("ok unsubscribed s{i}"));
        if i == 0 {
            let mut full = early_events.clone();
            full.extend(lines);
            feeds.push(full);
        } else {
            feeds.push(lines);
        }
    }
    assert_eq!(feeds[0], expected, "subscriber 0 diverged from the replay");
    assert_eq!(feeds[0], feeds[1], "subscribers 0 and 1 diverged");
    assert_eq!(feeds[1], feeds[2], "subscribers 1 and 2 diverged");

    // The served state equals the replay, byte for byte.
    let mut show = actor.request("show").unwrap();
    let status = show.pop().unwrap();
    let want: Vec<String> = replay
        .canonical_results()
        .iter()
        .map(|s| format!("  {}", s.label(replay.db())))
        .collect();
    assert_eq!(show, want, "served `show` diverged from the replay");
    assert_eq!(status, format!("ok {} result(s)", want.len()));
    let stats = actor.request("stats").unwrap();
    assert_eq!(
        stats.last().unwrap(),
        &format!("ok results={} passes=3 subscribers=0", replay.len())
    );
    // The enriched reply carries the session's operation counters.
    assert!(
        stats.iter().any(|l| l.starts_with("  jcc_checks=")),
        "{stats:?}"
    );

    // The wire shutdown path flushes and stops the daemon.
    assert_eq!(actor.request("shutdown").unwrap(), vec!["ok shutting down"]);
    server.wait().unwrap();
}

/// Concurrent clients commit through one shared session: every commit
/// lands in exactly one maintenance pass (passes == commits), and a
/// subscriber sees all of them.
#[test]
fn concurrent_commits_serialize_through_one_session() {
    let server = Server::start(FdSession::new(tourist_database()), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let mut watcher = connect(addr);
    assert_eq!(
        watcher.request("subscribe").unwrap(),
        vec!["ok subscribed s0"]
    );

    let workers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.read_response().unwrap();
                for j in 0..3 {
                    // Unique countries: each insert yields one singleton
                    // result set, i.e. exactly one event.
                    let reply = client
                        .request(&format!("insert Climates | Nation-{w}-{j} | arid"))
                        .unwrap();
                    assert!(reply[0].starts_with("ok inserted"), "{reply:?}");
                }
                client.request("quit").unwrap();
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }

    // 12 commits, 12 maintenance passes — commits serialized, none
    // coalesced, none double-processed.
    let mut probe = connect(addr);
    let stats = probe.request("stats").unwrap();
    assert_eq!(
        stats.last().unwrap(),
        "ok results=18 passes=12 subscribers=1"
    );

    // The watcher received exactly one event line per commit.
    let mut feed = watcher.request("unsubscribe").unwrap();
    assert_eq!(feed.pop().unwrap(), "ok unsubscribed s0");
    assert_eq!(feed.len(), 12, "{feed:?}");
    assert!(feed.iter().all(|l| l.starts_with("event + {c")), "{feed:?}");
    let unique: std::collections::BTreeSet<&String> = feed.iter().collect();
    assert_eq!(unique.len(), 12, "every commit fanned out exactly once");

    server.stop().unwrap();
}

/// A subscriber whose socket died is reaped on the first failed write,
/// and the daemon keeps serving the remaining clients.
#[test]
fn dead_subscribers_are_reaped() {
    let server = Server::start(FdSession::new(tourist_database()), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let mut doomed = connect(addr);
    doomed.request("subscribe").unwrap();
    drop(doomed); // the socket closes without an unsubscribe

    let mut actor = connect(addr);
    // Commits keep flowing; the dead subscriber's forwarder reaps itself
    // on its first failed write (timing-dependent, so don't assert the
    // counter — assert the daemon stays healthy).
    for name in ["Chile", "Peru", "Bolivia"] {
        let reply = actor
            .request(&format!("insert Climates | {name} | arid"))
            .unwrap();
        assert!(reply[0].starts_with("ok inserted"), "{reply:?}");
    }
    let reply = actor.request("stats").unwrap();
    assert!(
        reply.last().unwrap().starts_with("ok results=9 passes=3"),
        "{reply:?}"
    );
    assert_eq!(actor.request("quit").unwrap(), vec!["ok bye"]);
    server.stop().unwrap();
}

/// Issues one HTTP/1.0 `GET path` against the metrics endpoint and
/// returns `(status_line, body)`.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut sock = std::net::TcpStream::connect(addr).expect("dial metrics endpoint");
    write!(sock, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
    let mut raw = String::new();
    sock.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or_default().to_owned();
    (status, body.to_owned())
}

/// The value of an exposition sample line `name value` (exact family
/// name or name-with-labels match).
fn sample_value(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| match l.split_once(' ') {
            Some((n, v)) if n == name => v.trim().parse().ok(),
            _ => None,
        })
}

/// The ISSUE acceptance scenario for the scrape path: a daemon with
/// `--metrics-addr`, a subscribed client, one commit. The HTTP endpoint
/// must serve a parseable exposition where `fd_commits_total`, the
/// per-phase commit histograms and `fd_events_pushed_total` all moved.
#[test]
fn metrics_endpoint_reflects_commits_over_real_sockets() {
    let server = Server::start_with(
        FdSession::new(tourist_database()),
        "127.0.0.1:0",
        ServeOptions {
            metrics_addr: Some("127.0.0.1:0".into()),
            log: false,
        },
    )
    .unwrap();
    let addr = server.addr();
    let maddr = server.metrics_addr().expect("metrics endpoint bound");

    let mut sub = connect(addr);
    assert_eq!(sub.request("subscribe").unwrap(), vec!["ok subscribed s0"]);
    let mut actor = connect(addr);
    assert_eq!(
        actor.request("insert Climates | Chile | arid").unwrap(),
        vec!["ok inserted c4 into Climates; 1 event(s)"]
    );
    // Unsubscribe joins the forwarder after it drained the queue, so
    // the push counter below is settled, not racing the scrape.
    let mut feed = sub.request("unsubscribe").unwrap();
    assert_eq!(feed.pop().unwrap(), "ok unsubscribed s0");
    assert_eq!(feed.len(), 1, "{feed:?}");

    let (status, body) = http_get(maddr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert_eq!(sample_value(&body, "fd_commits_total"), Some(1.0));
    assert_eq!(sample_value(&body, "fd_events_pushed_total"), Some(1.0));
    // Every commit phase recorded exactly one observation.
    for phase in ["validate", "maintain", "window", "fanout"] {
        let name = format!("fd_commit_{phase}_seconds_count");
        assert_eq!(sample_value(&body, &name), Some(1.0), "{name}\n{body}");
    }
    assert_eq!(sample_value(&body, "fd_commit_seconds_count"), Some(1.0));
    assert_eq!(
        sample_value(&body, "fd_serve_requests_total{command=\"insert\"}"),
        Some(1.0)
    );

    // Wrong path and wrong method are rejected, not served.
    let (status, _) = http_get(maddr, "/nope");
    assert!(status.contains("404"), "{status}");

    assert_eq!(actor.request("shutdown").unwrap(), vec!["ok shutting down"]);
    server.wait().unwrap();
}

/// Counters aggregate correctly across concurrent connections, and the
/// latency summaries stay internally consistent: p50 ≤ p99 ≤ max.
#[test]
fn metrics_aggregate_across_concurrent_connections() {
    let server = Server::start_with(
        FdSession::new(tourist_database()),
        "127.0.0.1:0",
        ServeOptions {
            metrics_addr: Some("127.0.0.1:0".into()),
            log: false,
        },
    )
    .unwrap();
    let addr = server.addr();
    let maddr = server.metrics_addr().expect("metrics endpoint bound");

    let workers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.read_response().unwrap();
                for j in 0..3 {
                    client
                        .request(&format!("insert Climates | Land-{w}-{j} | arid"))
                        .unwrap();
                }
                client.request("quit").unwrap();
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }

    let (status, body) = http_get(maddr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert_eq!(sample_value(&body, "fd_commits_total"), Some(12.0));
    assert_eq!(
        sample_value(&body, "fd_serve_requests_total{command=\"insert\"}"),
        Some(12.0)
    );
    assert_eq!(
        sample_value(&body, "fd_serve_requests_total{command=\"quit\"}"),
        Some(4.0)
    );
    assert_eq!(sample_value(&body, "fd_serve_connections_total"), Some(4.0));
    assert_eq!(
        sample_value(&body, "fd_serve_connections_active"),
        Some(0.0)
    );
    // 12 inserts + 4 quits replied to (greetings are not requests).
    assert_eq!(
        sample_value(&body, "fd_serve_reply_seconds_count"),
        Some(16.0)
    );

    // Quantiles of every summary are monotone by construction.
    for family in [
        "fd_commit_maintain_seconds",
        "fd_commit_seconds",
        "fd_serve_reply_seconds",
    ] {
        let q = |quantile: &str| {
            sample_value(&body, &format!("{family}{{quantile=\"{quantile}\"}}"))
                .unwrap_or_else(|| panic!("{family} quantile {quantile} missing\n{body}"))
        };
        let (p50, p99, max) = (q("0.5"), q("0.99"), q("1"));
        assert!(p50 <= p99 && p99 <= max, "{family}: {p50} {p99} {max}");
        assert!(max > 0.0, "{family} recorded nothing");
    }

    server.stop().unwrap();
}
