//! `PRIORITYINCREMENTALFD` correctness on generated workloads: emission
//! order, agreement with the definitional top-k oracle, prefix property,
//! threshold variant, and the c = 3 example function.

use full_disjunction::baselines::{naive_top_k, oracle_top_k};
use full_disjunction::prelude::*;
use full_disjunction::workloads::{chain, random_connected, random_importance, star, DataSpec};

fn rank_sequence<F: MonotoneCDetermined>(db: &Database, f: &F) -> Vec<f64> {
    RankedFdIter::new(db, f).map(|(_, r)| r).collect()
}

#[test]
fn emission_is_non_increasing_across_workloads_and_seeds() {
    for seed in [1u64, 2, 3] {
        for db in [
            chain(3, &DataSpec::new(6, 3).seed(seed)),
            star(3, &DataSpec::new(5, 3).seed(seed)),
            random_connected(4, 2, &DataSpec::new(4, 3).seed(seed)),
        ] {
            let imp = random_importance(&db, seed ^ 0xabc);
            let f = FMax::new(&imp);
            let ranks = rank_sequence(&db, &f);
            assert!(!ranks.is_empty());
            for w in ranks.windows(2) {
                assert!(w[0] >= w[1], "seed {seed}: {ranks:?}");
            }
        }
    }
}

#[test]
fn ranked_matches_oracle_top_k_scores() {
    for seed in [4u64, 5] {
        let db = chain(3, &DataSpec::new(5, 3).seed(seed));
        let imp = random_importance(&db, seed);
        let f = FMax::new(&imp);
        let oracle = oracle_top_k(&db, &f, usize::MAX);
        let ranked: Vec<(TupleSet, f64)> = RankedFdIter::new(&db, &f).collect();
        assert_eq!(oracle.len(), ranked.len());
        // Rank multisets must agree exactly (tie order may differ).
        let o: Vec<f64> = oracle.iter().map(|x| x.1).collect();
        let r: Vec<f64> = ranked.iter().map(|x| x.1).collect();
        assert_eq!(o, r, "seed {seed}");
        // And the sets themselves as sets.
        let mut os: Vec<_> = oracle.into_iter().map(|x| x.0).collect();
        let mut rs: Vec<_> = ranked.into_iter().map(|x| x.0).collect();
        os.sort();
        rs.sort();
        assert_eq!(os, rs, "seed {seed}");
    }
}

#[test]
fn top_k_is_prefix_of_full_stream() {
    let db = star(4, &DataSpec::new(5, 3).seed(6));
    let imp = random_importance(&db, 99);
    let f = FMax::new(&imp);
    let full: Vec<(TupleSet, f64)> = RankedFdIter::new(&db, &f).collect();
    for k in [0usize, 1, 2, 5, full.len(), full.len() + 3] {
        let got: Vec<(TupleSet, f64)> = RankedFdIter::new(&db, &f).take(k).collect();
        assert_eq!(got.len(), k.min(full.len()));
        for (a, b) in got.iter().zip(full.iter()) {
            assert_eq!(a.0, b.0, "k={k}");
            assert_eq!(a.1, b.1, "k={k}");
        }
    }
}

#[test]
fn naive_baseline_agrees_with_ranked_algorithm() {
    for seed in [7u64, 8] {
        let db = random_connected(3, 1, &DataSpec::new(5, 3).seed(seed));
        let imp = random_importance(&db, seed * 31);
        let f = FMax::new(&imp);
        for k in [1usize, 3, 8] {
            let naive: Vec<f64> = naive_top_k(&db, &f, k).into_iter().map(|x| x.1).collect();
            let ranked: Vec<f64> = RankedFdIter::new(&db, &f).take(k).map(|x| x.1).collect();
            assert_eq!(naive, ranked, "seed {seed} k {k}");
        }
    }
}

#[test]
fn threshold_equals_filtered_stream() {
    let db = chain(3, &DataSpec::new(6, 3).seed(9));
    let imp = random_importance(&db, 17);
    let f = FMax::new(&imp);
    let all: Vec<(TupleSet, f64)> = FdQuery::over(&db)
        .ranked(&f)
        .run()
        .unwrap()
        .into_ranked()
        .unwrap();
    for tau in [0.0, 0.3, 0.6, 0.9, 1.1] {
        let got = FdQuery::over(&db)
            .ranked(&f)
            .threshold(tau)
            .run()
            .unwrap()
            .into_ranked()
            .unwrap();
        let expected: Vec<&(TupleSet, f64)> = all.iter().filter(|(_, r)| *r >= tau).collect();
        assert_eq!(got.len(), expected.len(), "τ = {tau}");
        for ((gs, gr), (es, er)) in got.iter().zip(expected) {
            assert_eq!(gs, es, "τ = {tau}");
            assert_eq!(gr, er, "τ = {tau}");
        }
    }
}

#[test]
fn ftriple_c3_function_is_correctly_ordered() {
    let db = star(3, &DataSpec::new(4, 2).seed(10));
    let imp = random_importance(&db, 11);
    let f = FTriple::new(&imp);
    let ranks = rank_sequence(&db, &f);
    for w in ranks.windows(2) {
        assert!(w[0] >= w[1]);
    }
    // Agreement with the definitional oracle on scores.
    let oracle: Vec<f64> = oracle_top_k(&db, &f, usize::MAX)
        .into_iter()
        .map(|x| x.1)
        .collect();
    assert_eq!(oracle, ranks);
}

#[test]
fn ranked_stream_covers_whole_fd_even_with_ties() {
    // Constant importances: everything ties; every result must still be
    // emitted exactly once.
    let db = chain(3, &DataSpec::new(5, 3).seed(12));
    let imp = ImpScores::uniform(&db, 1.0);
    let f = FMax::new(&imp);
    let ranked: Vec<TupleSet> = RankedFdIter::new(&db, &f).map(|(s, _)| s).collect();
    let mut sorted = ranked.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), ranked.len(), "duplicate emission");
    let fd = full_disjunction::core::canonicalize(FdQuery::over(&db).run().unwrap().into_sets());
    assert_eq!(sorted, fd);
}
