//! The ranked approximate combination (Section 6's closing remark) on
//! generated noisy workloads: ordering, coverage against the approximate
//! oracle, and the double reduction (exact similarity ⇒ ranked FD;
//! uniform ranks ⇒ plain AFD).

use full_disjunction::baselines::oracle_afd;
use full_disjunction::core::sim::EditDistanceSim;
use full_disjunction::core::{AMin, RankedApproxFdIter};
use full_disjunction::prelude::*;
use full_disjunction::workloads::{chain, random_importance, DataSpec};

fn noisy_db(seed: u64) -> Database {
    chain(3, &DataSpec::new(5, 3).seed(seed).typos(0.3))
}

#[test]
fn ranked_approx_is_ordered_and_covers_the_afd() {
    for seed in [1u64, 2, 3] {
        let db = noisy_db(seed);
        let a = AMin::new(EditDistanceSim, ProbScores::uniform(&db, 1.0));
        let imp = random_importance(&db, seed * 7);
        let f = FMax::new(&imp);
        for tau in [0.95, 0.8] {
            let stream: Vec<(TupleSet, f64)> = RankedApproxFdIter::new(&db, &a, tau, &f).collect();
            for w in stream.windows(2) {
                assert!(w[0].1 >= w[1].1, "seed {seed} τ {tau}");
            }
            let mut got: Vec<TupleSet> = stream.into_iter().map(|x| x.0).collect();
            got.sort();
            let want = oracle_afd(&db, &a, tau);
            assert_eq!(got, want, "seed {seed} τ {tau}");
        }
    }
}

#[test]
fn approx_top_k_is_a_prefix_and_respects_tau() {
    let db = noisy_db(4);
    let a = AMin::new(EditDistanceSim, ProbScores::uniform(&db, 1.0));
    let imp = random_importance(&db, 11);
    let f = FMax::new(&imp);
    let tau = 0.8;
    let all: Vec<_> = RankedApproxFdIter::new(&db, &a, tau, &f).collect();
    for k in [0, 1, 3, all.len(), all.len() + 2] {
        let got: Vec<(TupleSet, f64)> = RankedApproxFdIter::new(&db, &a, tau, &f).take(k).collect();
        assert_eq!(got.len(), k.min(all.len()));
        for (g, w) in got.iter().zip(all.iter()) {
            assert_eq!(g.1, w.1, "k = {k}");
        }
    }
    use full_disjunction::core::ApproxJoin;
    for (set, _) in &all {
        assert!(a.score(&db, set.tuples()) >= tau);
    }
}

#[test]
fn c2_and_c3_functions_also_drive_the_ranked_approx_stream() {
    let db = noisy_db(5);
    let a = AMin::new(EditDistanceSim, ProbScores::uniform(&db, 1.0));
    let imp = random_importance(&db, 13);

    let f2 = FPairSum::new(&imp);
    let r2: Vec<f64> = RankedApproxFdIter::new(&db, &a, 0.8, &f2)
        .map(|x| x.1)
        .collect();
    for w in r2.windows(2) {
        assert!(w[0] >= w[1]);
    }

    let f3 = FTriple::new(&imp);
    let r3: Vec<f64> = RankedApproxFdIter::new(&db, &a, 0.8, &f3)
        .map(|x| x.1)
        .collect();
    for w in r3.windows(2) {
        assert!(w[0] >= w[1]);
    }
    assert_eq!(r2.len(), r3.len(), "same AFD under both functions");
}
