//! Property-based tests: random small databases (arbitrary schemas,
//! values, nulls, duplicate rows, disconnected pieces) checked against
//! the definitional oracles and the paper's axioms.

use full_disjunction::baselines::{all_jcc_sets, oracle_afd, oracle_fd, oracle_top_k, pio_fd};
use full_disjunction::core::jcc::is_jcc;
use full_disjunction::core::sim::EditDistanceSim;
use full_disjunction::core::{canonicalize, AMin, FdConfig, InitStrategy, StoreEngine};
use full_disjunction::prelude::*;
use full_disjunction::workloads::positional_importance;
use proptest::prelude::*;

fn full_disjunction(db: &Database) -> Vec<TupleSet> {
    FdQuery::over(db)
        .run()
        .expect("batch queries are valid")
        .into_sets()
}

/// One relation: a non-empty attribute subset of a 4-attribute pool and
/// up to three rows of small values with nulls.
fn arb_relation() -> impl Strategy<Value = (Vec<usize>, Vec<Vec<Option<u8>>>)> {
    (
        proptest::collection::btree_set(0usize..4, 1..=3),
        proptest::collection::vec(
            proptest::collection::vec(proptest::option::of(0u8..3), 3),
            0..=3,
        ),
    )
        .prop_map(|(attrs, rows)| (attrs.into_iter().collect(), rows))
}

/// A database of 1–3 such relations (≤ 9 tuples, oracle-friendly).
fn arb_db() -> impl Strategy<Value = Database> {
    proptest::collection::vec(arb_relation(), 1..=3).prop_map(|rels| {
        let mut b = DatabaseBuilder::new();
        for (i, (attrs, rows)) in rels.into_iter().enumerate() {
            let name = format!("R{i}");
            let attr_names: Vec<String> = attrs.iter().map(|a| format!("A{a}")).collect();
            let refs: Vec<&str> = attr_names.iter().map(String::as_str).collect();
            let mut rel = b.relation(&name, &refs);
            for row in rows {
                let values: Vec<Value> = row
                    .into_iter()
                    .take(attrs.len())
                    .chain(std::iter::repeat(Some(0)))
                    .take(attrs.len())
                    .map(|v| match v {
                        Some(x) => Value::Int(x as i64),
                        None => Value::Null,
                    })
                    .collect();
                rel.row_values(values);
            }
        }
        b.build().expect("generated database is well-formed")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Definition 2.1, all three axioms, plus agreement with the oracle.
    #[test]
    fn fd_axioms_hold(db in arb_db()) {
        let fd = canonicalize(full_disjunction(&db));
        // (ii) every result is join consistent and connected.
        for s in &fd {
            prop_assert!(is_jcc(&db, s.tuples()));
        }
        // (i) no redundancy.
        for a in &fd {
            for b in &fd {
                if a.tuples() != b.tuples() {
                    prop_assert!(!a.is_subset_of(b));
                }
            }
        }
        // (iii) every JCC set is contained in some result.
        for jcc in all_jcc_sets(&db) {
            prop_assert!(fd.iter().any(|s| jcc.is_subset_of(s)));
        }
        // Oracle agreement.
        prop_assert_eq!(fd, oracle_fd(&db));
    }

    /// The batch baseline computes the same set.
    #[test]
    fn batch_baseline_agrees(db in arb_db()) {
        let (batch, _) = pio_fd(&db);
        prop_assert_eq!(batch, oracle_fd(&db));
    }

    /// Every configuration (engine × init × blocks × parallel) agrees.
    #[test]
    fn configurations_agree(db in arb_db()) {
        let base = canonicalize(full_disjunction(&db));
        for engine in [StoreEngine::Scan, StoreEngine::Indexed] {
            for init in [InitStrategy::Singletons, InitStrategy::ReuseResults, InitStrategy::TrimExtend] {
                let cfg = FdConfig { engine, page_size: Some(2), init };
                let got = FdQuery::over(&db).with_config(cfg).run().unwrap().into_sets();
                prop_assert_eq!(&base, &canonicalize(got));
            }
        }
        let par = FdQuery::over(&db).parallel(3).run().unwrap().into_sets();
        prop_assert_eq!(base, canonicalize(par));
    }

    /// The ranked stream is ordered, duplicate-free, complete, and its
    /// scores match the definitional top-k oracle.
    #[test]
    fn ranked_stream_is_sound(db in arb_db()) {
        let imp = positional_importance(&db);
        let f = FMax::new(&imp);
        let ranked: Vec<(TupleSet, f64)> = RankedFdIter::new(&db, &f).collect();
        for w in ranked.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        let mut sets: Vec<TupleSet> = ranked.iter().map(|x| x.0.clone()).collect();
        sets.sort();
        let deduped = {
            let mut d = sets.clone();
            d.dedup();
            d
        };
        prop_assert_eq!(&sets, &deduped);
        prop_assert_eq!(sets, oracle_fd(&db));
        let oracle_scores: Vec<f64> =
            oracle_top_k(&db, &f, usize::MAX).into_iter().map(|x| x.1).collect();
        let got_scores: Vec<f64> = ranked.iter().map(|x| x.1).collect();
        prop_assert_eq!(oracle_scores, got_scores);
    }

    /// The approximate algorithm agrees with the definitional oracle for
    /// A_min over edit-distance similarity at several thresholds.
    #[test]
    fn approx_agrees_with_oracle(db in arb_db(), tau in 0.3f64..=1.0) {
        let a = AMin::new(EditDistanceSim, ProbScores::uniform(&db, 1.0));
        let got = canonicalize(FdQuery::over(&db).approx(&a, tau).run().unwrap().into_sets());
        let want = oracle_afd(&db, &a, tau);
        prop_assert_eq!(got, want);
    }

    /// Streaming prefix soundness: the first k results of the iterator
    /// are members of the full disjunction (PINC delivery, Thm 4.10).
    #[test]
    fn streamed_prefix_is_sound(db in arb_db(), k in 1usize..5) {
        let fd = oracle_fd(&db);
        let prefix: Vec<TupleSet> = FdIter::new(&db).take(k).collect();
        for s in &prefix {
            prop_assert!(fd.iter().any(|m| m.tuples() == s.tuples()));
        }
        let mut sorted = prefix.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), prefix.len());
    }
}
