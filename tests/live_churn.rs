//! Randomized churn: interleave ~200 inserts/deletes on generated
//! workload databases and verify after **every** step that the live
//! engine's materialized full disjunction equals the brute-force oracle
//! of the current snapshot — the oracle-checkable invariant of the
//! delta-maintenance subsystem — and that `delta_insert` never emits a
//! duplicate or a non-maximal set.

use full_disjunction::baselines::brute::oracle_fd;
use full_disjunction::core::{canonicalize, FMax, FdSession, ImpScores, RankingFunction, TupleSet};
use full_disjunction::live::FdEvent;
use full_disjunction::relational::{Delta, RelId, TupleId, Value};
use full_disjunction::workloads::{chain, star, DataSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Caps the live database size so the exponential oracle stays fast.
const MAX_TUPLES: usize = 14;
const STEPS: usize = 200;

fn random_value(rng: &mut StdRng, domain: i64) -> Value {
    if rng.gen_bool(0.12) {
        Value::Null
    } else {
        Value::Int(rng.gen_range(0..domain))
    }
}

/// One churn run over `session` (singleton commits), asserting the
/// invariant after every step.
fn churn(mut session: FdSession<'static>, seed: u64, payload_base: i64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_rels = session.db().num_relations();
    for step in 0..STEPS {
        let tuple_count = session.db().num_tuples();
        let do_insert = tuple_count <= 4 || (tuple_count < MAX_TUPLES && rng.gen_bool(0.5));
        let events = if do_insert {
            let rel = RelId(rng.gen_range(0..num_rels) as u16);
            let arity = session.db().relation(rel).schema().arity();
            // Last column is the relation's payload; the ones before are
            // join columns over a small shared domain.
            let mut values: Vec<Value> =
                (0..arity - 1).map(|_| random_value(&mut rng, 3)).collect();
            values.push(Value::Int(payload_base + step as i64));
            let events = session
                .apply(Delta::Insert { rel, values })
                .expect("insert")
                .events;
            // Acceptance: delta_insert emits no duplicate and no
            // non-maximal set.
            let added: Vec<_> = events
                .iter()
                .filter_map(|e| match e {
                    FdEvent::Added(s) => Some(s),
                    FdEvent::Retracted(_) => None,
                })
                .collect();
            for (i, a) in added.iter().enumerate() {
                for (j, b) in added.iter().enumerate() {
                    if i != j {
                        assert_ne!(a.tuples(), b.tuples(), "duplicate emission at step {step}");
                        assert!(
                            !a.is_subset_of(b),
                            "non-maximal emission {a} ⊆ {b} at step {step}"
                        );
                    }
                }
            }
            events
        } else {
            let live_ids: Vec<TupleId> = session.db().all_tuples().collect();
            let victim = live_ids[rng.gen_range(0..live_ids.len())];
            session
                .apply(Delta::Delete { tuple: victim })
                .expect("delete")
                .events
        };

        // Events must describe a consistent transition: retractions of
        // known sets, additions of new ones (checked by the store), and
        // the end state must match ground truth.
        drop(events);
        let oracle = oracle_fd(session.db());
        assert_eq!(
            canonicalize(session.results().to_vec()),
            oracle,
            "live state diverged from the oracle at step {step}"
        );
    }
    // Every step really happened (one commit per step)…
    assert_eq!(session.changelog().num_batches(), STEPS);
    // …and the cheaper FdIter-based invariant must agree as well.
    assert!(session.verify_snapshot());
}

#[test]
fn chain_churn_matches_oracle_every_step() {
    let db = chain(3, &DataSpec::new(3, 3).seed(0xC0FFEE));
    churn(FdSession::new(db), 11, 1_000);
}

#[test]
fn star_churn_matches_oracle_every_step() {
    let db = star(3, &DataSpec::new(3, 3).seed(0xBEEF));
    churn(FdSession::new(db), 23, 2_000);
}

/// Ranked-window churn: a ranked `FdSession` maintains its ranked
/// vector incrementally (binary-search insert / positional remove —
/// never a full-window re-sort); after every mutation the maintained
/// order must equal a from-scratch rank + sort of the current results.
#[test]
fn ranked_window_incremental_order_equals_from_scratch_sort_under_churn() {
    let db = chain(3, &DataSpec::new(3, 3).seed(0xFACE));
    // `% 3` makes rank ties common, so the canonical tie order is
    // exercised; tuples inserted later rank through the documented
    // default (0.0), landing in one big tie group.
    let imp = ImpScores::from_fn(&db, |t| (t.0 % 3) as f64);
    let mut session = FdSession::ranked(db, FMax::new(&imp), 3);
    let mut rng = StdRng::seed_from_u64(71);
    let num_rels = session.db().num_relations();
    for step in 0..STEPS {
        let tuple_count = session.db().num_tuples();
        let do_insert = tuple_count <= 4 || (tuple_count < MAX_TUPLES && rng.gen_bool(0.5));
        if do_insert {
            let rel = RelId(rng.gen_range(0..num_rels) as u16);
            let arity = session.db().relation(rel).schema().arity();
            let mut values: Vec<Value> =
                (0..arity - 1).map(|_| random_value(&mut rng, 3)).collect();
            values.push(Value::Int(9_000 + step as i64));
            session
                .apply(Delta::Insert { rel, values })
                .expect("insert");
        } else {
            let live_ids: Vec<TupleId> = session.db().all_tuples().collect();
            let victim = live_ids[rng.gen_range(0..live_ids.len())];
            session
                .apply(Delta::Delete { tuple: victim })
                .expect("delete");
        }

        // From-scratch reference: rank every current result, sort by
        // (rank desc, members asc) — must equal the maintained vector.
        let f = FMax::new(&imp);
        let mut scratch: Vec<(TupleSet, f64)> = session
            .results()
            .iter()
            .map(|s| (s.clone(), f.rank(session.db(), s)))
            .collect();
        scratch.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        assert_eq!(
            session.ranking().expect("ranked session"),
            &scratch[..],
            "incremental ranking diverged at step {step}"
        );
        // The window is the prefix.
        assert_eq!(
            session.window().expect("ranked session"),
            &scratch[..3.min(scratch.len())],
            "window diverged at step {step}"
        );
    }
    assert!(session.verify_snapshot());
}

/// Batched churn through the session API: every step commits a batch of
/// up to 3 mutations in ONE maintenance pass and must stay equal to the
/// brute-force oracle — the transactional counterpart of the singleton
/// churn above, on the null-heavy workload the other suites don't use.
#[test]
fn nully_chain_batched_commits_match_oracle_every_step() {
    let db = chain(
        3,
        &DataSpec {
            null_rate: 0.3,
            ..DataSpec::new(3, 2)
        },
    );
    let mut session = FdSession::new(db);
    let mut rng = StdRng::seed_from_u64(59);
    let num_rels = session.db().num_relations();
    const BATCHES: usize = 60;
    for step in 0..BATCHES {
        let mut batch = session.begin();
        let mut blocked: Vec<TupleId> = Vec::new();
        for _ in 0..rng.gen_range(1..=3usize) {
            let candidates: Vec<TupleId> = session
                .db()
                .all_tuples()
                .filter(|t| !blocked.contains(t))
                .collect();
            let do_insert =
                candidates.len() <= 4 || (candidates.len() < MAX_TUPLES && rng.gen_bool(0.5));
            if do_insert {
                let rel = RelId(rng.gen_range(0..num_rels) as u16);
                let arity = session.db().relation(rel).schema().arity();
                let mut values: Vec<Value> =
                    (0..arity - 1).map(|_| random_value(&mut rng, 3)).collect();
                values.push(Value::Int(7_000 + step as i64));
                batch.push(Delta::Insert { rel, values });
            } else {
                let victim = candidates[rng.gen_range(0..candidates.len())];
                blocked.push(victim);
                batch.push(Delta::Delete { tuple: victim });
            }
        }
        session.commit(batch).expect("valid batch");
        assert_eq!(
            session.maintenance_passes(),
            (step + 1) as u64,
            "exactly one maintenance pass per commit"
        );
        assert_eq!(
            canonicalize(session.results().to_vec()),
            oracle_fd(session.db()),
            "batched session diverged from the oracle at step {step}"
        );
    }
    assert_eq!(session.changelog().num_batches(), BATCHES);
    assert!(session.verify_snapshot());
}

#[test]
fn nully_chain_churn_matches_oracle_every_step() {
    let db = chain(
        3,
        &DataSpec {
            null_rate: 0.3,
            ..DataSpec::new(3, 2)
        },
    );
    churn(FdSession::new(db), 37, 3_000);
}
