//! Configuration equivalences: every execution knob of Section 7 —
//! store engine, block size, initialization strategy, parallelism — must
//! compute exactly the same full disjunction, differing only in
//! operation counts.

use full_disjunction::core::{canonicalize, FdConfig, FdIter, InitStrategy, StoreEngine};
use full_disjunction::prelude::*;
use full_disjunction::workloads::{chain, cycle, random_connected, star, DataSpec};

fn full_disjunction_with(db: &Database, cfg: FdConfig) -> Vec<TupleSet> {
    FdQuery::over(db)
        .with_config(cfg)
        .run()
        .expect("batch queries are valid")
        .into_sets()
}

fn workloads(seed: u64) -> Vec<(String, Database)> {
    vec![
        ("chain".into(), chain(3, &DataSpec::new(8, 4).seed(seed))),
        ("star".into(), star(4, &DataSpec::new(6, 4).seed(seed))),
        ("cycle".into(), cycle(3, &DataSpec::new(6, 4).seed(seed))),
        (
            "random".into(),
            random_connected(4, 2, &DataSpec::new(5, 3).seed(seed).null_rate(0.15)),
        ),
    ]
}

#[test]
fn engines_block_sizes_and_strategies_all_agree() {
    for seed in [21u64, 22] {
        for (name, db) in workloads(seed) {
            let base = canonicalize(full_disjunction_with(&db, FdConfig::default()));
            for engine in [StoreEngine::Scan, StoreEngine::Indexed] {
                for page_size in [None, Some(1), Some(7), Some(256)] {
                    for init in [
                        InitStrategy::Singletons,
                        InitStrategy::ReuseResults,
                        InitStrategy::TrimExtend,
                    ] {
                        let cfg = FdConfig {
                            engine,
                            page_size,
                            init,
                        };
                        let got = canonicalize(full_disjunction_with(&db, cfg));
                        assert_eq!(
                            base, got,
                            "{name} seed={seed} engine={engine:?} pages={page_size:?} init={init:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn parallel_agrees_for_all_thread_counts() {
    for (name, db) in workloads(23) {
        let base = canonicalize(full_disjunction_with(&db, FdConfig::default()));
        for threads in [1usize, 2, 4, 16] {
            let got = canonicalize(
                FdQuery::over(&db)
                    .parallel(threads)
                    .run()
                    .unwrap()
                    .into_sets(),
            );
            assert_eq!(base, got, "{name} threads={threads}");
        }
    }
}

#[test]
fn indexing_reduces_store_scans() {
    // The point of Section 7's hashing: same answers, fewer scans.
    let db = chain(4, &DataSpec::new(30, 8).seed(24));
    let run = |engine| {
        let mut it = FdIter::with_config(
            &db,
            FdConfig {
                engine,
                ..FdConfig::default()
            },
        );
        let mut n = 0;
        for _ in it.by_ref() {
            n += 1;
        }
        (n, it.stats_total())
    };
    let (n_scan, scan) = run(StoreEngine::Scan);
    let (n_idx, idx) = run(StoreEngine::Indexed);
    assert_eq!(n_scan, n_idx);
    assert!(
        idx.total_store_scans() < scan.total_store_scans(),
        "indexed {} vs scan {}",
        idx.total_store_scans(),
        scan.total_store_scans()
    );
}

#[test]
fn reuse_strategies_reduce_candidate_scans() {
    let db = chain(4, &DataSpec::new(20, 6).seed(25));
    let scans = |init| {
        let mut it = FdIter::with_config(
            &db,
            FdConfig {
                init,
                ..FdConfig::default()
            },
        );
        for _ in it.by_ref() {}
        it.stats_total().candidate_scans
    };
    let singles = scans(InitStrategy::Singletons);
    let reuse = scans(InitStrategy::ReuseResults);
    let trim = scans(InitStrategy::TrimExtend);
    assert!(reuse < singles, "reuse {reuse} vs singletons {singles}");
    assert!(trim < singles, "trim {trim} vs singletons {singles}");
}

#[test]
fn block_execution_page_reads_shrink_with_page_size() {
    let db = chain(3, &DataSpec::new(40, 8).seed(26));
    let pages_read = |page_size| {
        let cfg = FdConfig {
            page_size: Some(page_size),
            ..FdConfig::default()
        };
        let mut total = 0u64;
        for rel_idx in 0..db.num_relations() {
            let mut it = FdiIter::with_config(&db, RelId(rel_idx as u16), cfg);
            for _ in it.by_ref() {}
            total += it.pages_read();
        }
        total
    };
    let p1 = pages_read(1);
    let p16 = pages_read(16);
    let p128 = pages_read(128);
    assert!(p1 > p16, "{p1} vs {p16}");
    assert!(p16 > p128, "{p16} vs {p128}");
}
