//! Edge cases across the whole stack: degenerate databases, adversarial
//! null placements, duplicate rows, and schema extremes. Each case is
//! checked against the brute-force oracle where feasible.

use full_disjunction::baselines::oracle_fd;
use full_disjunction::core::canonicalize;
use full_disjunction::prelude::*;

fn full_disjunction(db: &Database) -> Vec<TupleSet> {
    FdQuery::over(db)
        .run()
        .expect("batch queries are valid")
        .into_sets()
}

#[test]
fn empty_database_yields_empty_fd() {
    let db = DatabaseBuilder::new().build().unwrap();
    assert_eq!(db.num_relations(), 0);
    assert!(full_disjunction(&db).is_empty());
}

#[test]
fn relations_with_no_rows_yield_empty_fd() {
    let mut b = DatabaseBuilder::new();
    b.relation("R", &["A", "B"]);
    b.relation("S", &["B", "C"]);
    let db = b.build().unwrap();
    assert!(full_disjunction(&db).is_empty());
}

#[test]
fn single_tuple_database() {
    let mut b = DatabaseBuilder::new();
    b.relation("R", &["A"]).row([7]);
    let db = b.build().unwrap();
    let fd = full_disjunction(&db);
    assert_eq!(fd.len(), 1);
    assert_eq!(fd[0].tuples(), &[TupleId(0)]);
    assert_eq!(fd, oracle_fd(&db));
}

#[test]
fn identical_duplicate_rows_are_distinct_tuples() {
    // Three identical rows in R and two in S: every (r, s) combination
    // is a distinct maximal tuple set — 6 results, not 1.
    let mut b = DatabaseBuilder::new();
    b.relation("R", &["A"]).row([1]).row([1]).row([1]);
    b.relation("S", &["A", "B"]).row([1, 2]).row([1, 2]);
    let db = b.build().unwrap();
    let fd = canonicalize(full_disjunction(&db));
    assert_eq!(fd.len(), 6);
    assert_eq!(fd, oracle_fd(&db));
}

#[test]
fn all_rows_mutually_inconsistent() {
    let mut b = DatabaseBuilder::new();
    b.relation("R", &["A", "B"]).row([1, 1]).row([2, 2]);
    b.relation("S", &["B", "C"]).row([9, 1]).row([8, 2]);
    let db = b.build().unwrap();
    let fd = full_disjunction(&db);
    assert_eq!(fd.len(), 4); // all singletons
    assert!(fd.iter().all(|s| s.len() == 1));
    assert_eq!(canonicalize(fd), oracle_fd(&db));
}

#[test]
fn clique_schema_every_pair_shares_the_key() {
    // Four relations all sharing attribute K: the relation graph is a
    // clique (γ-cyclic for n ≥ 3 unless nested), but the algorithm does
    // not care.
    let mut b = DatabaseBuilder::new();
    for (name, payload) in [("P", "X"), ("Q", "Y"), ("U", "Z"), ("V", "W")] {
        b.relation(name, &["K", payload]).row([1, 10]).row([2, 20]);
    }
    let db = b.build().unwrap();
    let fd = canonicalize(full_disjunction(&db));
    // K=1 and K=2 each combine one tuple from every relation: 2 results.
    assert_eq!(fd.len(), 2);
    assert!(fd.iter().all(|s| s.len() == 4));
    assert_eq!(fd, oracle_fd(&db));
}

#[test]
fn bridge_relation_with_empty_rows_splits_the_chain() {
    // R - S(empty) - T: R and T can never combine (connectivity requires
    // shared attributes, and R,T share none).
    let mut b = DatabaseBuilder::new();
    b.relation("R", &["A", "B"]).row([1, 2]);
    b.relation("S", &["B", "C"]);
    b.relation("T", &["C", "D"]).row([3, 4]);
    let db = b.build().unwrap();
    let fd = canonicalize(full_disjunction(&db));
    assert_eq!(fd.len(), 2);
    assert!(fd.iter().all(|s| s.len() == 1));
    assert_eq!(fd, oracle_fd(&db));
}

#[test]
fn null_only_rows_survive_as_singletons() {
    let mut b = DatabaseBuilder::new();
    b.relation("R", &["A", "B"]).row_values(vec![NULL, NULL]);
    b.relation("S", &["B", "C"]).row_values(vec![NULL, NULL]);
    let db = b.build().unwrap();
    let fd = full_disjunction(&db);
    assert_eq!(fd.len(), 2);
    assert!(fd.iter().all(|s| s.len() == 1));
    assert_eq!(canonicalize(fd), oracle_fd(&db));
}

#[test]
fn wide_schema_relation() {
    // One relation with 20 attributes joined to a thin one.
    let attrs: Vec<String> = (0..20).map(|i| format!("A{i}")).collect();
    let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
    let mut b = DatabaseBuilder::new();
    {
        let mut r = b.relation("Wide", &refs);
        r.row_values((0..20i64).map(Value::Int).collect());
        r.row_values((100..120i64).map(Value::Int).collect());
    }
    b.relation("Thin", &["A0"]).row([0]).row([100]).row([999]);
    let db = b.build().unwrap();
    let fd = canonicalize(full_disjunction(&db));
    // Two matched pairs + the unmatched thin row.
    assert_eq!(fd.len(), 3);
    assert_eq!(fd, oracle_fd(&db));
}

#[test]
fn long_chain_with_sparse_matches() {
    // An 8-relation chain where only one value threads all the way
    // through: exactly one 8-tuple result plus singletons/partials.
    let mut b = DatabaseBuilder::new();
    for i in 0..8usize {
        let j0 = format!("J{i}");
        let j1 = format!("J{}", i + 1);
        let mut r = b.relation(&format!("C{i}"), &[&j0, &j1]);
        r.row([0, 0]); // the thread
        r.row([(i + 1) as i64 * 10, (i + 1) as i64 * 100]); // noise
    }
    let db = b.build().unwrap();
    let fd = full_disjunction(&db);
    assert!(
        fd.iter().any(|s| s.len() == 8),
        "the full thread must appear"
    );
    assert_eq!(canonicalize(fd), oracle_fd(&db));
}

#[test]
fn ranked_iteration_on_degenerate_databases() {
    // Empty and singleton databases through the ranked path.
    let db = DatabaseBuilder::new().build().unwrap();
    let imp = ImpScores::uniform(&db, 1.0);
    let f = FMax::new(&imp);
    assert!(FdQuery::over(&db)
        .ranked(&f)
        .top_k(5)
        .run()
        .unwrap()
        .is_empty());

    let mut b = DatabaseBuilder::new();
    b.relation("R", &["A"]).row([1]);
    let db = b.build().unwrap();
    let imp = ImpScores::uniform(&db, 2.5);
    let f = FMax::new(&imp);
    let got = FdQuery::over(&db)
        .ranked(&f)
        .top_k(5)
        .run()
        .unwrap()
        .into_ranked()
        .unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].1, 2.5);
}

#[test]
fn mixed_type_values_never_join() {
    // Int 1 and string "1" share an attribute but are different values.
    let mut b = DatabaseBuilder::new();
    b.relation("R", &["A"]).row_values(vec![Value::Int(1)]);
    b.relation("S", &["A", "B"])
        .row_values(vec![Value::str("1"), Value::Int(2)]);
    let db = b.build().unwrap();
    let fd = full_disjunction(&db);
    assert_eq!(fd.len(), 2);
    assert!(fd.iter().all(|s| s.len() == 1));
}

#[test]
fn text_roundtrip_preserves_fd() {
    use full_disjunction::relational::textio;
    // Serialize the tourist database by hand and re-parse: the full
    // disjunction must be identical (up to tuple ids, which the format
    // preserves by construction).
    let db = tourist_database();
    let mut text = String::new();
    for rel in db.relations() {
        let attrs: Vec<&str> = rel
            .schema()
            .attrs()
            .iter()
            .map(|&a| db.attr_name(a))
            .collect();
        text.push_str(&format!("relation {}({})\n", rel.name(), attrs.join(", ")));
        for row in rel.rows() {
            let cells: Vec<String> = row.iter().map(|v| v.display().into_owned()).collect();
            text.push_str(&cells.join(" | "));
            text.push('\n');
        }
        text.push('\n');
    }
    let re = textio::parse_database(&text).unwrap();
    assert_eq!(re.num_tuples(), db.num_tuples());
    let fd_a: Vec<Vec<TupleId>> = canonicalize(full_disjunction(&db))
        .iter()
        .map(|s| s.tuples().to_vec())
        .collect();
    let fd_b: Vec<Vec<TupleId>> = canonicalize(full_disjunction(&re))
        .iter()
        .map(|s| s.tuples().to_vec())
        .collect();
    assert_eq!(fd_a, fd_b);
}
