//! Incremental-delivery properties (the PINC story, Theorem 4.10):
//! taking k answers must cost a small, k-proportional amount of work —
//! not the whole computation — and prefixes must be stable.

use full_disjunction::core::{FdConfig, FdIter, StoreEngine};
use full_disjunction::prelude::*;
use full_disjunction::workloads::{chain, DataSpec};

fn big_chain() -> Database {
    chain(4, &DataSpec::new(60, 12).seed(31))
}

#[test]
fn taking_k_answers_does_k_proportional_work() {
    let db = big_chain();
    let work_for = |k: usize| {
        let mut it = FdIter::new(&db);
        for _ in it.by_ref().take(k) {}
        it.stats_total().candidate_scans + it.stats_total().jcc_checks
    };
    let w1 = work_for(1);
    let w10 = work_for(10);
    let total = {
        let mut it = FdIter::new(&db);
        let n = it.by_ref().count();
        assert!(n > 100, "workload too small for a meaningful test: {n}");
        it.stats_total().candidate_scans + it.stats_total().jcc_checks
    };
    // First answer must cost a small fraction of the total computation.
    assert!(
        w1 * 10 < total,
        "first answer cost {w1}, total {total} — not incremental"
    );
    assert!(w10 * 3 < total, "w10 {w10}, total {total}");
    assert!(w1 <= w10);
}

#[test]
fn prefixes_are_stable_across_repeated_runs() {
    let db = big_chain();
    let run = |k: usize| -> Vec<Vec<TupleId>> {
        FdIter::new(&db)
            .take(k)
            .map(|s| s.tuples().to_vec())
            .collect()
    };
    let p20 = run(20);
    let p5 = run(5);
    assert_eq!(&p20[..5], &p5[..]);
}

#[test]
fn iterator_and_collect_agree() {
    let db = big_chain();
    let collected = FdQuery::over(&db).run().unwrap().into_sets();
    let streamed: Vec<TupleSet> = FdIter::new(&db).collect();
    assert_eq!(collected, streamed);
}

#[test]
fn engine_choice_does_not_change_emission_order() {
    let db = big_chain();
    let order = |engine| -> Vec<Vec<TupleId>> {
        FdIter::with_config(
            &db,
            FdConfig {
                engine,
                ..FdConfig::default()
            },
        )
        .map(|s| s.tuples().to_vec())
        .collect()
    };
    // Indexed lookups change *where* merges are found, but merge
    // candidates are unique per root (Lemma 4.4), so order is identical.
    assert_eq!(order(StoreEngine::Scan), order(StoreEngine::Indexed));
}

#[test]
fn ranked_iterator_is_also_incremental() {
    use full_disjunction::workloads::random_importance;
    let db = big_chain();
    let imp = random_importance(&db, 5);
    let f = FMax::new(&imp);
    let mut it = RankedFdIter::new(&db, &f);
    let first = it.next().expect("non-empty");
    let after_one = it.stats().candidate_scans;
    for _ in it.by_ref() {}
    let total = it.stats().candidate_scans;
    assert!(
        after_one * 5 < total,
        "after_one {after_one}, total {total}"
    );
    // The first ranked answer is the global maximum.
    let best = full_disjunction::baselines::oracle_top_k(&db, &f, 1);
    assert_eq!(first.1, best[0].1);
}
