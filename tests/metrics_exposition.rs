//! Golden-pinned metrics exposition format: the metric names, kinds and
//! help strings are a public, scrapeable surface, so the metadata lines
//! are checked in byte for byte (`tests/golden/metrics_names.golden`).
//! Timing-dependent sample values are asserted structurally instead —
//! every sample must parse, and families must render sorted.
//!
//! Regenerate the golden after an intentional change with:
//! `UPDATE_GOLDEN=1 cargo test --test metrics_exposition`.

use full_disjunction::core::serve::{Client, ServeOptions, Server};
use full_disjunction::core::FdSession;
use full_disjunction::relational::tourist_database;

/// Drives one of everything through a daemon so every metric family
/// registers (serve counters at startup, the queue-depth gauge at
/// subscribe, the commit pipeline at insert, the protocol-error counter
/// at a malformed line), then returns the rendered exposition.
fn full_exposition() -> String {
    let server = Server::start_with(
        FdSession::new(tourist_database()),
        "127.0.0.1:0",
        ServeOptions::default(),
    )
    .unwrap();
    let addr = server.addr();

    let mut sub = Client::connect(addr).unwrap();
    sub.read_response().unwrap();
    sub.request("subscribe").unwrap();

    let mut actor = Client::connect(addr).unwrap();
    actor.read_response().unwrap();
    actor.request("insert Climates | Chile | arid").unwrap();
    let err = actor.request("not-a-command").unwrap();
    assert!(err[0].starts_with("error protocol:"), "{err:?}");

    sub.request("unsubscribe").unwrap();
    let body = server.registry().render();
    actor.request("shutdown").unwrap();
    server.wait().unwrap();
    body
}

#[test]
fn exposition_is_parseable_sorted_and_matches_the_golden_metadata() {
    let body = full_exposition();

    // Every sample line is `name[{labels}] value` with a finite f64.
    for line in body.lines().filter(|l| !l.starts_with('#')) {
        let (name, value) = line
            .split_once(' ')
            .unwrap_or_else(|| panic!("unparseable sample line: {line}"));
        assert!(!name.is_empty(), "{line}");
        let value: f64 = value
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric sample value: {line}"));
        assert!(value.is_finite(), "{line}");
    }

    // Families render sorted, each with `# HELP` immediately before its
    // `# TYPE`, and every sample attributed to the declared family.
    let mut families: Vec<&str> = Vec::new();
    let mut pending_help: Option<&str> = None;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            assert!(pending_help.is_none(), "two HELP lines in a row: {line}");
            pending_help = Some(rest.split(' ').next().unwrap());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let family = rest.split(' ').next().unwrap();
            assert_eq!(pending_help.take(), Some(family), "HELP/TYPE mismatch");
            families.push(family);
        } else {
            assert!(pending_help.is_none(), "HELP without TYPE before {line}");
            let sample_family = line.split(['{', ' ']).next().unwrap();
            let family = families.last().expect("sample before any TYPE line");
            assert!(
                sample_family == *family
                    || sample_family
                        .strip_prefix(family)
                        .is_some_and(|s| matches!(s, "_sum" | "_count")),
                "sample {sample_family} under family {family}"
            );
        }
    }
    let mut sorted = families.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(families, sorted, "families must render sorted and unique");

    // The metadata lines are the stable surface: pinned byte for byte.
    let metadata: String =
        body.lines()
            .filter(|l| l.starts_with('#'))
            .fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            });
    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics_names.golden");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden, &metadata).expect("rewrite golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden).expect("golden metadata file");
    assert_eq!(
        metadata, expected,
        "exposition metadata diverged from tests/golden/metrics_names.golden \
         (regenerate with UPDATE_GOLDEN=1 if intentional)"
    );
}
