//! Cross-algorithm agreement on generated workloads: `INCREMENTALFD`
//! (all configurations) ≡ brute-force oracle ≡ batch baseline, and ≡ the
//! Rajaraman–Ullman outerjoin baseline where that baseline applies
//! (γ-acyclic, connected, null-free).

use full_disjunction::baselines::{oracle_fd, outerjoin_fd, pio_fd};
use full_disjunction::core::{canonicalize, padded_relation};
use full_disjunction::prelude::*;

fn full_disjunction(db: &Database) -> Vec<TupleSet> {
    FdQuery::over(db)
        .run()
        .expect("batch queries are valid")
        .into_sets()
}

use full_disjunction::workloads::{chain, cycle, random_connected, star, DataSpec};

fn assert_all_agree(db: &Database, ctx: &str) {
    let oracle = oracle_fd(db);
    let incremental = canonicalize(full_disjunction(db));
    assert_eq!(oracle, incremental, "incremental vs oracle: {ctx}");
    let (batch, _) = pio_fd(db);
    assert_eq!(oracle, batch, "batch vs oracle: {ctx}");
}

#[test]
fn chains_agree_across_sizes_and_seeds() {
    for n in [2usize, 3, 4] {
        for seed in [1u64, 2] {
            // Small enough for the exponential oracle.
            let db = chain(n, &DataSpec::new(5, 3).seed(seed));
            assert_all_agree(&db, &format!("chain n={n} seed={seed}"));
        }
    }
}

#[test]
fn chains_with_nulls_agree() {
    for seed in [3u64, 4] {
        let db = chain(3, &DataSpec::new(5, 3).seed(seed).null_rate(0.3));
        assert_all_agree(&db, &format!("null chain seed={seed}"));
    }
}

#[test]
fn stars_agree() {
    for seed in [5u64, 6] {
        let db = star(4, &DataSpec::new(4, 3).seed(seed));
        assert_all_agree(&db, &format!("star seed={seed}"));
    }
}

#[test]
fn cycles_agree() {
    for seed in [7u64, 8] {
        let db = cycle(3, &DataSpec::new(4, 3).seed(seed));
        assert_all_agree(&db, &format!("cycle seed={seed}"));
    }
}

#[test]
fn random_schemas_agree() {
    for seed in [9u64, 10, 11] {
        let db = random_connected(4, 2, &DataSpec::new(4, 3).seed(seed));
        assert_all_agree(&db, &format!("random seed={seed}"));
    }
}

#[test]
fn skewed_data_agrees() {
    let db = chain(3, &DataSpec::new(6, 4).seed(12).skew(1.2));
    assert_all_agree(&db, "skewed chain");
}

#[test]
fn outerjoin_baseline_agrees_on_its_domain() {
    // γ-acyclic, connected, null-free: chains and stars qualify.
    for (name, db) in [
        ("chain", chain(3, &DataSpec::new(6, 3).seed(13))),
        ("star", star(3, &DataSpec::new(6, 3).seed(14))),
    ] {
        let oj = outerjoin_fd(&db).unwrap_or_else(|e| panic!("{name}: {e}"));
        let fd = full_disjunction(&db);
        let mut fd_rows = padded_relation(&db, &fd);
        fd_rows.sort();
        let mut oj_rows: Vec<Vec<Value>> = oj.rows.iter().map(|r| r.to_vec()).collect();
        oj_rows.sort();
        assert_eq!(fd_rows, oj_rows, "{name}");
    }
}

#[test]
fn outerjoin_baseline_refuses_cycles() {
    let db = cycle(3, &DataSpec::new(4, 3).seed(15));
    assert!(outerjoin_fd(&db).is_err());
    // ...but the incremental algorithm handles them fine.
    assert_all_agree(&db, "cycle handled by incremental");
}

#[test]
fn information_preservation_every_tuple_is_covered() {
    // Definition 2.1(iii) with T = {t}: every tuple appears in some
    // result.
    for seed in [16u64, 17] {
        let db = random_connected(4, 1, &DataSpec::new(4, 3).seed(seed).null_rate(0.2));
        let fd = full_disjunction(&db);
        for t in db.all_tuples() {
            assert!(
                fd.iter().any(|s| s.contains(t)),
                "tuple {t} lost (seed {seed})"
            );
        }
    }
}

#[test]
fn fdi_definition_holds_per_relation() {
    // FDi(R) = members of FD(R) containing a tuple from Ri.
    let db = chain(3, &DataSpec::new(5, 3).seed(18));
    let fd = canonicalize(full_disjunction(&db));
    for rel_idx in 0..db.num_relations() {
        let ri = RelId(rel_idx as u16);
        let fdi = canonicalize(full_disjunction::core::fdi(&db, ri));
        let expected: Vec<_> = fd
            .iter()
            .filter(|s| s.tuple_from(&db, ri).is_some())
            .cloned()
            .collect();
        assert_eq!(fdi, expected, "relation {rel_idx}");
    }
}
