//! Indexed-probe / linear-scan equivalence: the join-column indexes are
//! a pure access-path optimization, so every enumeration mode must
//! produce **byte-identical** output — same sets, same order, same
//! ranks — with the indexes enabled and disabled, across engine × page
//! size × thread count on the tourist example and chain/star/snowflake
//! and Zipf-skewed workloads. A randomized churn property then drives
//! inserts, deletes and crash recovery through a durable session and
//! checks the posting lists against a from-scratch rebuild
//! ([`Database::verify_indexes`]) after every commit.

use full_disjunction::core::FdQuery;
use full_disjunction::prelude::*;
use full_disjunction::workloads::{chain, snowflake, star, DataSpec};
use proptest::prelude::*;
use std::path::PathBuf;

fn workloads() -> Vec<(String, Database)> {
    vec![
        ("tourist".into(), tourist_database()),
        ("chain".into(), chain(3, &DataSpec::new(8, 4).seed(61))),
        ("star".into(), star(4, &DataSpec::new(6, 4).seed(62))),
        (
            "snowflake".into(),
            snowflake(3, &DataSpec::new(5, 4).seed(63)),
        ),
        (
            "zipf-chain".into(),
            chain(3, &DataSpec::new(10, 6).seed(64).skew(1.2)),
        ),
    ]
}

/// Engine × page size, singleton init — valid for every mode.
fn exec_configs() -> Vec<FdConfig> {
    let mut out = Vec::new();
    for engine in [StoreEngine::Scan, StoreEngine::Indexed] {
        for page_size in [None, Some(1), Some(7)] {
            out.push(FdConfig {
                engine,
                page_size,
                init: InitStrategy::Singletons,
            });
        }
    }
    out
}

fn ordered(sets: &[TupleSet]) -> Vec<Vec<TupleId>> {
    sets.iter().map(|s| s.tuples().to_vec()).collect()
}

/// The same database with the join-column indexes switched off: every
/// probe falls back to the liveness-aware scan.
fn scan_twin(db: &Database) -> Database {
    let mut twin = db.clone();
    twin.set_index_enabled(false);
    twin
}

#[test]
fn batch_and_parallel_enumerations_are_identical_with_indexes_off() {
    for (name, db) in workloads() {
        let twin = scan_twin(&db);
        for cfg in exec_configs() {
            let indexed = FdQuery::over(&db).with_config(cfg).run().unwrap();
            let scanned = FdQuery::over(&twin).with_config(cfg).run().unwrap();
            assert_eq!(
                ordered(indexed.sets()),
                ordered(scanned.sets()),
                "{name} {cfg:?}: batch output diverges"
            );
            for threads in [1usize, 3] {
                let indexed = FdQuery::over(&db)
                    .with_config(cfg)
                    .parallel(threads)
                    .run()
                    .unwrap();
                let scanned = FdQuery::over(&twin)
                    .with_config(cfg)
                    .parallel(threads)
                    .run()
                    .unwrap();
                assert_eq!(
                    ordered(indexed.sets()),
                    ordered(scanned.sets()),
                    "{name} {cfg:?} threads={threads}: parallel output diverges"
                );
            }
        }
        // The cross above must actually exercise both access paths.
        assert!(db.index_probes() > 0, "{name}: index path never probed");
        assert!(db.index_hits() > 0, "{name}: no probe hit a posting list");
        assert!(twin.index_hits() == 0, "{name}: disabled index answered");
    }
}

#[test]
fn ranked_emission_is_identical_with_indexes_off() {
    for (name, db) in workloads() {
        let twin = scan_twin(&db);
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 7) as f64);
        for cfg in exec_configs() {
            let indexed = FdQuery::over(&db)
                .with_config(cfg)
                .ranked(FMax::new(&imp))
                .run()
                .unwrap();
            let scanned = FdQuery::over(&twin)
                .with_config(cfg)
                .ranked(FMax::new(&imp))
                .run()
                .unwrap();
            assert_eq!(
                indexed.ranks().unwrap(),
                scanned.ranks().unwrap(),
                "{name} {cfg:?}: rank sequence diverges"
            );
            assert_eq!(
                ordered(indexed.sets()),
                ordered(scanned.sets()),
                "{name} {cfg:?}: ranked set order diverges"
            );
            // Parallel ranked compares like-for-like (indexed parallel
            // against scan parallel): sequential and parallel tie-break
            // order is a separate, pre-existing surface.
            for threads in [2usize, 4] {
                let indexed = FdQuery::over(&db)
                    .with_config(cfg)
                    .ranked(FMax::new(&imp))
                    .parallel(threads)
                    .run()
                    .unwrap();
                let scanned = FdQuery::over(&twin)
                    .with_config(cfg)
                    .ranked(FMax::new(&imp))
                    .parallel(threads)
                    .run()
                    .unwrap();
                assert_eq!(
                    ordered(indexed.sets()),
                    ordered(scanned.sets()),
                    "{name} {cfg:?} threads={threads}: parallel ranked diverges"
                );
            }
        }
    }
}

/// A fresh per-test data directory under the system temp dir.
fn fresh_dir(tag: u64) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("fd-idx-churn-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clearing stale test dir");
    }
    dir
}

/// One churn step, decoded from three random bytes.
fn apply_op(session: &mut FdSession<'static>, op: (u8, u8, u8)) {
    let (kind, sel, val) = op;
    let db = session.db();
    if kind % 3 == 0 {
        // Delete a live tuple (if any survive).
        let live: Vec<TupleId> = db.all_tuples().collect();
        if live.len() <= 1 {
            return;
        }
        let victim = live[sel as usize % live.len()];
        let mut batch = DeltaBatch::new();
        batch.delete(victim);
        session.commit(batch).expect("delete commits");
    } else {
        // Insert a row of small strings/ints/nulls, exercising the
        // interner on the WAL path.
        let rel = RelId((sel as usize % db.num_relations()) as u16);
        let arity = db.relation(rel).schema().attrs().len();
        let values: Vec<Value> = (0..arity)
            .map(|i| match (val as usize + i) % 4 {
                0 => Value::Null,
                1 => Value::Int((val % 5) as i64),
                _ => Value::str(format!("s{}", (val as usize + i) % 6)),
            })
            .collect();
        let mut batch = DeltaBatch::new();
        batch.insert(rel, values);
        session.commit(batch).expect("insert commits");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized churn: after every commit the posting lists must match
    /// a from-scratch rebuild, and after a crash (drop with no
    /// checkpoint) the recovered database must pass the same audit and
    /// enumerate identically with the indexes off.
    #[test]
    fn indexes_stay_consistent_under_churn_and_recovery(
        ops in proptest::collection::vec((0u8..=255, 0u8..=255, 0u8..=255), 1..12),
        tag in 0u64..1_000_000,
    ) {
        let dir = fresh_dir(tag);
        {
            let mut session = FdSession::new(tourist_database());
            session.persist_to(&dir, FsyncPolicy::Off).expect("persist");
            for &op in &ops {
                apply_op(&mut session, op);
                prop_assert!(session.db().verify_indexes().is_ok(),
                    "postings diverged after {op:?}: {:?}",
                    session.db().verify_indexes());
            }
            // Dropped here without a checkpoint: recovery must replay
            // the WAL tail through the same interner and index paths.
        }
        let recovered = FdSession::open(&dir).expect("recovery");
        prop_assert!(recovered.db().verify_indexes().is_ok(),
            "recovered postings diverged: {:?}", recovered.db().verify_indexes());

        let twin = scan_twin(recovered.db());
        let indexed = FdQuery::over(recovered.db()).run().unwrap();
        let scanned = FdQuery::over(&twin).run().unwrap();
        prop_assert_eq!(ordered(indexed.sets()), ordered(scanned.sets()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
