//! End-to-end reproduction of every worked example in the paper:
//! Table 1 → Table 2 (Example 2.2), the Table 3 execution trace
//! (Example 4.1), the natural-join remark, Fig. 4 with Examples 6.1/6.3,
//! and the NP-hardness reduction of Proposition 5.1.

use full_disjunction::baselines::{join_nonempty_direct, oracle_fd};
use full_disjunction::core::sim::TableSim;
use full_disjunction::core::{
    canonicalize, AMin, AProd, ApproxJoin, ExactSim, FdConfig, ProbScores,
};
use full_disjunction::prelude::*;
use full_disjunction::relational::join::natural_join_all;

fn full_disjunction(db: &Database) -> Vec<TupleSet> {
    FdQuery::over(db)
        .run()
        .expect("batch queries are valid")
        .into_sets()
}

fn approx_full_disjunction<A: ApproxJoin + Sync>(db: &Database, a: &A, tau: f64) -> Vec<TupleSet> {
    FdQuery::over(db)
        .approx(a, tau)
        .run()
        .expect("valid approx query")
        .into_sets()
}

const C1: TupleId = TupleId(0);
const C2: TupleId = TupleId(1);
const C3: TupleId = TupleId(2);
const A1: TupleId = TupleId(3);
const A2: TupleId = TupleId(4);
const A3: TupleId = TupleId(5);
const S1: TupleId = TupleId(6);
const S2: TupleId = TupleId(7);
const S3: TupleId = TupleId(8);
const S4: TupleId = TupleId(9);

/// Example 2.2 part 1: the natural join of Table 1 is the single tuple
/// (Canada, London, diverse, Ramada, 3, Air Show).
#[test]
fn natural_join_of_table_1_is_a_single_tuple() {
    let db = tourist_database();
    let join = natural_join_all(&db, &[RelId(0), RelId(1), RelId(2)]);
    assert_eq!(join.len(), 1);
    let row = &join.rows[0];
    let texts: Vec<String> = row.iter().map(|v| v.to_string()).collect();
    for expected in ["Canada", "London", "diverse", "Ramada", "3", "Air Show"] {
        assert!(texts.contains(&expected.to_string()), "missing {expected}");
    }
}

/// Example 2.2 part 2 / Table 2: the full disjunction is exactly the six
/// tuple sets, including {c1, s2} with no Accommodations tuple (blocked
/// by s2's null City).
#[test]
fn full_disjunction_is_table_2() {
    let db = tourist_database();
    let fd = canonicalize(full_disjunction(&db));
    let got: Vec<Vec<TupleId>> = fd.iter().map(|s| s.tuples().to_vec()).collect();
    assert_eq!(
        got,
        vec![
            vec![C1, A1],
            vec![C1, A2, S1],
            vec![C1, S2],
            vec![C2, S3],
            vec![C2, S4],
            vec![C3, A3],
        ]
    );
    // And the brute-force oracle agrees with the definition.
    assert_eq!(fd, oracle_fd(&db));
}

/// Example 4.1 / Table 3: the exact contents of Incomplete and Complete
/// after initialization and after each of the six iterations, and the
/// claim that the loop iterates exactly as many times as there are
/// results.
#[test]
fn execution_trace_is_table_3() {
    let db = tourist_database();
    let mut it = FdiIter::with_config(&db, RelId(0), FdConfig::paper_faithful());

    let (inc, comp) = it.snapshot();
    assert_eq!(inc, vec!["{c1}", "{c2}", "{c3}"]);
    assert!(comp.is_empty());

    let table_3: [(&[&str], &[&str]); 6] = [
        (&["{c1, a2, s1}", "{c1, s2}", "{c2}", "{c3}"], &["{c1, a1}"]),
        (&["{c1, s2}", "{c2}", "{c3}"], &["{c1, a1}", "{c1, a2, s1}"]),
        (&["{c2}", "{c3}"], &["{c1, a1}", "{c1, a2, s1}", "{c1, s2}"]),
        (
            &["{c2, s4}", "{c3}"],
            &["{c1, a1}", "{c1, a2, s1}", "{c1, s2}", "{c2, s3}"],
        ),
        (
            &["{c3}"],
            &[
                "{c1, a1}",
                "{c1, a2, s1}",
                "{c1, s2}",
                "{c2, s3}",
                "{c2, s4}",
            ],
        ),
        (
            &[],
            &[
                "{c1, a1}",
                "{c1, a2, s1}",
                "{c1, s2}",
                "{c2, s3}",
                "{c2, s4}",
                "{c3, a3}",
            ],
        ),
    ];
    for (iteration, (want_inc, want_comp)) in table_3.iter().enumerate() {
        assert!(it.next().is_some());
        let (inc, comp) = it.snapshot();
        assert_eq!(&inc, want_inc, "Incomplete, iteration {}", iteration + 1);
        assert_eq!(&comp, want_comp, "Complete, iteration {}", iteration + 1);
    }
    // "the loop over Incomplete iterates exactly the same number of times
    // as there are tuple sets appearing in the result (i.e., 6 times)"
    assert!(it.next().is_none());
    assert_eq!(it.stats().results, 6);
}

/// Fig. 4 + Example 6.1 + Example 6.3, end to end.
#[test]
fn figure_4_and_examples_6_1_6_3() {
    let db = tourist_database();
    let mut sim = TableSim::new(ExactSim);
    sim.set(C1, A2, 0.8);
    sim.set(C1, S1, 0.8);
    sim.set(C1, S2, 0.8);
    sim.set(A2, S1, 1.0);
    sim.set(A2, S2, 0.5);
    let prob = ProbScores::from_fn(&db, |t| match t.0 {
        0 => 0.9,
        4 => 1.0,
        6 => 0.9,
        7 => 0.7,
        _ => 1.0,
    });
    let amin = AMin::new(sim.clone(), prob);
    let aprod = AProd::new(sim);

    // Example 6.1.
    assert!((amin.score(&db, &[C1, A2, S2]) - 0.5).abs() < 1e-12);
    assert!((aprod.score(&db, &[C1, A2, S2]) - 0.32).abs() < 1e-12);

    // Example 6.3: maximal subsets of {c1,s1,a2} ∪ {s2} at τ = 0.4.
    let t = full_disjunction::core::jcc::rebuild(&db, vec![C1, A2, S1]);
    let mut stats = Stats::new();
    let m1 = amin.maximal_subsets(&db, &t, S2, 0.4, &mut stats);
    assert_eq!(m1.len(), 1);
    assert_eq!(m1[0].tuples(), &[C1, A2, S2]);
    let mut m2: Vec<Vec<TupleId>> = aprod
        .maximal_subsets(&db, &t, S2, 0.4, &mut stats)
        .into_iter()
        .map(|s| s.tuples().to_vec())
        .collect();
    m2.sort();
    assert_eq!(m2, vec![vec![C1, S2], vec![A2, S2]]);
}

/// With exact similarity and certain tuples, the approximate full
/// disjunction collapses to the exact one for any τ ∈ (0, 1].
#[test]
fn afd_with_exact_similarity_is_fd() {
    let db = tourist_database();
    let amin = AMin::new(ExactSim, ProbScores::uniform(&db, 1.0));
    for tau in [0.01, 0.5, 1.0] {
        let afd = canonicalize(approx_full_disjunction(&db, &amin, tau));
        let fd = canonicalize(full_disjunction(&db));
        assert_eq!(afd, fd, "τ = {tau}");
    }
}

/// Proposition 5.1's reduction on the running example: with unit
/// importances the best f_sum answer has 3 = n tuples iff the natural
/// join is non-empty.
#[test]
fn proposition_5_1_reduction_on_table_1() {
    let db = tourist_database();
    assert!(join_nonempty_direct(&db));
    assert!(full_disjunction::baselines::join_nonempty_via_fsum(&db));
}
