//! Crash-recovery coverage of the durability subsystem: a durable
//! [`FdSession`] is dropped at various points (after WAL appends but
//! before a snapshot, mid-record via file truncation, after a clean
//! checkpoint) and reopened; the recovered state must be byte-equal to
//! a live session that committed the same batches, and must satisfy the
//! brute-force oracle invariant (`verify_snapshot`).

use full_disjunction::baselines::brute::oracle_fd;
use full_disjunction::core::store::{Wal, SNAPSHOT_FILE, WAL_FILE};
use full_disjunction::core::{canonicalize, AttrMax, FdConfig, FdSession, FsyncPolicy};
use full_disjunction::relational::{tourist_database, Database, DeltaBatch, RelId, TupleId, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

/// A fresh per-test data directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("fd-persistence-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clearing stale test dir");
    }
    dir
}

/// Commits `batch` to both the durable session under test and the live
/// in-memory oracle session, asserting both accept it.
fn commit_both(durable: &mut FdSession<'static>, live: &mut FdSession<'static>, batch: DeltaBatch) {
    durable.commit(batch.clone()).expect("durable commit");
    live.commit(batch).expect("live commit");
}

/// A deterministic mutation workload over the tourist example: `steps`
/// singleton-or-small batches of inserts and deletes.
fn tourist_batches(seed: u64, steps: usize) -> Vec<DeltaBatch> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = tourist_database();
    let num_rels = db.num_relations();
    let mut batches = Vec::new();
    for step in 0..steps {
        let mut batch = DeltaBatch::default();
        // Victims come from the batch-start state: a batch may not
        // delete what it inserts, nor delete twice (validate_batch
        // rejects both).
        let mut victims: Vec<TupleId> = db.all_tuples().collect();
        let mut inserts: Vec<(RelId, Vec<Value>)> = Vec::new();
        for _ in 0..rng.gen_range(1..=3usize) {
            if victims.len() > 4 && rng.gen_bool(0.4) {
                let victim = victims.swap_remove(rng.gen_range(0..victims.len()));
                batch.delete(victim);
            } else {
                let rel = RelId(rng.gen_range(0..num_rels) as u16);
                let arity = db.relation(rel).schema().arity();
                let mut values: Vec<Value> = (0..arity - 1)
                    .map(|_| {
                        if rng.gen_bool(0.15) {
                            Value::Null
                        } else {
                            Value::str(format!("k{}", rng.gen_range(0..3)))
                        }
                    })
                    .collect();
                values.push(Value::Int(step as i64));
                batch.insert(rel, values.clone());
                inserts.push((rel, values));
            }
        }
        // Mirror the batch onto the shadow database (deletes are the
        // batch-start ids that left `victims`).
        let survivors: std::collections::BTreeSet<TupleId> = victims.iter().copied().collect();
        let start: Vec<TupleId> = db.all_tuples().collect();
        for t in start {
            if !survivors.contains(&t) {
                db.remove_tuple(t).expect("victim is live");
            }
        }
        for (rel, values) in inserts {
            db.insert_tuple(rel, values).expect("insert is well-formed");
        }
        batches.push(batch);
    }
    batches
}

/// The recovered session must equal the live session in every
/// observable: database contents, canonical results, and the
/// from-scratch oracle.
fn assert_equivalent(recovered: &FdSession<'static>, live: &FdSession<'static>) {
    assert_eq!(
        recovered.canonical_results(),
        live.canonical_results(),
        "recovered results diverge from the live session"
    );
    assert_eq!(
        canonicalize(recovered.results().to_vec()),
        oracle_fd(recovered.db()),
        "recovered results diverge from the brute-force oracle"
    );
    assert!(recovered.verify_snapshot());
    // The id space replayed identically: every live tuple renders the
    // same label and values.
    let ids_live: Vec<TupleId> = live.db().all_tuples().collect();
    let ids_rec: Vec<TupleId> = recovered.db().all_tuples().collect();
    assert_eq!(ids_live, ids_rec, "tuple id spaces diverge");
    for t in ids_live {
        assert_eq!(live.db().tuple_values(t), recovered.db().tuple_values(t));
    }
}

#[test]
fn reopen_after_drop_replays_the_wal_tail() {
    let dir = fresh_dir("replay");
    let batches = tourist_batches(7, 12);
    let mut live = FdSession::new(tourist_database());
    {
        let mut durable = FdSession::new(tourist_database());
        durable
            .persist_to(&dir, FsyncPolicy::OnCommit)
            .expect("persist");
        for batch in &batches {
            commit_both(&mut durable, &mut live, batch.clone());
        }
        // Dropped here without a checkpoint: the snapshot in `dir` is
        // still the initial one; every batch lives only in the WAL.
    }
    let recovered = FdSession::open(&dir).expect("recovery");
    assert_eq!(recovered.replayed_batches(), batches.len() as u64);
    assert!(recovered.is_durable());
    assert_equivalent(&recovered, &live);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_folds_the_wal_into_the_snapshot() {
    let dir = fresh_dir("checkpoint");
    let batches = tourist_batches(11, 8);
    let mut live = FdSession::new(tourist_database());
    {
        let mut durable = FdSession::new(tourist_database());
        durable.persist_to(&dir, FsyncPolicy::Off).expect("persist");
        for batch in &batches {
            commit_both(&mut durable, &mut live, batch.clone());
        }
        assert!(durable.wal_bytes().unwrap() > 0);
        assert!(durable.checkpoint().expect("checkpoint"));
        assert_eq!(durable.wal_bytes(), Some(0));
    }
    let recovered = FdSession::open(&dir).expect("recovery");
    // Everything came from the snapshot; nothing was replayed.
    assert_eq!(recovered.replayed_batches(), 0);
    assert_equivalent(&recovered, &live);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_wal_tail_is_truncated_not_fatal() {
    let dir = fresh_dir("torn");
    let batches = tourist_batches(13, 6);
    let mut live = FdSession::new(tourist_database());
    {
        let mut durable = FdSession::new(tourist_database());
        durable
            .persist_to(&dir, FsyncPolicy::OnCommit)
            .expect("persist");
        for (i, batch) in batches.iter().enumerate() {
            // The live oracle stops before the final batch — the torn
            // tail below destroys exactly that record.
            durable.commit(batch.clone()).expect("durable commit");
            if i + 1 < batches.len() {
                live.commit(batch.clone()).expect("live commit");
            }
        }
    }
    // Chop bytes off the final record, simulating a crash mid-write.
    let wal = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal).expect("wal readable");
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("wal writable");
    file.set_len(bytes.len() as u64 - 3).expect("truncate");
    drop(file);

    let recovered = FdSession::open(&dir).expect("torn tail must not be fatal");
    assert_eq!(recovered.replayed_batches(), batches.len() as u64 - 1);
    assert_equivalent(&recovered, &live);

    // The truncation is durable: a second open replays the same good
    // prefix without re-truncating.
    drop(recovered);
    let again = FdSession::open(&dir).expect("reopen after truncation");
    assert_eq!(again.replayed_batches(), batches.len() as u64 - 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_wal_record_with_intact_tail_refuses_recovery() {
    let dir = fresh_dir("corrupt");
    let batches = tourist_batches(17, 5);
    {
        let mut durable = FdSession::new(tourist_database());
        durable
            .persist_to(&dir, FsyncPolicy::OnCommit)
            .expect("persist");
        for batch in &batches {
            durable.commit(batch.clone()).expect("durable commit");
        }
    }
    // Flip a byte inside the *first* record's payload. Unlike a torn
    // tail, intact acknowledged records follow the damage, so recovery
    // must refuse to open rather than silently truncate them away.
    let wal = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal).expect("wal readable");
    let second = bytes
        .windows(5)
        .enumerate()
        .skip(1)
        .find(|(_, w)| *w == b"\nrec ")
        .map(|(i, _)| i)
        .expect("at least two records");
    bytes[second - 2] ^= 0x41;
    std::fs::write(&wal, &bytes).expect("wal writable");

    let err = FdSession::open(&dir).expect_err("mid-file corruption must refuse recovery");
    assert!(
        err.to_string().contains("intact records follow"),
        "unexpected error: {err}"
    );
    // The refused open left the log untouched for manual repair.
    assert_eq!(std::fs::read(&wal).expect("wal readable"), bytes);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_between_snapshot_and_truncation_replays_nothing_twice() {
    // A checkpoint is two non-atomic steps: rename the fresh snapshot
    // in, then truncate the WAL. Simulate a crash exactly between them
    // by restoring the pre-checkpoint log next to the new snapshot; the
    // snapshot's seq must make recovery skip every stale record.
    let dir = fresh_dir("midcheckpoint");
    let batches = tourist_batches(23, 9);
    let mut live = FdSession::new(tourist_database());
    {
        let mut durable = FdSession::new(tourist_database());
        durable.persist_to(&dir, FsyncPolicy::Off).expect("persist");
        for batch in &batches {
            commit_both(&mut durable, &mut live, batch.clone());
        }
        let stale_wal = std::fs::read(dir.join(WAL_FILE)).expect("wal readable");
        assert!(durable.checkpoint().expect("checkpoint"));
        std::fs::write(dir.join(WAL_FILE), &stale_wal).expect("wal writable");
    }
    let recovered = FdSession::open(&dir).expect("recovery");
    assert_eq!(
        recovered.replayed_batches(),
        0,
        "stale WAL records were double-applied"
    );
    assert_equivalent(&recovered, &live);

    // And the session keeps going: a new commit appends past the stale
    // records and a further recovery replays exactly that one.
    let mut recovered = recovered;
    let mut batch = DeltaBatch::default();
    batch.insert(RelId(0), vec![Value::str("Chile"), Value::str("arid")]);
    recovered
        .commit(batch.clone())
        .expect("post-recovery commit");
    live.commit(batch).expect("live commit");
    drop(recovered);
    let again = FdSession::open(&dir).expect("second recovery");
    assert_eq!(again.replayed_batches(), 1);
    assert_equivalent(&again, &live);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_append_without_ack_is_recovered() {
    // A crash after the WAL append but before the in-memory apply (the
    // client never saw an ack): the record is in the log, so recovery
    // must surface its effects.
    let dir = fresh_dir("unacked");
    {
        let mut durable = FdSession::new(tourist_database());
        durable
            .persist_to(&dir, FsyncPolicy::OnCommit)
            .expect("persist");
    }
    let mut live = FdSession::new(tourist_database());
    let mut batch = DeltaBatch::default();
    batch.insert(RelId(0), vec![Value::str("Chile"), Value::str("arid")]);
    live.commit(batch.clone()).expect("live commit");
    {
        // Append the batch straight to the log, bypassing the session —
        // exactly the on-disk state of a crash between append and apply.
        // The snapshot written by persist_to folds in seq 0, so the
        // first logged commit is seq 1.
        let mut opened = Wal::open(dir.join(WAL_FILE)).expect("wal opens");
        opened
            .wal
            .append(1, &batch, FsyncPolicy::Always)
            .expect("manual append");
    }
    let recovered = FdSession::open(&dir).expect("recovery");
    assert_eq!(recovered.replayed_batches(), 1);
    assert_equivalent(&recovered, &live);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_threshold_triggers_automatic_checkpoints() {
    let dir = fresh_dir("compaction");
    let mut durable = FdSession::new(tourist_database());
    durable.persist_to(&dir, FsyncPolicy::Off).expect("persist");
    // Every commit overflows a 1-byte threshold, so each one must fold
    // the log into the snapshot and truncate.
    durable.set_wal_compaction_threshold(1);
    for batch in tourist_batches(19, 5) {
        durable.commit(batch).expect("commit");
        assert_eq!(durable.wal_bytes(), Some(0), "auto-compaction missed");
    }
    drop(durable);
    let recovered = FdSession::open(&dir).expect("recovery");
    assert_eq!(recovered.replayed_batches(), 0);
    assert!(recovered.verify_snapshot());
    assert!(dir.join(SNAPSHOT_FILE).exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ranked_session_recovers_its_window() {
    let dir = fresh_dir("ranked");
    let db = tourist_database();
    let f = AttrMax::new(&db, "Stars").expect("Stars exists");
    let window_before;
    {
        let mut durable = FdSession::ranked(db, f, 3);
        durable
            .persist_to(&dir, FsyncPolicy::OnCommit)
            .expect("persist");
        let mut batch = DeltaBatch::default();
        batch.insert(
            RelId(1),
            vec![
                Value::str("Canada"),
                Value::str("Banff"),
                Value::str("Chateau"),
                Value::Int(5),
            ],
        );
        durable.commit(batch).expect("commit");
        window_before = durable
            .window()
            .expect("ranked session has a window")
            .to_vec();
    }
    let recovered = FdSession::open_ranked_with_config(
        &dir,
        FdConfig::default(),
        FsyncPolicy::OnCommit,
        3,
        |db: &Database| {
            AttrMax::new(db, "Stars")
                .map(|f| Box::new(f) as Box<dyn full_disjunction::core::RankingFunction + Send>)
                .map_err(|e| full_disjunction::core::FdError::Storage {
                    reason: e.to_string(),
                })
        },
    )
    .expect("ranked recovery");
    assert_eq!(recovered.replayed_batches(), 1);
    let window_after = recovered.window().expect("recovered window").to_vec();
    assert_eq!(window_before.len(), window_after.len());
    for ((s1, r1), (s2, r2)) in window_before.iter().zip(&window_after) {
        assert_eq!(s1.tuples(), s2.tuples());
        assert_eq!(r1, r2);
    }
    // The new 5-star hotel must lead the recovered window.
    assert_eq!(window_after[0].1, 5.0);
    assert!(recovered.verify_snapshot());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_shutdown_checkpoints_the_durable_session() {
    use full_disjunction::core::Server;
    let dir = fresh_dir("serve");
    let mut session = FdSession::new(tourist_database());
    session
        .persist_to(&dir, FsyncPolicy::OnCommit)
        .expect("persist");
    let server = Server::start(session, "127.0.0.1:0").expect("server starts");
    let mut batch = DeltaBatch::default();
    batch.insert(RelId(0), vec![Value::str("Chile"), Value::str("arid")]);
    server.handle().commit(batch).expect("commit via handle");
    assert!(server
        .handle()
        .with(|s| s.wal_bytes().unwrap() > 0)
        .unwrap());
    // Graceful stop — the same path the wire `shutdown` command and a
    // handled SIGTERM take — must fold the WAL into a fresh snapshot.
    server.stop().expect("graceful stop");

    let recovered = FdSession::open(&dir).expect("recovery");
    assert_eq!(
        recovered.replayed_batches(),
        0,
        "shutdown checkpoint missing: WAL was replayed"
    );
    assert_eq!(recovered.db().num_tuples(), 11, "committed insert lost");
    assert!(recovered.verify_snapshot());
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    /// Randomized crash points: `steps` batches are committed durably,
    /// the session is dropped without a checkpoint after `crash_after`
    /// of them (the rest never happen), and recovery must match a live
    /// session that committed the same prefix.
    #[test]
    fn recovery_matches_live_session_on_random_workloads(
        seed in 0u64..50,
        steps in 1usize..8,
    ) {
        let dir = fresh_dir(&format!("prop-{seed}-{steps}"));
        let batches = tourist_batches(seed.wrapping_mul(31).wrapping_add(steps as u64), steps);
        let mut live = FdSession::new(tourist_database());
        {
            let mut durable = FdSession::new(tourist_database());
            durable.persist_to(&dir, FsyncPolicy::Off).expect("persist");
            for batch in &batches {
                commit_both(&mut durable, &mut live, batch.clone());
            }
        }
        let recovered = FdSession::open(&dir).expect("recovery");
        prop_assert_eq!(recovered.replayed_batches(), batches.len() as u64);
        prop_assert_eq!(recovered.canonical_results(), live.canonical_results());
        prop_assert_eq!(
            canonicalize(recovered.results().to_vec()),
            oracle_fd(recovered.db())
        );
        prop_assert!(recovered.verify_snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }
}
