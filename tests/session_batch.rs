//! Batched-commit equivalence: `FdSession::commit` over a batch of `k`
//! mutations must land on **exactly** the same state as `k` singleton
//! applies — identical final snapshot (checked against the brute-force
//! oracle) and the same *net-effect* event set (a set a singleton replay
//! adds and then retracts inside one batch cancels out) — across
//! chain/star workloads, plain and ranked sessions, while running only
//! **one** maintenance pass per batch.

use std::collections::BTreeMap;

use full_disjunction::baselines::brute::oracle_fd;
use full_disjunction::core::{
    canonical_rank_order, canonicalize, FMax, FdEvent, FdSession, ImpScores, RankingFunction,
    TupleSet, VecSink,
};
use full_disjunction::relational::{Database, Delta, TupleId, Value};
use full_disjunction::workloads::{chain, star, DataSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Caps the live database size so the exponential oracle stays fast.
const MAX_TUPLES: usize = 14;

fn random_value(rng: &mut StdRng, domain: i64) -> Value {
    if rng.gen_bool(0.12) {
        Value::Null
    } else {
        Value::Int(rng.gen_range(0..domain))
    }
}

/// Generates one valid mutation against the given snapshot. `blocked`
/// holds tuples already deleted earlier in the same pending batch (they
/// are dead by commit time, so a second delete would poison the whole
/// transaction).
fn random_delta(
    db: &Database,
    rng: &mut StdRng,
    payload: i64,
    blocked: &[TupleId],
) -> Option<Delta> {
    let candidates: Vec<TupleId> = db.all_tuples().filter(|t| !blocked.contains(t)).collect();
    let tuple_count = candidates.len();
    let do_insert = tuple_count <= 4 || (tuple_count < MAX_TUPLES && rng.gen_bool(0.5));
    if do_insert {
        let rel = full_disjunction::relational::RelId(rng.gen_range(0..db.num_relations()) as u16);
        let arity = db.relation(rel).schema().arity();
        let mut values: Vec<Value> = (0..arity - 1).map(|_| random_value(rng, 3)).collect();
        values.push(Value::Int(payload));
        Some(Delta::Insert { rel, values })
    } else if tuple_count > 0 {
        Some(Delta::Delete {
            tuple: candidates[rng.gen_range(0..tuple_count)],
        })
    } else {
        None
    }
}

/// Consolidates an event stream to its net effect: member list → +1 for
/// a final addition, −1 for a final retraction; add/retract pairs on the
/// same set cancel.
fn net_effect(events: &[FdEvent]) -> BTreeMap<Vec<TupleId>, i32> {
    let mut net: BTreeMap<Vec<TupleId>, i32> = BTreeMap::new();
    for event in events {
        let key = event.set().tuples().to_vec();
        let delta = match event {
            FdEvent::Added(_) => 1,
            FdEvent::Retracted(_) => -1,
        };
        *net.entry(key).or_insert(0) += delta;
    }
    net.retain(|_, v| *v != 0);
    assert!(
        net.values().all(|v| v.abs() == 1),
        "an event stream may move a set by at most one net step"
    );
    net
}

/// The shared churn driver: `steps` batches of up to `batch_k` mutations
/// each, committed in one pass on `batched` and replayed as singletons
/// on `singles`; every step checks snapshot equality, the oracle, and
/// net-effect event equivalence.
fn batched_churn(
    mut batched: FdSession<'_>,
    mut singles: FdSession<'_>,
    seed: u64,
    steps: usize,
    batch_k: usize,
) {
    let sink = VecSink::new();
    batched.subscribe(sink.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut payload = 10_000;
    let mut pushed_total = 0usize;
    for step in 0..steps {
        // Build one batch against the pre-commit snapshot.
        let k = rng.gen_range(1..=batch_k);
        let mut batch = batched.begin();
        let mut deltas: Vec<Delta> = Vec::new();
        let mut blocked: Vec<TupleId> = Vec::new();
        for _ in 0..k {
            let Some(delta) = random_delta(batched.db(), &mut rng, payload, &blocked) else {
                continue;
            };
            payload += 1;
            if let Delta::Delete { tuple } = delta {
                blocked.push(tuple);
            }
            batch.push(delta.clone());
            deltas.push(delta);
        }

        // One pass on the batched session…
        let commit = batched.commit(batch).expect("valid batch");
        assert_eq!(
            batched.maintenance_passes(),
            (step + 1) as u64,
            "one pass per commit"
        );

        // …k passes on the singleton mirror.
        let mut single_events: Vec<FdEvent> = Vec::new();
        for delta in deltas {
            single_events.extend(singles.apply(delta).expect("valid singleton").events);
        }

        // Identical final snapshot, on both sessions and vs the oracle.
        assert_eq!(
            batched.canonical_results(),
            singles.canonical_results(),
            "batch and singleton states diverged at step {step}"
        );
        assert_eq!(
            batched.canonical_results(),
            oracle_fd(batched.db()),
            "batched state diverged from the oracle at step {step}"
        );

        // The commit's events are already net (no add+retract pairs)…
        let batch_net = net_effect(&commit.events);
        assert_eq!(
            batch_net.len(),
            commit.events.len(),
            "a batched commit must not emit canceling event pairs (step {step})"
        );
        // …and equal the singleton stream's consolidation.
        assert_eq!(
            batch_net,
            net_effect(&single_events),
            "net-effect event sets diverged at step {step}"
        );

        // Push delivery saw exactly the commit's events, in order.
        pushed_total += commit.events.len();
        assert_eq!(sink.events().len(), pushed_total);

        // Ranked sessions: the maintained ranking must equal a
        // from-scratch rank + sort, and both windows must agree.
        if let (Some(a), Some(b)) = (batched.ranking(), singles.ranking()) {
            assert_eq!(a, b, "rankings diverged at step {step}");
            assert_eq!(batched.window(), singles.window());
        }
    }
    assert!(batched.verify_snapshot());
    assert!(singles.verify_snapshot());
}

fn ties_imp(db: &Database) -> ImpScores {
    // `% 3` makes rank ties common, exercising the canonical tie order;
    // tuples inserted later rank through the documented default (0.0).
    ImpScores::from_fn(db, |t| (t.0 % 3) as f64)
}

#[test]
fn chain_batch_commit_equals_singleton_applies() {
    let db = chain(3, &DataSpec::new(3, 3).seed(0xC0FFEE));
    batched_churn(FdSession::new(db.clone()), FdSession::new(db), 41, 40, 4);
}

#[test]
fn star_batch_commit_equals_singleton_applies() {
    let db = star(3, &DataSpec::new(3, 3).seed(0xBEEF));
    batched_churn(FdSession::new(db.clone()), FdSession::new(db), 43, 40, 4);
}

#[test]
fn ranked_chain_batch_commit_equals_singleton_applies() {
    let db = chain(3, &DataSpec::new(3, 3).seed(0xFACE));
    let imp = ties_imp(&db);
    batched_churn(
        FdSession::ranked(db.clone(), FMax::new(&imp), 3),
        FdSession::ranked(db, FMax::new(&imp), 3),
        47,
        30,
        4,
    );
}

#[test]
fn ranked_star_batch_commit_equals_singleton_applies() {
    let db = star(3, &DataSpec::new(3, 3).seed(0xF00D));
    let imp = ties_imp(&db);
    batched_churn(
        FdSession::ranked(db.clone(), FMax::new(&imp), 3),
        FdSession::ranked(db, FMax::new(&imp), 3),
        53,
        30,
        4,
    );
}

/// A ranked session's window arithmetic, spot-checked end to end: after
/// a batch that deletes the leader's witness and inserts a higher-ranked
/// tuple, the window equals the from-scratch top-k of the final state.
#[test]
fn ranked_batch_window_matches_from_scratch_sort() {
    let db = chain(3, &DataSpec::new(4, 2).seed(7));
    let imp = ties_imp(&db);
    let mut session = FdSession::ranked(db, FMax::new(&imp), 2);
    let victims: Vec<TupleId> = session.db().all_tuples().take(2).collect();
    let mut batch = session.begin();
    for v in victims {
        batch.delete(v);
    }
    let rel = full_disjunction::relational::RelId(0);
    let arity = session.db().relation(rel).schema().arity();
    batch.insert(rel, (0..arity).map(|i| Value::Int(i as i64 % 3)).collect());
    session.commit(batch).unwrap();

    let f = FMax::new(&imp);
    let mut scratch: Vec<(TupleSet, f64)> = session
        .results()
        .iter()
        .map(|s| (s.clone(), f.rank(session.db(), s)))
        .collect();
    scratch.sort_by(|a, b| canonical_rank_order(a.1, &a.0, b.1, &b.0));
    assert_eq!(session.ranking().unwrap(), &scratch[..]);
    assert_eq!(session.window().unwrap(), &scratch[..2.min(scratch.len())]);
    assert!(session.verify_snapshot());
}

/// The net-effect guarantee in isolation: one batch whose singleton
/// replay would add a set and retract it again must surface neither.
#[test]
fn intra_batch_churn_cancels_out() {
    let db = full_disjunction::relational::tourist_database();
    let mut batched = FdSession::new(db.clone());
    let mut singles = FdSession::new(db);

    let mut batch = batched.begin();
    batch
        .insert(
            full_disjunction::relational::RelId(1),
            vec![
                "Canada".into(),
                "London".into(),
                "Fairmont".into(),
                5.into(),
            ],
        )
        .delete(TupleId(0));
    let commit = batched.commit(batch).unwrap();

    let mut single_events = Vec::new();
    single_events.extend(
        singles
            .apply(Delta::Insert {
                rel: full_disjunction::relational::RelId(1),
                values: vec![
                    "Canada".into(),
                    "London".into(),
                    "Fairmont".into(),
                    5.into(),
                ],
            })
            .unwrap()
            .events,
    );
    single_events.extend(
        singles
            .apply(Delta::Delete { tuple: TupleId(0) })
            .unwrap()
            .events,
    );

    // The singleton replay surfaced at least one set containing c1 + the
    // Fairmont and retracted it again; the batch never mentions it.
    let transient = single_events
        .iter()
        .any(|e| e.set().contains(TupleId(0)) && e.set().contains(TupleId(10)));
    assert!(transient, "scenario must actually produce transient sets");
    assert!(commit
        .events
        .iter()
        .all(|e| !(e.set().contains(TupleId(0)) && e.set().contains(TupleId(10)))));
    assert_eq!(net_effect(&commit.events), net_effect(&single_events));
    assert_eq!(batched.canonical_results(), singles.canonical_results());
    assert_eq!(batched.canonical_results(), oracle_fd(batched.db()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized batch-vs-singleton equivalence over generated chain
    /// workloads, plain sessions.
    #[test]
    fn prop_batch_commit_equals_singleton_applies(
        seed in 1u64..10_000,
        rows in 2usize..4,
        batch_k in 1usize..6,
    ) {
        let db = chain(3, &DataSpec::new(rows, 3).seed(seed));
        batched_churn(
            FdSession::new(db.clone()),
            FdSession::new(db),
            seed ^ 0x5e55,
            10,
            batch_k,
        );
    }

    /// The same equivalence on star workloads with a maintained ranked
    /// window.
    #[test]
    fn prop_ranked_batch_commit_equals_singleton_applies(
        seed in 1u64..10_000,
        batch_k in 1usize..6,
    ) {
        let db = star(3, &DataSpec::new(3, 3).seed(seed));
        let imp = ties_imp(&db);
        batched_churn(
            FdSession::ranked(db.clone(), FMax::new(&imp), 3),
            FdSession::ranked(db, FMax::new(&imp), 3),
            seed ^ 0xA11,
            8,
            batch_k,
        );
    }
}

/// `canonicalize` is pulled in for the oracle comparison helpers above;
/// keep a direct sanity use so the import carries its weight.
#[test]
fn canonicalize_is_idempotent_on_session_results() {
    let db = chain(3, &DataSpec::new(3, 3).seed(1));
    let session = FdSession::new(db);
    let once = canonicalize(session.results().to_vec());
    let twice = canonicalize(once.clone());
    assert_eq!(once, twice);
}
