//! Workspace smoke test guarding the facade crate's public API surface:
//! the paper's running example (Table 1 → Table 2) must work through the
//! batch entry point and all three iterator front ends.

use full_disjunction::core::sim::ExactSim;
use full_disjunction::prelude::*;

fn full_disjunction(db: &Database) -> Vec<TupleSet> {
    FdQuery::over(db)
        .run()
        .expect("batch queries are valid")
        .into_sets()
}

/// Table 2 of the paper: the tourist database has exactly six maximal
/// join-consistent connected tuple sets.
#[test]
fn tourist_full_disjunction_has_six_answers() {
    let db = tourist_database();
    assert_eq!(full_disjunction(&db).len(), 6);
}

/// `INCREMENTALFD` streams a first answer (polynomial delay).
#[test]
fn fd_iter_yields_a_first_answer() {
    let db = tourist_database();
    let first = FdIter::new(&db).next().expect("FdIter yields an answer");
    assert!(!first.tuples().is_empty());
}

/// `PRIORITYINCREMENTALFD` yields a top-ranked first answer whose score
/// is the maximum over the whole stream.
#[test]
fn ranked_fd_iter_yields_the_top_answer_first() {
    let db = tourist_database();
    let imp = ImpScores::uniform(&db, 0.5);
    let f = FMax::new(&imp);
    let mut ranked = RankedFdIter::new(&db, &f);
    let (first, score) = ranked.next().expect("RankedFdIter yields an answer");
    assert!(!first.tuples().is_empty());
    assert!(
        ranked.all(|(_, s)| s <= score),
        "first answer must rank highest"
    );
}

/// `APPROXINCREMENTALFD` yields a first answer on the running example.
#[test]
fn approx_fd_iter_yields_a_first_answer() {
    let db = tourist_database();
    let a = AMin::new(ExactSim, ProbScores::uniform(&db, 1.0));
    let first = ApproxFdIter::new(&db, RelId(0), &a, 0.9)
        .next()
        .expect("ApproxFdIter yields an answer");
    assert!(!first.tuples().is_empty());
}

/// The whole-AFD entry point degenerates to FD under exact similarity
/// and certain tuples.
#[test]
fn approx_full_disjunction_degenerates_to_fd() {
    let db = tourist_database();
    let a = AMin::new(ExactSim, ProbScores::uniform(&db, 1.0));
    assert_eq!(FdQuery::over(&db).approx(&a, 0.9).run().unwrap().len(), 6);
}

/// The live subsystem round-trips a mutation through the facade prelude:
/// insert + delete leaves the materialized state where it started.
#[test]
fn live_session_round_trips_through_the_prelude() {
    let mut session = FdSession::new(tourist_database());
    let before = session.canonical_results();
    let commit = session
        .apply(Delta::Insert {
            rel: RelId(0),
            values: vec!["Chile".into(), "arid".into()],
        })
        .expect("insert");
    let t = commit.inserted()[0];
    assert_eq!(session.len(), 7);
    session.apply(Delta::Delete { tuple: t }).expect("delete");
    assert_eq!(session.canonical_results(), before);
    assert!(session.verify_snapshot());
}
