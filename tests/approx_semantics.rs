//! `APPROXINCREMENTALFD` semantics on generated workloads: agreement
//! with the definitional oracle, Definition 6.2's three axioms, typo
//! recovery with edit-distance similarity, and τ monotonicity.

use full_disjunction::baselines::oracle_afd;
use full_disjunction::core::sim::EditDistanceSim;
use full_disjunction::core::{canonicalize, AMin, AProd, ApproxJoin, ExactSim};
use full_disjunction::prelude::*;
use full_disjunction::workloads::{chain, random_probability, DataSpec};

fn approx_full_disjunction<A: ApproxJoin + Sync>(db: &Database, a: &A, tau: f64) -> Vec<TupleSet> {
    FdQuery::over(db)
        .approx(a, tau)
        .run()
        .expect("valid approx query")
        .into_sets()
}

fn amin_edit(db: &Database) -> AMin<EditDistanceSim> {
    AMin::new(EditDistanceSim, ProbScores::uniform(db, 1.0))
}

#[test]
fn afd_agrees_with_oracle_on_typo_workloads() {
    for seed in [1u64, 2, 3] {
        let db = chain(3, &DataSpec::new(4, 3).seed(seed).typos(0.4));
        let a = amin_edit(&db);
        for tau in [0.6, 0.8, 0.95] {
            let got = canonicalize(approx_full_disjunction(&db, &a, tau));
            let want = oracle_afd(&db, &a, tau);
            assert_eq!(got, want, "seed {seed} τ {tau}");
        }
    }
}

#[test]
fn afd_satisfies_definition_6_2() {
    let db = chain(3, &DataSpec::new(5, 3).seed(4).typos(0.3));
    let a = amin_edit(&db);
    let tau = 0.7;
    let afd = approx_full_disjunction(&db, &a, tau);

    // (ii) every result scores at least τ.
    for s in &afd {
        assert!(a.score(&db, s.tuples()) >= tau);
    }
    // (i) no redundancy.
    for x in &afd {
        for y in &afd {
            if x.tuples() != y.tuples() {
                assert!(!x.is_subset_of(y));
            }
        }
    }
    // (iii) every acceptable singleton is represented.
    for t in db.all_tuples() {
        if a.score(&db, &[t]) >= tau {
            assert!(afd.iter().any(|s| s.contains(t)), "tuple {t} lost");
        }
    }
}

#[test]
fn edit_distance_recovers_typos_that_exact_matching_loses() {
    // A database with heavy typo noise on the join attribute.
    let db = chain(2, &DataSpec::new(12, 3).seed(5).typos(0.6));
    let exact_fd = FdQuery::over(&db).run().unwrap().into_sets();
    let a = amin_edit(&db);
    let afd = approx_full_disjunction(&db, &a, 0.75);
    let pairs = |sets: &[TupleSet]| sets.iter().filter(|s| s.len() >= 2).count();
    assert!(
        pairs(&afd) >= pairs(&exact_fd),
        "approx must recover at least the exact joins"
    );
    // With this much noise, approx joins must strictly beat exact ones.
    assert!(
        pairs(&afd) > pairs(&exact_fd),
        "expected typo'd values to join approximately (afd {} vs fd {})",
        pairs(&afd),
        pairs(&exact_fd)
    );
}

#[test]
fn tau_monotonicity_results_nest() {
    let db = chain(3, &DataSpec::new(5, 3).seed(6).typos(0.3));
    let a = amin_edit(&db);
    let taus = [0.95, 0.8, 0.6];
    let mut previous: Option<Vec<TupleSet>> = None;
    for tau in taus {
        let afd = approx_full_disjunction(&db, &a, tau);
        if let Some(stricter) = &previous {
            // Every stricter-τ result is contained in some looser-τ one.
            for s in stricter {
                assert!(
                    afd.iter().any(|l| s.is_subset_of(l)),
                    "τ nesting violated at {tau}"
                );
            }
        }
        previous = Some(afd);
    }
}

#[test]
fn aprod_agrees_with_oracle_on_small_inputs() {
    for seed in [7u64, 8] {
        let db = chain(2, &DataSpec::new(4, 2).seed(seed).typos(0.4));
        let a = AProd::new(EditDistanceSim);
        for tau in [0.5, 0.8] {
            let got = canonicalize(approx_full_disjunction(&db, &a, tau));
            let want = oracle_afd(&db, &a, tau);
            assert_eq!(got, want, "seed {seed} τ {tau}");
        }
    }
}

#[test]
fn probability_threshold_excludes_uncertain_tuples() {
    let db = chain(2, &DataSpec::new(6, 3).seed(9));
    let prob = random_probability(&db, 0.0, 10);
    let a = AMin::new(ExactSim, prob.clone());
    let tau = 0.5;
    let afd = approx_full_disjunction(&db, &a, tau);
    for t in db.all_tuples() {
        let appears = afd.iter().any(|s| s.contains(t));
        assert_eq!(
            appears,
            prob.prob(t) >= tau,
            "tuple {t} with prob {}",
            prob.prob(t)
        );
    }
}

#[test]
fn tau_zero_is_everything_tau_above_one_is_nothing() {
    let db = chain(2, &DataSpec::new(4, 2).seed(11));
    let a = amin_edit(&db);
    // τ > 1 can never be met — the builder reports it as a typed error
    // (Definition 6.2 restricts τ to [0, 1]) instead of running to an
    // empty answer.
    assert_eq!(
        FdQuery::over(&db).approx(&a, 1.01).run().unwrap_err(),
        FdError::InvalidTau { tau: 1.01 }
    );
    // τ = 0 is met by every connected set; results must cover all tuples.
    let afd = approx_full_disjunction(&db, &a, 0.0);
    for t in db.all_tuples() {
        assert!(afd.iter().any(|s| s.contains(t)));
    }
}
