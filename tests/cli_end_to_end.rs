//! End-to-end tests of the `fd` command-line front end: file loading,
//! every mode, and error paths.

use full_disjunction::cli::{parse_args, run, Options};
use std::io::Write;

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("fd-cli-test-{name}-{}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(content.as_bytes()).expect("write");
    path
}

const CATALOG: &str = "\
relation Vendors(Product, Vendor)
laptop | Acme
phone  | Bravo

relation Prices(Product, Price)
laptop | 999
camera | 450
";

#[test]
fn computes_fd_from_a_file() {
    let path = write_temp("catalog", CATALOG);
    let opts = Options {
        input: Some(path.to_string_lossy().into_owned()),
        ..Options::default()
    };
    let out = run(&opts).unwrap();
    // laptop combines; phone and camera survive alone: 3 tuple sets.
    assert!(out.contains("3 tuple sets"), "{out}");
    assert!(out.contains("laptop"));
    assert!(out.contains("camera"));
    std::fs::remove_file(path).ok();
}

#[test]
fn ranked_mode_from_a_file() {
    let path = write_temp("ranked", CATALOG);
    let opts = parse_args([
        path.to_string_lossy().as_ref(),
        "--top",
        "1",
        "--rank-by",
        "Price",
    ])
    .unwrap();
    let out = run(&opts).unwrap();
    assert!(out.contains("999"), "{out}");
    assert!(!out.contains("camera"), "{out}");
    std::fs::remove_file(path).ok();
}

#[test]
fn approx_mode_joins_typos_from_a_file() {
    let noisy = "\
relation Vendors(Product, Vendor)
lapptop | Acme

relation Prices(Product, Price)
laptop | 999
";
    let path = write_temp("noisy", noisy);
    let opts = parse_args([path.to_string_lossy().as_ref(), "--approx", "0.8"]).unwrap();
    let out = run(&opts).unwrap();
    // "lapptop" ≈ "laptop": one combined row.
    assert!(out.contains("{v1, p1}"), "{out}");
    std::fs::remove_file(path).ok();
}

#[test]
fn missing_file_reports_an_error() {
    let opts = Options {
        input: Some("/definitely/not/here.txt".into()),
        ..Options::default()
    };
    let err = run(&opts).unwrap_err();
    assert!(err.contains("cannot read"));
}

#[test]
fn malformed_file_reports_a_parse_error() {
    let path = write_temp("bad", "1 | 2\n");
    let opts = Options {
        input: Some(path.to_string_lossy().into_owned()),
        ..Options::default()
    };
    let err = run(&opts).unwrap_err();
    assert!(err.contains("line 1"), "{err}");
    std::fs::remove_file(path).ok();
}

#[test]
fn sources_flag_prints_tables() {
    let path = write_temp("sources", CATALOG);
    let opts = parse_args([path.to_string_lossy().as_ref(), "--sources"]).unwrap();
    let out = run(&opts).unwrap();
    assert!(out.contains("Vendors"));
    assert!(out.contains("Prices"));
    std::fs::remove_file(path).ok();
}
