//! End-to-end tests of the `fd` command-line front end: file loading,
//! every mode, the `fd watch` maintenance REPL, and error paths.

use full_disjunction::cli::{parse_args, run, run_connect, run_serve, run_watch, Options};
use std::io::Write;

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("fd-cli-test-{name}-{}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(content.as_bytes()).expect("write");
    path
}

const CATALOG: &str = "\
relation Vendors(Product, Vendor)
laptop | Acme
phone  | Bravo

relation Prices(Product, Price)
laptop | 999
camera | 450
";

#[test]
fn computes_fd_from_a_file() {
    let path = write_temp("catalog", CATALOG);
    let opts = Options {
        input: Some(path.to_string_lossy().into_owned()),
        ..Options::default()
    };
    let out = run(&opts).unwrap();
    // laptop combines; phone and camera survive alone: 3 tuple sets.
    assert!(out.contains("3 tuple sets"), "{out}");
    assert!(out.contains("laptop"));
    assert!(out.contains("camera"));
    std::fs::remove_file(path).ok();
}

#[test]
fn ranked_mode_from_a_file() {
    let path = write_temp("ranked", CATALOG);
    let opts = parse_args([
        path.to_string_lossy().as_ref(),
        "--top",
        "1",
        "--rank-by",
        "Price",
    ])
    .unwrap();
    let out = run(&opts).unwrap();
    assert!(out.contains("999"), "{out}");
    assert!(!out.contains("camera"), "{out}");
    std::fs::remove_file(path).ok();
}

#[test]
fn approx_mode_joins_typos_from_a_file() {
    let noisy = "\
relation Vendors(Product, Vendor)
lapptop | Acme

relation Prices(Product, Price)
laptop | 999
";
    let path = write_temp("noisy", noisy);
    let opts = parse_args([path.to_string_lossy().as_ref(), "--approx", "0.8"]).unwrap();
    let out = run(&opts).unwrap();
    // "lapptop" ≈ "laptop": one combined row.
    assert!(out.contains("{v1, p1}"), "{out}");
    std::fs::remove_file(path).ok();
}

#[test]
fn stats_flag_appends_counters_and_timings() {
    let path = write_temp("stats", CATALOG);
    let file = path.to_string_lossy().into_owned();

    // Plain batch run: the counters and the wall time, no k-th marker.
    let out = run(&parse_args([file.as_str(), "--stats"]).unwrap()).unwrap();
    assert!(out.contains("\nstats:\n"), "{out}");
    assert!(out.contains("jcc_checks="), "{out}");
    assert!(out.contains("approx_evals=0"), "{out}");
    assert!(out.contains("wall_us="), "{out}");
    assert!(!out.contains("kth_result_us="), "{out}");
    // The stats block must not disturb the results themselves.
    let base = run(&parse_args([file.as_str()]).unwrap()).unwrap();
    assert!(out.starts_with(&base), "{out}");

    // Ranked top-k: heap work counted, k-th-result timing reported.
    let out =
        run(&parse_args([file.as_str(), "--stats", "--top", "1", "--rank-by", "Price"]).unwrap())
            .unwrap();
    assert!(out.contains("heap_pushes="), "{out}");
    assert!(out.contains("first_result_us="), "{out}");
    assert!(out.contains("kth_result_us="), "{out}");
    std::fs::remove_file(path).ok();
}

#[test]
fn missing_file_reports_an_error() {
    let opts = Options {
        input: Some("/definitely/not/here.txt".into()),
        ..Options::default()
    };
    let err = run(&opts).unwrap_err();
    assert!(err.contains("cannot read"));
}

#[test]
fn malformed_file_reports_a_parse_error() {
    let path = write_temp("bad", "1 | 2\n");
    let opts = Options {
        input: Some(path.to_string_lossy().into_owned()),
        ..Options::default()
    };
    let err = run(&opts).unwrap_err();
    assert!(err.contains("line 1"), "{err}");
    std::fs::remove_file(path).ok();
}

#[test]
fn sources_flag_prints_tables() {
    let path = write_temp("sources", CATALOG);
    let opts = parse_args([path.to_string_lossy().as_ref(), "--sources"]).unwrap();
    let out = run(&opts).unwrap();
    assert!(out.contains("Vendors"));
    assert!(out.contains("Prices"));
    std::fs::remove_file(path).ok();
}

#[test]
fn engine_flags_from_a_file_agree_with_default() {
    let path = write_temp("engines", CATALOG);
    let file = path.to_string_lossy().into_owned();
    let base = run(&parse_args([file.as_str()]).unwrap()).unwrap();
    for extra in [
        vec!["--engine", "scan"],
        vec!["--engine", "indexed", "--page-size", "2"],
    ] {
        let mut args = vec![file.as_str()];
        args.extend(extra);
        let out = run(&parse_args(args).unwrap()).unwrap();
        assert_eq!(base, out);
    }
    std::fs::remove_file(path).ok();
}

/// `--engine`/`--page-size` used to be *rejected* in ranked and approx
/// modes; with every subcommand built on one `FdQuery` they are honored
/// and must not change the answers.
#[test]
fn ranked_mode_honors_engine_flags_from_a_file() {
    let path = write_temp("ranked-engines", CATALOG);
    let file = path.to_string_lossy().into_owned();
    let ranked = ["--top", "2", "--rank-by", "Price"];
    let mut base_args = vec![file.as_str()];
    base_args.extend(ranked);
    let base = run(&parse_args(base_args.clone()).unwrap()).unwrap();
    assert!(base.contains("999"), "{base}");
    for extra in [
        vec!["--engine", "scan"],
        vec!["--engine", "indexed", "--page-size", "2"],
    ] {
        let mut args = base_args.clone();
        args.extend(extra);
        let out = run(&parse_args(args).unwrap()).unwrap();
        assert_eq!(base, out);
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn approx_mode_honors_engine_flags_from_a_file() {
    let noisy = "\
relation Vendors(Product, Vendor)
lapptop | Acme

relation Prices(Product, Price)
laptop | 999
";
    let path = write_temp("approx-engines", noisy);
    let file = path.to_string_lossy().into_owned();
    let base = run(&parse_args([file.as_str(), "--approx", "0.8"]).unwrap()).unwrap();
    assert!(base.contains("{v1, p1}"), "{base}");
    for extra in [
        vec!["--engine", "scan"],
        vec!["--engine", "scan", "--page-size", "1"],
    ] {
        let mut args = vec![file.as_str(), "--approx", "0.8"];
        args.extend(extra);
        let out = run(&parse_args(args).unwrap()).unwrap();
        assert_eq!(base, out);
    }
    std::fs::remove_file(path).ok();
}

/// The ranked-approximate combination (end of Section 6) from the CLI:
/// `--approx` + `--rank-by`/`--top` build one ranked-approx `FdQuery`.
#[test]
fn ranked_approx_mode_from_a_file() {
    let noisy = "\
relation Vendors(Product, Vendor)
lapptop | Acme
phone   | Bravo

relation Prices(Product, Price)
laptop | 999
phone  | 650
";
    let path = write_temp("ranked-approx", noisy);
    let opts = parse_args([
        path.to_string_lossy().as_ref(),
        "--approx",
        "0.8",
        "--rank-by",
        "Price",
        "--top",
        "1",
    ])
    .unwrap();
    let out = run(&opts).unwrap();
    // The best-priced approximate join wins: lapptop ≈ laptop at 999.
    assert!(out.contains("999"), "{out}");
    assert!(out.contains("rank  999.000"), "{out}");
    assert!(!out.contains("Bravo"), "{out}");
    std::fs::remove_file(path).ok();
}

/// The full `fd watch` loop: load a file, insert (new result events),
/// insert a subsuming tuple (retraction + addition), delete (retraction
/// + restoration).
#[test]
fn watch_repl_end_to_end() {
    let path = write_temp("watch", CATALOG);
    let opts = parse_args(["watch", path.to_string_lossy().as_ref()]).unwrap();
    assert!(opts.watch);

    // Tuple ids in CATALOG: v1 = t0 (laptop), v2 = t1 (phone),
    // p1 = t2 (laptop 999), p2 = t3 (camera 450).
    let script = "\
insert Prices | phone | 650
show
delete t4
quit
";
    let mut out = Vec::new();
    run_watch(&opts, script.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();

    // Initial state: {v1, p1}, {v2}, {p2} — three results.
    assert!(text.contains("(3 results)"), "{text}");
    // Inserting the phone price joins v2: the singleton {v2} is
    // retracted, the combined {v2, p3} appears.
    assert!(text.contains("inserted p3 into Prices"), "{text}");
    assert!(text.contains("- {v2}"), "{text}");
    assert!(text.contains("+ {v2, p3}"), "{text}");
    // Deleting it again (global id t4) retracts the pair and restores
    // the singleton.
    assert!(text.contains("deleted p3"), "{text}");
    assert!(text.contains("- {v2, p3}"), "{text}");
    assert!(text.contains("+ {v2}"), "{text}");
    assert!(text.contains("bye (3 results)"), "{text}");
    std::fs::remove_file(path).ok();
}

/// Transactional watch: `begin` queues mutations, `commit` lands them
/// atomically in one maintenance pass with net-effect events.
#[test]
fn watch_repl_begin_commit_batches_from_a_file() {
    let path = write_temp("watch-batch", CATALOG);
    let opts = parse_args(["watch", path.to_string_lossy().as_ref()]).unwrap();

    // Tuple ids in CATALOG: v1 = t0 (laptop), v2 = t1 (phone),
    // p1 = t2 (laptop 999), p2 = t3 (camera 450).
    // One transaction: add the phone price AND delete the phone vendor.
    // A singleton replay would surface {v2, p3} and retract it one step
    // later; the batch must emit only the net change.
    let script = "\
begin
insert Prices | phone | 650
delete t1
commit
show
quit
";
    let mut out = Vec::new();
    run_watch(&opts, script.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();

    assert!(
        text.contains("queued insert into Prices (1 pending)"),
        "{text}"
    );
    assert!(text.contains("queued delete t1 (2 pending)"), "{text}");
    assert!(
        text.contains("committed 2 mutation(s) in 1 maintenance pass"),
        "{text}"
    );
    assert!(text.contains("inserted p3 into Prices"), "{text}");
    assert!(text.contains("deleted v2"), "{text}");
    // Net effect: {v2} leaves, the orphaned price {p3} enters; the
    // transient {v2, p3} pair never surfaces.
    assert!(text.contains("- {v2}"), "{text}");
    assert!(text.contains("+ {p3}"), "{text}");
    assert!(!text.contains("{v2, p3}"), "transient set surfaced: {text}");
    assert!(text.contains("bye (3 results)"), "{text}");
    std::fs::remove_file(path).ok();
}

/// `fd watch --script FILE` replays a mutation script non-interactively
/// and must reproduce the checked-in golden transcript byte for byte
/// (CI re-runs the same diff through the real binary).
#[test]
fn watch_script_matches_golden_transcript() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let script = root.join("tests/golden/watch_session.script");
    let golden = root.join("tests/golden/watch_session.golden");
    let opts = parse_args(["watch", "--script", script.to_string_lossy().as_ref()]).unwrap();
    let mut out = Vec::new();
    // Stdin is ignored in script mode.
    run_watch(&opts, "delete t0\nquit\n".as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let expected = std::fs::read_to_string(golden).expect("golden transcript");
    assert_eq!(
        text, expected,
        "watch --script diverged from the golden transcript"
    );
}

/// A `Write` target a daemon thread and the test can share: `run_serve`
/// announces its ephemeral bound address through it.
#[derive(Clone, Default)]
struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
    }
}

/// `fd serve` + `fd connect --script FILE` reproduce the serve golden
/// transcript byte for byte through the real CLI entry points (CI
/// re-runs the same diff through the released binary, across two
/// processes).
#[test]
fn serve_script_matches_golden_transcript() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let script = root.join("tests/golden/serve_session.script");
    let golden = root.join("tests/golden/serve_session.golden");

    // Port 0 keeps the test parallel-safe; the daemon announces the
    // resolved address on its output before blocking in `wait`.
    let serve_opts = parse_args(["serve", "--addr", "127.0.0.1:0"]).unwrap();
    let daemon_out = SharedBuf::default();
    let daemon = {
        let out = daemon_out.clone();
        std::thread::spawn(move || run_serve(&serve_opts, out))
    };
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let addr = loop {
        let text = daemon_out.text();
        if let Some(rest) = text.strip_prefix("fd serve: listening on ") {
            break rest.split_whitespace().next().unwrap().to_owned();
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never announced its address: {text:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };

    let connect_opts = parse_args([
        "connect",
        "--addr",
        addr.as_str(),
        "--script",
        script.to_string_lossy().as_ref(),
    ])
    .unwrap();
    let mut out = Vec::new();
    // Stdin is ignored in script mode.
    run_connect(&connect_opts, std::io::empty(), &mut out).unwrap();
    // The script ends in `shutdown`, so the daemon exits on its own.
    daemon.join().unwrap().unwrap();

    let text = String::from_utf8(out).unwrap();
    let expected = std::fs::read_to_string(golden).expect("golden transcript");
    assert_eq!(
        text, expected,
        "connect --script diverged from the golden transcript"
    );
}

#[test]
fn watch_repl_handles_quoted_values_and_bad_input() {
    let path = write_temp("watch-quoted", CATALOG);
    let opts = parse_args(["watch", path.to_string_lossy().as_ref()]).unwrap();
    let script = "\
insert Vendors | \"tripod|pro\" | Acme
insert Vendors | wrong-arity
quit
";
    let mut out = Vec::new();
    run_watch(&opts, script.as_bytes(), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("inserted v3 into Vendors"), "{text}");
    assert!(text.contains("+ {v3}"), "{text}");
    assert!(text.contains("error:"), "{text}");
    assert!(text.contains("bye (4 results)"), "{text}");
    std::fs::remove_file(path).ok();
}
