//! Cross-engine equivalence of the `FdQuery` builder: every public
//! enumeration mode must compute identical answers — as canonical sets,
//! and in identical (deterministic, canonically tie-broken) rank order
//! for the ranked modes — across every `StoreEngine` × page size ×
//! thread count combination, on the paper's tourist example and the
//! chain/star workloads. This is the acceptance gate for "engine/
//! page-size/threads are honored uniformly" and for the parallel ranked
//! plan being output-identical to the sequential one.
//!
//! `InitStrategy` is a *sequential batch* knob: the reuse strategies are
//! crossed only with the batch mode, and their combination with
//! `.ranked`/`.approx`/`.parallel` is asserted to be a typed error
//! (never a silent no-op).

use full_disjunction::core::{FdQuery, TupleSet};
use full_disjunction::prelude::*;
use full_disjunction::workloads::{chain, star, DataSpec};
use proptest::prelude::*;

fn workloads() -> Vec<(String, Database)> {
    vec![
        ("tourist".into(), tourist_database()),
        ("chain".into(), chain(3, &DataSpec::new(8, 4).seed(41))),
        ("star".into(), star(4, &DataSpec::new(6, 4).seed(42))),
    ]
}

/// Engine × page size × init — the full cross, valid for the sequential
/// batch mode only.
fn batch_configs() -> Vec<FdConfig> {
    let mut out = Vec::new();
    for engine in [StoreEngine::Scan, StoreEngine::Indexed] {
        for page_size in [None, Some(1), Some(7), Some(256)] {
            for init in [
                InitStrategy::Singletons,
                InitStrategy::ReuseResults,
                InitStrategy::TrimExtend,
            ] {
                out.push(FdConfig {
                    engine,
                    page_size,
                    init,
                });
            }
        }
    }
    out
}

/// Engine × page size (singleton init) — the cross valid for every mode.
fn exec_configs() -> Vec<FdConfig> {
    let mut out = Vec::new();
    for engine in [StoreEngine::Scan, StoreEngine::Indexed] {
        for page_size in [None, Some(1), Some(7), Some(256)] {
            out.push(FdConfig {
                engine,
                page_size,
                init: InitStrategy::Singletons,
            });
        }
    }
    out
}

fn canonical(sets: Vec<TupleSet>) -> Vec<Vec<TupleId>> {
    let mut out: Vec<Vec<TupleId>> = sets.into_iter().map(|s| s.tuples().to_vec()).collect();
    out.sort();
    out
}

fn ordered(sets: &[TupleSet]) -> Vec<Vec<TupleId>> {
    sets.iter().map(|s| s.tuples().to_vec()).collect()
}

#[test]
fn batch_mode_is_config_invariant() {
    for (name, db) in workloads() {
        let base = canonical(FdQuery::over(&db).run().unwrap().into_sets());
        assert!(!base.is_empty(), "{name}");
        for cfg in batch_configs() {
            let got = canonical(
                FdQuery::over(&db)
                    .with_config(cfg)
                    .run()
                    .unwrap()
                    .into_sets(),
            );
            assert_eq!(base, got, "{name} {cfg:?}");
        }
    }
}

#[test]
fn parallel_mode_is_config_invariant() {
    for (name, db) in workloads() {
        let base = canonical(FdQuery::over(&db).run().unwrap().into_sets());
        for cfg in exec_configs() {
            for threads in [1usize, 3, 8] {
                let got = canonical(
                    FdQuery::over(&db)
                        .with_config(cfg)
                        .parallel(threads)
                        .run()
                        .unwrap()
                        .into_sets(),
                );
                assert_eq!(base, got, "{name} {cfg:?} threads={threads}");
            }
        }
    }
}

#[test]
fn ranked_mode_is_config_invariant_in_rank_order() {
    for (name, db) in workloads() {
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 7) as f64);
        let base = FdQuery::over(&db).ranked(FMax::new(&imp)).run().unwrap();
        let base_ranks: Vec<f64> = base.ranks().unwrap().to_vec();
        let base_sets = ordered(base.sets());
        // Emission must be non-increasing in rank.
        for w in base_ranks.windows(2) {
            assert!(w[0] >= w[1], "{name}: rank order violated");
        }
        for cfg in exec_configs() {
            let got = FdQuery::over(&db)
                .with_config(cfg)
                .ranked(FMax::new(&imp))
                .run()
                .unwrap();
            // Deterministic emission: identical rank sequence AND
            // identical set order (ties are canonically broken), for
            // every engine and page size.
            assert_eq!(&base_ranks, got.ranks().unwrap(), "{name} {cfg:?}");
            assert_eq!(base_sets, ordered(got.sets()), "{name} {cfg:?}");
        }
    }
}

/// The tentpole acceptance test: `.ranked(f)[.top_k(k)].parallel(n)`
/// yields exactly the sequential ranked output — sets and order — for
/// n ∈ {1, 2, 4}, across engines and page sizes, on every workload.
#[test]
fn parallel_ranked_is_output_identical_to_sequential() {
    for (name, db) in workloads() {
        // `% 5` forces rank ties, stressing the canonical tie-breaking
        // on both the sequential and the merged plan.
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 5) as f64);
        let sequential = FdQuery::over(&db).ranked(FMax::new(&imp)).run().unwrap();
        for cfg in exec_configs() {
            for threads in [1usize, 2, 4] {
                let parallel = FdQuery::over(&db)
                    .with_config(cfg)
                    .ranked(FMax::new(&imp))
                    .parallel(threads)
                    .run()
                    .unwrap();
                assert_eq!(
                    ordered(sequential.sets()),
                    ordered(parallel.sets()),
                    "{name} {cfg:?} threads={threads}"
                );
                assert_eq!(
                    sequential.ranks(),
                    parallel.ranks(),
                    "{name} {cfg:?} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn parallel_ranked_top_k_and_threshold_match_sequential() {
    for (name, db) in workloads() {
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 5) as f64);
        let all = FdQuery::over(&db).ranked(FMax::new(&imp)).run().unwrap();
        let tau = all.ranks().unwrap()[all.len() / 2];
        for threads in [1usize, 2, 4] {
            for k in [0usize, 1, all.len() / 2, all.len(), all.len() + 3] {
                let seq = FdQuery::over(&db)
                    .ranked(FMax::new(&imp))
                    .top_k(k)
                    .run()
                    .unwrap();
                let par = FdQuery::over(&db)
                    .ranked(FMax::new(&imp))
                    .top_k(k)
                    .parallel(threads)
                    .run()
                    .unwrap();
                assert_eq!(
                    ordered(seq.sets()),
                    ordered(par.sets()),
                    "{name} k={k} threads={threads}"
                );
                assert_eq!(seq.ranks(), par.ranks(), "{name} k={k} threads={threads}");
            }
            let seq = FdQuery::over(&db)
                .ranked(FMax::new(&imp))
                .threshold(tau)
                .run()
                .unwrap();
            let par = FdQuery::over(&db)
                .ranked(FMax::new(&imp))
                .threshold(tau)
                .parallel(threads)
                .run()
                .unwrap();
            assert_eq!(
                ordered(seq.sets()),
                ordered(par.sets()),
                "{name} τ={tau} threads={threads}"
            );
            assert_eq!(seq.ranks(), par.ranks(), "{name} τ={tau} threads={threads}");
        }
    }
}

#[test]
fn ranked_top_k_and_threshold_are_config_invariant() {
    for (name, db) in workloads() {
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 7) as f64);
        let all = FdQuery::over(&db).ranked(FMax::new(&imp)).run().unwrap();
        let k = (all.len() / 2).max(1);
        let tau = all.ranks().unwrap()[all.len() / 2];
        let base_topk: Vec<f64> = all.ranks().unwrap()[..k].to_vec();
        let base_thresh: Vec<f64> = all
            .ranks()
            .unwrap()
            .iter()
            .copied()
            .filter(|&r| r >= tau)
            .collect();
        for cfg in exec_configs() {
            let topk = FdQuery::over(&db)
                .with_config(cfg)
                .ranked(FMax::new(&imp))
                .top_k(k)
                .run()
                .unwrap();
            assert_eq!(base_topk, topk.ranks().unwrap(), "{name} {cfg:?} top-k");

            let thresh = FdQuery::over(&db)
                .with_config(cfg)
                .ranked(FMax::new(&imp))
                .threshold(tau)
                .run()
                .unwrap();
            assert_eq!(
                base_thresh,
                thresh.ranks().unwrap(),
                "{name} {cfg:?} threshold"
            );
        }
    }
}

#[test]
fn approx_mode_is_config_invariant_and_parallelizes() {
    for (name, db) in workloads() {
        let a = AMin::new(
            full_disjunction::core::ExactSim,
            ProbScores::uniform(&db, 1.0),
        );
        let base = canonical(
            FdQuery::over(&db)
                .approx(&a, 0.9)
                .run()
                .unwrap()
                .into_sets(),
        );
        for cfg in exec_configs() {
            let got = canonical(
                FdQuery::over(&db)
                    .with_config(cfg)
                    .approx(&a, 0.9)
                    .run()
                    .unwrap()
                    .into_sets(),
            );
            assert_eq!(base, got, "{name} {cfg:?}");
            for threads in [2usize, 4] {
                let par = canonical(
                    FdQuery::over(&db)
                        .with_config(cfg)
                        .approx(&a, 0.9)
                        .parallel(threads)
                        .run()
                        .unwrap()
                        .into_sets(),
                );
                assert_eq!(base, par, "{name} {cfg:?} threads={threads}");
            }
        }
    }
}

#[test]
fn ranked_approx_mode_is_config_invariant_and_parallelizes_in_rank_order() {
    for (name, db) in workloads() {
        let a = AMin::new(
            full_disjunction::core::ExactSim,
            ProbScores::uniform(&db, 1.0),
        );
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 5) as f64);
        let base = FdQuery::over(&db)
            .approx(&a, 0.9)
            .ranked(FMax::new(&imp))
            .run()
            .unwrap();
        let base_ranks: Vec<f64> = base.ranks().unwrap().to_vec();
        let base_sets = ordered(base.sets());
        for cfg in exec_configs() {
            let got = FdQuery::over(&db)
                .with_config(cfg)
                .approx(&a, 0.9)
                .ranked(FMax::new(&imp))
                .run()
                .unwrap();
            assert_eq!(&base_ranks, got.ranks().unwrap(), "{name} {cfg:?}");
            assert_eq!(base_sets, ordered(got.sets()), "{name} {cfg:?}");
            for threads in [2usize, 4] {
                let par = FdQuery::over(&db)
                    .with_config(cfg)
                    .approx(&a, 0.9)
                    .ranked(FMax::new(&imp))
                    .parallel(threads)
                    .run()
                    .unwrap();
                assert_eq!(
                    &base_ranks,
                    par.ranks().unwrap(),
                    "{name} {cfg:?} threads={threads}"
                );
                assert_eq!(
                    base_sets,
                    ordered(par.sets()),
                    "{name} {cfg:?} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn nondefault_init_errors_in_single_seed_and_parallel_modes() {
    let db = tourist_database();
    let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
    let a = AMin::new(
        full_disjunction::core::ExactSim,
        ProbScores::uniform(&db, 1.0),
    );
    for init in [InitStrategy::ReuseResults, InitStrategy::TrimExtend] {
        // Sequential batch honors the strategy.
        assert!(FdQuery::over(&db).init(init).run().is_ok());
        // Everything else reports a typed error instead of silently
        // ignoring the setting — from .run() and .stream() alike.
        let ranked_err = FdQuery::over(&db)
            .init(init)
            .ranked(FMax::new(&imp))
            .run()
            .unwrap_err();
        assert_eq!(
            ranked_err,
            FdError::Incompatible {
                left: ".init(ReuseResults/TrimExtend)",
                right: ".ranked"
            }
        );
        assert!(FdQuery::over(&db)
            .init(init)
            .ranked(FMax::new(&imp))
            .stream()
            .is_err());
        assert_eq!(
            FdQuery::over(&db)
                .init(init)
                .approx(&a, 0.9)
                .run()
                .unwrap_err(),
            FdError::Incompatible {
                left: ".init(ReuseResults/TrimExtend)",
                right: ".approx"
            }
        );
        assert_eq!(
            FdQuery::over(&db).init(init).parallel(2).run().unwrap_err(),
            FdError::Incompatible {
                left: ".init(ReuseResults/TrimExtend)",
                right: ".parallel"
            }
        );
    }
}

#[test]
fn streaming_agrees_with_materialized_for_every_config() {
    let db = tourist_database();
    let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
    for cfg in batch_configs() {
        let ran = FdQuery::over(&db)
            .with_config(cfg)
            .run()
            .unwrap()
            .into_sets();
        let streamed: Vec<TupleSet> = FdQuery::over(&db)
            .with_config(cfg)
            .stream()
            .unwrap()
            .map(|r| r.expect("streams do not fail"))
            .collect();
        assert_eq!(ran, streamed, "batch {cfg:?}");
    }
    for cfg in exec_configs() {
        for threads in [None, Some(2)] {
            let build = || {
                let mut q = FdQuery::over(&db)
                    .with_config(cfg)
                    .ranked(FMax::new(&imp))
                    .top_k(3);
                if let Some(t) = threads {
                    q = q.parallel(t);
                }
                q
            };
            let ran = build().run().unwrap().into_sets();
            let streamed: Vec<TupleSet> = build()
                .stream()
                .unwrap()
                .map(|r| r.expect("streams do not fail"))
                .collect();
            assert_eq!(ran, streamed, "ranked {cfg:?} threads={threads:?}");
        }
    }
}

#[test]
fn block_based_ranked_and_approx_runs_actually_page() {
    let db = tourist_database();
    let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
    let mut s = FdQuery::over(&db)
        .page_size(2)
        .ranked(FMax::new(&imp))
        .stream()
        .unwrap();
    while s.next().is_some() {}
    assert!(s.pages_read() > 0, "ranked candidate scans must page");

    let a = AMin::new(
        full_disjunction::core::ExactSim,
        ProbScores::uniform(&db, 1.0),
    );
    let mut s = FdQuery::over(&db)
        .page_size(2)
        .approx(&a, 0.9)
        .stream()
        .unwrap();
    while s.next().is_some() {}
    assert!(s.pages_read() > 0, "approx candidate scans must page");

    // Parallel plans aggregate pages across workers.
    let mut s = FdQuery::over(&db)
        .page_size(2)
        .ranked(FMax::new(&imp))
        .parallel(3)
        .stream()
        .unwrap();
    while s.next().is_some() {}
    assert!(s.pages_read() > 0, "parallel ranked workers must page");
}

#[test]
fn delta_maintenance_is_config_invariant() {
    for (name, mut db) in workloads() {
        let before = FdQuery::over(&db).run().unwrap().into_sets();
        let rel = RelId(0);
        let arity = db.relations()[0].schema().arity();
        let t = db
            .insert_tuple(
                rel,
                (0..arity).map(|i| Value::Int(900 + i as i64)).collect(),
            )
            .unwrap();
        let base = {
            let d = FdQuery::over(&db).delta_insert(t, &before).unwrap();
            canonical(d.added)
        };
        for cfg in batch_configs() {
            let d = FdQuery::over(&db)
                .with_config(cfg)
                .delta_insert(t, &before)
                .unwrap();
            assert_eq!(base, canonical(d.added), "{name} {cfg:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The merged parallel ranked stream is globally non-increasing in
    /// rank and equals the sequential plan on random workloads, thread
    /// counts and importance seeds.
    #[test]
    fn parallel_ranked_stream_is_globally_non_increasing(
        seed in 1u64..200,
        threads in 1usize..6,
        modulus in 1u64..9,
    ) {
        let db = chain(3, &DataSpec::new(6, 3).seed(seed));
        let imp = ImpScores::from_fn(&db, move |t| (t.0 as u64 % modulus) as f64);
        let mut stream = FdQuery::over(&db)
            .ranked(FMax::new(&imp))
            .parallel(threads)
            .stream()
            .unwrap();
        let mut merged: Vec<(TupleSet, f64)> = Vec::new();
        while let Some((set, rank)) = stream.next_ranked() {
            merged.push((set, rank.expect("ranked mode emits ranks")));
        }
        for w in merged.windows(2) {
            prop_assert!(w[0].1 >= w[1].1, "merged stream out of order");
            if w[0].1 == w[1].1 {
                prop_assert!(w[0].0 < w[1].0, "tie not canonically broken");
            }
        }
        let sequential = FdQuery::over(&db).ranked(FMax::new(&imp)).run().unwrap();
        let merged_sets: Vec<TupleSet> = merged.into_iter().map(|p| p.0).collect();
        prop_assert_eq!(sequential.into_sets(), merged_sets);
    }
}
