//! Cross-engine equivalence of the `FdQuery` builder: every public
//! enumeration mode must compute identical answers — as canonical sets,
//! and in identical rank order for the ranked modes — across every
//! `StoreEngine` × page size × `InitStrategy` combination, on the paper's
//! tourist example and the chain/star workloads. This is the acceptance
//! gate for "engine/page-size/init are honored uniformly".

use full_disjunction::core::{FdQuery, TupleSet};
use full_disjunction::prelude::*;
use full_disjunction::workloads::{chain, star, DataSpec};

fn workloads() -> Vec<(String, Database)> {
    vec![
        ("tourist".into(), tourist_database()),
        ("chain".into(), chain(3, &DataSpec::new(8, 4).seed(41))),
        ("star".into(), star(4, &DataSpec::new(6, 4).seed(42))),
    ]
}

fn configs() -> Vec<FdConfig> {
    let mut out = Vec::new();
    for engine in [StoreEngine::Scan, StoreEngine::Indexed] {
        for page_size in [None, Some(1), Some(7), Some(256)] {
            for init in [
                InitStrategy::Singletons,
                InitStrategy::ReuseResults,
                InitStrategy::TrimExtend,
            ] {
                out.push(FdConfig {
                    engine,
                    page_size,
                    init,
                });
            }
        }
    }
    out
}

fn canonical(sets: Vec<TupleSet>) -> Vec<Vec<TupleId>> {
    let mut out: Vec<Vec<TupleId>> = sets.into_iter().map(|s| s.tuples().to_vec()).collect();
    out.sort();
    out
}

#[test]
fn batch_mode_is_config_invariant() {
    for (name, db) in workloads() {
        let base = canonical(FdQuery::over(&db).run().unwrap().into_sets());
        assert!(!base.is_empty(), "{name}");
        for cfg in configs() {
            let got = canonical(
                FdQuery::over(&db)
                    .with_config(cfg)
                    .run()
                    .unwrap()
                    .into_sets(),
            );
            assert_eq!(base, got, "{name} {cfg:?}");
        }
    }
}

#[test]
fn parallel_mode_is_config_invariant() {
    for (name, db) in workloads() {
        let base = canonical(FdQuery::over(&db).run().unwrap().into_sets());
        for cfg in configs() {
            for threads in [1usize, 3, 8] {
                let got = canonical(
                    FdQuery::over(&db)
                        .with_config(cfg)
                        .parallel(threads)
                        .run()
                        .unwrap()
                        .into_sets(),
                );
                assert_eq!(base, got, "{name} {cfg:?} threads={threads}");
            }
        }
    }
}

#[test]
fn ranked_mode_is_config_invariant_in_rank_order() {
    for (name, db) in workloads() {
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 7) as f64);
        let base = FdQuery::over(&db).ranked(FMax::new(&imp)).run().unwrap();
        let base_ranks: Vec<f64> = base.ranks().unwrap().to_vec();
        let base_sets = canonical(base.into_sets());
        // Emission must be non-increasing in rank.
        for w in base_ranks.windows(2) {
            assert!(w[0] >= w[1], "{name}: rank order violated");
        }
        for cfg in configs() {
            let got = FdQuery::over(&db)
                .with_config(cfg)
                .ranked(FMax::new(&imp))
                .run()
                .unwrap();
            // Identical rank sequence (ties may permute between engines,
            // so sets are compared canonically).
            assert_eq!(&base_ranks, got.ranks().unwrap(), "{name} {cfg:?}");
            assert_eq!(base_sets, canonical(got.into_sets()), "{name} {cfg:?}");
        }
    }
}

#[test]
fn ranked_top_k_and_threshold_are_config_invariant() {
    for (name, db) in workloads() {
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 7) as f64);
        let all = FdQuery::over(&db).ranked(FMax::new(&imp)).run().unwrap();
        let k = (all.len() / 2).max(1);
        let tau = all.ranks().unwrap()[all.len() / 2];
        let base_topk: Vec<f64> = all.ranks().unwrap()[..k].to_vec();
        let base_thresh: Vec<f64> = all
            .ranks()
            .unwrap()
            .iter()
            .copied()
            .filter(|&r| r >= tau)
            .collect();
        for cfg in configs() {
            let topk = FdQuery::over(&db)
                .with_config(cfg)
                .ranked(FMax::new(&imp))
                .top_k(k)
                .run()
                .unwrap();
            assert_eq!(base_topk, topk.ranks().unwrap(), "{name} {cfg:?} top-k");

            let thresh = FdQuery::over(&db)
                .with_config(cfg)
                .ranked(FMax::new(&imp))
                .threshold(tau)
                .run()
                .unwrap();
            assert_eq!(
                base_thresh,
                thresh.ranks().unwrap(),
                "{name} {cfg:?} threshold"
            );
        }
    }
}

#[test]
fn approx_mode_is_config_invariant() {
    for (name, db) in workloads() {
        let a = AMin::new(
            full_disjunction::core::ExactSim,
            ProbScores::uniform(&db, 1.0),
        );
        let base = canonical(
            FdQuery::over(&db)
                .approx(&a, 0.9)
                .run()
                .unwrap()
                .into_sets(),
        );
        for cfg in configs() {
            let got = canonical(
                FdQuery::over(&db)
                    .with_config(cfg)
                    .approx(&a, 0.9)
                    .run()
                    .unwrap()
                    .into_sets(),
            );
            assert_eq!(base, got, "{name} {cfg:?}");
        }
    }
}

#[test]
fn ranked_approx_mode_is_config_invariant_in_rank_order() {
    for (name, db) in workloads() {
        let a = AMin::new(
            full_disjunction::core::ExactSim,
            ProbScores::uniform(&db, 1.0),
        );
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 5) as f64);
        let base = FdQuery::over(&db)
            .approx(&a, 0.9)
            .ranked(FMax::new(&imp))
            .run()
            .unwrap();
        let base_ranks: Vec<f64> = base.ranks().unwrap().to_vec();
        let base_sets = canonical(base.into_sets());
        for cfg in configs() {
            let got = FdQuery::over(&db)
                .with_config(cfg)
                .approx(&a, 0.9)
                .ranked(FMax::new(&imp))
                .run()
                .unwrap();
            assert_eq!(&base_ranks, got.ranks().unwrap(), "{name} {cfg:?}");
            assert_eq!(base_sets, canonical(got.into_sets()), "{name} {cfg:?}");
        }
    }
}

#[test]
fn streaming_agrees_with_materialized_for_every_config() {
    let db = tourist_database();
    let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
    for cfg in configs() {
        let ran = FdQuery::over(&db)
            .with_config(cfg)
            .run()
            .unwrap()
            .into_sets();
        let streamed: Vec<TupleSet> = FdQuery::over(&db)
            .with_config(cfg)
            .stream()
            .unwrap()
            .map(|r| r.expect("streams do not fail"))
            .collect();
        assert_eq!(ran, streamed, "batch {cfg:?}");

        let ran = FdQuery::over(&db)
            .with_config(cfg)
            .ranked(FMax::new(&imp))
            .top_k(3)
            .run()
            .unwrap()
            .into_sets();
        let streamed: Vec<TupleSet> = FdQuery::over(&db)
            .with_config(cfg)
            .ranked(FMax::new(&imp))
            .top_k(3)
            .stream()
            .unwrap()
            .map(|r| r.expect("streams do not fail"))
            .collect();
        assert_eq!(ran, streamed, "ranked {cfg:?}");
    }
}

#[test]
fn block_based_ranked_and_approx_runs_actually_page() {
    let db = tourist_database();
    let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
    let mut s = FdQuery::over(&db)
        .page_size(2)
        .ranked(FMax::new(&imp))
        .stream()
        .unwrap();
    while s.next().is_some() {}
    assert!(s.pages_read() > 0, "ranked candidate scans must page");

    let a = AMin::new(
        full_disjunction::core::ExactSim,
        ProbScores::uniform(&db, 1.0),
    );
    let mut s = FdQuery::over(&db)
        .page_size(2)
        .approx(&a, 0.9)
        .stream()
        .unwrap();
    while s.next().is_some() {}
    assert!(s.pages_read() > 0, "approx candidate scans must page");
}

#[test]
fn delta_maintenance_is_config_invariant() {
    for (name, mut db) in workloads() {
        let before = FdQuery::over(&db).run().unwrap().into_sets();
        let rel = RelId(0);
        let arity = db.relations()[0].schema().arity();
        let t = db
            .insert_tuple(
                rel,
                (0..arity).map(|i| Value::Int(900 + i as i64)).collect(),
            )
            .unwrap();
        let base = {
            let d = FdQuery::over(&db).delta_insert(t, &before).unwrap();
            canonical(d.added)
        };
        for cfg in configs() {
            let d = FdQuery::over(&db)
                .with_config(cfg)
                .delta_insert(t, &before)
                .unwrap();
            assert_eq!(base, canonical(d.added), "{name} {cfg:?}");
        }
    }
}
