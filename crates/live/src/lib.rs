//! # fd-live
//!
//! Dynamic full disjunctions, rebuilt on [`fd_core::FdSession`] — the
//! transactional session that owns a mutable [`Database`] plus the
//! materialized result, applies mutations in batched commits with one
//! maintenance pass each, and pushes [`FdEvent`]s to subscribers.
//!
//! This crate keeps the pre-session surface alive as **thin deprecated
//! wrappers**: [`LiveFd`] (plain maintenance, one [`Delta`] per
//! `apply`) and [`LiveRankedFd`] (maintained top-k window) both
//! delegate every operation to an owned session. New code should build
//! an [`FdSession`] directly — `FdQuery::over(&db).session()?` — and
//! get batched commits, push subscribers and the unified
//! [`fd_core::FdError`] in one type; see the README's
//! `LiveFd`/`LiveRankedFd` → `FdSession` migration table.
//!
//! ## Invariant
//!
//! After any sequence of applies/commits, the materialized state equals
//! the full disjunction of the current database snapshot — checkable at
//! any time with [`LiveFd::verify_snapshot`] and enforced against the
//! brute-force oracle by the randomized churn suite in the workspace
//! root.
//!
//! ## Example
//!
//! ```
//! use fd_live::{FdEvent, LiveFd};
//! use fd_relational::{tourist_database, Delta, RelId};
//!
//! let mut live = LiveFd::new(tourist_database());
//! assert_eq!(live.len(), 6); // Table 2 of the paper
//!
//! // A new hotel in London joins c1 (Country) and s1 (City):
//! let events = live
//!     .apply(Delta::Insert {
//!         rel: RelId(1),
//!         values: vec!["Canada".into(), "London".into(), "Fairmont".into(), 5.into()],
//!     })
//!     .unwrap();
//! assert!(events.iter().any(|e| matches!(e, FdEvent::Added(_))));
//! assert!(live.verify_snapshot());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod ranked;

pub use ranked::LiveRankedFd;

pub use fd_core::session::{
    ChannelSink, Commit, DeltaBatch, EventSink, FdEvent, FdSession, TopKUpdate, VecSink,
};

use fd_core::{FdConfig, FdError, FdQuery, TupleSet};
use fd_relational::{ChangeLog, Database, Delta, RelId, TupleId, Value};

/// A materialized full disjunction maintained under singleton mutations
/// — a thin wrapper over a plain [`FdSession`], kept for source
/// compatibility.
///
/// **Deprecated in favor of [`FdSession`]**: the session adds batched
/// commits (one maintenance pass per batch), push subscribers, and the
/// grouped changelog; `LiveFd` forwards each `apply` as a batch of one.
/// Migration: `LiveFd::from_query(q)` → `q.session()?`,
/// `apply(delta)` → `session.apply(delta)?.events`.
#[derive(Debug)]
pub struct LiveFd {
    session: FdSession<'static>,
}

impl LiveFd {
    /// Materializes the full disjunction of `db` and starts maintaining
    /// it.
    pub fn new(db: Database) -> Self {
        Self::with_config(db, FdConfig::default())
    }

    /// Like [`new`](Self::new) with explicit engine/block configuration
    /// for the initial computation and every delta run.
    pub fn with_config(db: Database, cfg: FdConfig) -> Self {
        Self::with_config_parallel(db, cfg, None)
    }

    /// Like [`with_config`](Self::with_config), additionally computing
    /// the *initial* materialization with up to `threads` workers (the
    /// parallel batch plan). Delta runs stay sequential — each one is a
    /// single seeded `FDi` run, already proportional to the change.
    pub fn with_config_parallel(db: Database, cfg: FdConfig, threads: Option<usize>) -> Self {
        LiveFd {
            session: FdSession::with_config_parallel(db, cfg, threads),
        }
    }

    /// Builds the live engine from an [`FdQuery`]: the query's
    /// engine/page-size/init configuration drives the initial
    /// materialization and every subsequent delta run, and `.parallel(n)`
    /// parallelizes the initial materialization. The database is cloned
    /// out of the query (the live engine owns its snapshot).
    ///
    /// Ranked and approximate options are rejected with a typed
    /// [`FdError`] — live maintenance materializes the plain full
    /// disjunction ([`LiveRankedFd::from_query`] adds the ranked window).
    ///
    /// ```
    /// use fd_core::{FdQuery, StoreEngine};
    /// use fd_live::LiveFd;
    /// use fd_relational::tourist_database;
    ///
    /// let db = tourist_database();
    /// let live = LiveFd::from_query(FdQuery::over(&db).engine(StoreEngine::Scan).parallel(2))?;
    /// assert_eq!(live.len(), 6);
    /// # Ok::<(), fd_core::FdError>(())
    /// ```
    pub fn from_query(query: FdQuery<'_>) -> Result<Self, FdError> {
        query.validate()?;
        let parts = query.into_parts();
        if parts.ranking.is_some() {
            return Err(FdError::Incompatible {
                left: "live maintenance",
                right: ".ranked",
            });
        }
        if parts.approx.is_some() {
            return Err(FdError::Incompatible {
                left: "live maintenance",
                right: ".approx",
            });
        }
        Ok(Self::with_config_parallel(
            parts.db.clone(),
            parts.config,
            parts.threads,
        ))
    }

    /// The underlying transactional session.
    pub fn session(&self) -> &FdSession<'static> {
        &self.session
    }

    /// Mutable access to the underlying session (e.g. to
    /// [`subscribe`](FdSession::subscribe) a sink or commit a whole
    /// [`DeltaBatch`]).
    pub fn session_mut(&mut self) -> &mut FdSession<'static> {
        &mut self.session
    }

    /// Consumes the wrapper, returning the session.
    pub fn into_session(self) -> FdSession<'static> {
        self.session
    }

    /// The current database snapshot.
    pub fn db(&self) -> &Database {
        self.session.db()
    }

    /// Number of tuple sets currently in the full disjunction.
    pub fn len(&self) -> usize {
        self.session.len()
    }

    /// Is the full disjunction empty?
    pub fn is_empty(&self) -> bool {
        self.session.is_empty()
    }

    /// The current results in unspecified order; see
    /// [`canonical_results`](Self::canonical_results) for a deterministic
    /// view.
    pub fn results(&self) -> &[TupleSet] {
        self.session.results()
    }

    /// The current results in canonical (member-id) order.
    pub fn canonical_results(&self) -> Vec<TupleSet> {
        self.session.canonical_results()
    }

    /// Is this exact tuple set currently a result?
    pub fn contains(&self, tuples: &[TupleId]) -> bool {
        self.session.contains(tuples)
    }

    /// The realized mutation history, oldest first.
    pub fn changelog(&self) -> &ChangeLog {
        self.session.changelog()
    }

    /// Applies one mutation, returning the result-set changes it caused
    /// (retractions first, then additions).
    pub fn apply(&mut self, delta: Delta) -> Result<Vec<FdEvent>, FdError> {
        Ok(self.session.apply(delta)?.events)
    }

    /// Inserts a tuple and maintains the result set. Returns the new
    /// tuple's id along with the events.
    pub fn insert(
        &mut self,
        rel: RelId,
        values: Vec<Value>,
    ) -> Result<(TupleId, Vec<FdEvent>), FdError> {
        let commit = self.session.apply(Delta::Insert { rel, values })?;
        let tuple = commit.inserted()[0];
        Ok((tuple, commit.events))
    }

    /// Deletes a tuple and maintains the result set.
    pub fn delete(&mut self, tuple: TupleId) -> Result<Vec<FdEvent>, FdError> {
        Ok(self.session.apply(Delta::Delete { tuple })?.events)
    }

    /// The oracle-checkable invariant: does the materialized state equal
    /// the full disjunction of the current snapshot, recomputed from
    /// scratch?
    pub fn verify_snapshot(&self) -> bool {
        self.session.verify_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_relational::tourist_database;

    #[test]
    fn starts_from_the_batch_full_disjunction() {
        let live = LiveFd::new(tourist_database());
        assert_eq!(live.len(), 6);
        assert!(live.verify_snapshot());
        assert!(live.contains(&[TupleId(0), TupleId(3)])); // {c1, a1}
    }

    #[test]
    fn insert_emits_additions_and_keeps_the_invariant() {
        let mut live = LiveFd::new(tourist_database());
        let (t, events) = live
            .insert(RelId(0), vec!["Chile".into(), "arid".into()])
            .unwrap();
        // A fresh country matches nothing: exactly one new singleton set.
        assert_eq!(
            events,
            vec![FdEvent::Added(TupleSet::singleton(live.db(), t))]
        );
        assert_eq!(live.len(), 7);
        assert!(live.verify_snapshot());
    }

    #[test]
    fn insert_that_subsumes_retracts_first() {
        let mut b = fd_relational::DatabaseBuilder::new();
        b.relation("P", &["A"]).row([1]);
        b.relation("Q", &["A", "B"]);
        let mut live = LiveFd::new(b.build().unwrap());
        assert_eq!(live.len(), 1);
        let (_, events) = live.insert(RelId(1), vec![1.into(), 2.into()]).unwrap();
        assert!(matches!(events[0], FdEvent::Retracted(_)));
        assert!(matches!(events[1], FdEvent::Added(_)));
        assert_eq!(live.len(), 1);
        assert!(live.verify_snapshot());
    }

    #[test]
    fn delete_emits_retractions_and_restorations() {
        let mut live = LiveFd::new(tourist_database());
        // Deleting a2 kills {c1, a2, s1} and restores {c1, s1}.
        let events = live.delete(TupleId(4)).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, FdEvent::Retracted(s) if s.tuples() == [TupleId(0), TupleId(4), TupleId(6)])));
        assert!(events
            .iter()
            .any(|e| matches!(e, FdEvent::Added(s) if s.tuples() == [TupleId(0), TupleId(6)])));
        assert!(live.verify_snapshot());
    }

    #[test]
    fn deleting_unknown_tuples_fails_with_a_typed_fd_error() {
        let mut live = LiveFd::new(tourist_database());
        // RelationalError no longer leaks: the public error is FdError.
        assert!(matches!(
            live.delete(TupleId(99)),
            Err(FdError::Mutation { .. })
        ));
        live.delete(TupleId(0)).unwrap();
        assert!(live.delete(TupleId(0)).is_err());
        assert!(live.verify_snapshot());
    }

    #[test]
    fn changelog_records_realized_mutations() {
        let mut live = LiveFd::new(tourist_database());
        let (t, _) = live
            .insert(RelId(0), vec!["Chile".into(), "arid".into()])
            .unwrap();
        live.delete(t).unwrap();
        assert_eq!(live.changelog().len(), 2);
        assert_eq!(live.changelog().num_batches(), 2);
        assert_eq!(live.changelog().changes()[0].tuple(), t);
    }

    #[test]
    fn wrapped_session_supports_batches_and_subscribers() {
        let mut live = LiveFd::new(tourist_database());
        let sink = VecSink::new();
        live.session_mut().subscribe(sink.clone());
        let mut batch = live.session().begin();
        batch
            .insert(RelId(0), vec!["Chile".into(), "arid".into()])
            .delete(TupleId(3));
        live.session_mut().commit(batch).unwrap();
        assert_eq!(live.session().maintenance_passes(), 1);
        assert!(!sink.events().is_empty());
        assert!(live.verify_snapshot());
    }

    #[test]
    fn from_query_honors_config_and_rejects_nonbatch_options() {
        let db = tourist_database();
        let live = LiveFd::from_query(
            FdQuery::over(&db)
                .engine(fd_core::StoreEngine::Scan)
                .page_size(3),
        )
        .unwrap();
        assert_eq!(live.len(), 6);
        assert_eq!(live.session().config().engine, fd_core::StoreEngine::Scan);
        assert_eq!(live.session().config().page_size, Some(3));

        let imp = fd_core::ImpScores::uniform(&db, 1.0);
        let err =
            LiveFd::from_query(FdQuery::over(&db).ranked(fd_core::FMax::new(&imp))).unwrap_err();
        assert_eq!(
            err,
            FdError::Incompatible {
                left: "live maintenance",
                right: ".ranked"
            }
        );
        // `.parallel` is accepted: it parallelizes the initial
        // materialization (deltas stay sequential).
        let live = LiveFd::from_query(FdQuery::over(&db).parallel(2)).unwrap();
        assert_eq!(live.len(), 6);
        assert!(live.verify_snapshot());
    }

    #[test]
    fn parallel_materialization_tolerates_reuse_init() {
        // The direct constructor must not panic on reuse-init + threads:
        // the parallel materialization falls back to singleton init (the
        // computed set is identical), while the strategy still applies
        // to the sequential delta runs.
        let cfg = FdConfig {
            init: fd_core::InitStrategy::ReuseResults,
            ..FdConfig::default()
        };
        let mut live = LiveFd::with_config_parallel(tourist_database(), cfg, Some(2));
        assert_eq!(live.len(), 6);
        live.insert(RelId(0), vec!["Chile".into(), "arid".into()])
            .unwrap();
        assert!(live.verify_snapshot());

        // The validated builder path reports the combination instead.
        let db = tourist_database();
        let err = LiveFd::from_query(
            FdQuery::over(&db)
                .init(fd_core::InitStrategy::ReuseResults)
                .parallel(2),
        )
        .unwrap_err();
        assert_eq!(
            err,
            FdError::Incompatible {
                left: ".init(ReuseResults/TrimExtend)",
                right: ".parallel"
            }
        );
    }

    #[test]
    fn from_query_engine_stays_consistent_under_mutations() {
        let db = tourist_database();
        let mut live = LiveFd::from_query(FdQuery::over(&db).page_size(2)).unwrap();
        live.insert(RelId(0), vec!["Chile".into(), "arid".into()])
            .unwrap();
        assert!(live.verify_snapshot());
    }

    #[test]
    fn scripted_churn_matches_recomputation_for_both_engines() {
        for engine in [fd_core::StoreEngine::Scan, fd_core::StoreEngine::Indexed] {
            let cfg = FdConfig {
                engine,
                ..FdConfig::default()
            };
            let mut live = LiveFd::with_config(tourist_database(), cfg);
            let script: Vec<Delta> = vec![
                Delta::Insert {
                    rel: RelId(1),
                    values: vec!["UK".into(), "London".into(), "Savoy".into(), 5.into()],
                },
                Delta::Delete { tuple: TupleId(6) },
                Delta::Insert {
                    rel: RelId(2),
                    values: vec!["Canada".into(), "Toronto".into(), "CN Tower".into()],
                },
                Delta::Delete { tuple: TupleId(0) },
                Delta::Delete { tuple: TupleId(10) },
            ];
            for delta in script {
                live.apply(delta).unwrap();
                assert!(live.verify_snapshot(), "engine {engine:?}");
            }
        }
    }
}
