//! # fd-live
//!
//! **Re-export shim.** Dynamic full disjunctions live in
//! [`fd_core::session`]: the transactional [`FdSession`] owns a mutable
//! database plus the materialized result, applies mutations in batched
//! [`DeltaBatch`] commits with one maintenance pass each, and pushes
//! [`FdEvent`]s to subscribed [`EventSink`]s. The `fd serve` daemon
//! ([`fd_core::serve`]) exposes the same session over TCP.
//!
//! The deprecated `LiveFd`/`LiveRankedFd` wrappers this crate used to
//! define are **gone** (they were kept for exactly one release, per the
//! roadmap). Their replacement table, in short:
//!
//! | Removed | Session equivalent |
//! |---|---|
//! | `LiveFd::new(db)` | `FdSession::new(db)` (or `FdQuery::over(&db).session()?`) |
//! | `LiveRankedFd::new(db, f, k)` | `FdSession::ranked(db, f, k)` |
//! | `live.insert(rel, values)` | `session.apply(Delta::Insert { rel, values })?` |
//! | `live.delete(t)` | `session.apply(Delta::Delete { tuple: t })?` |
//! | `live.apply(delta)` | `session.apply(delta)?` (events in `commit.events`) |
//! | `live.results()` / `live.len()` | `session.results()` / `session.len()` |
//! | `live.ranking()` / `live.top()` | `session.ranking()` / `session.window()` |
//! | `live.changelog()` | `session.changelog()` (grouped by commit) |
//! | `live.verify_snapshot()` | `session.verify_snapshot()` |
//!
//! See the README's "watch"/"Serving over the network" sections for the
//! CLI and network front ends over the same API.
//!
//! ## Example
//!
//! ```
//! use fd_live::{FdEvent, FdSession};
//! use fd_relational::{tourist_database, Delta, RelId};
//!
//! let mut session = FdSession::new(tourist_database());
//! assert_eq!(session.len(), 6); // Table 2 of the paper
//!
//! // A new hotel in London joins c1 (Country) and s1 (City):
//! let commit = session
//!     .apply(Delta::Insert {
//!         rel: RelId(1),
//!         values: vec!["Canada".into(), "London".into(), "Fairmont".into(), 5.into()],
//!     })
//!     .unwrap();
//! assert!(commit.events.iter().any(|e| matches!(e, FdEvent::Added(_))));
//! assert!(session.verify_snapshot());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use fd_core::session::{
    ChannelSink, Commit, DeltaBatch, EventSink, FdEvent, FdSession, SinkId, TopKUpdate, VecSink,
};

#[cfg(test)]
mod tests {
    use super::*;
    use fd_relational::{tourist_database, Delta, TupleId};

    /// The shim's exports are the session API, verbatim: a session built
    /// through this crate behaves identically to one from fd-core.
    #[test]
    fn shim_reexports_the_session_api() {
        let mut session = FdSession::new(tourist_database());
        let sink = VecSink::new();
        let id = session.subscribe(sink.clone());
        let commit = session.apply(Delta::Delete { tuple: TupleId(3) }).unwrap();
        assert!(!commit.events.is_empty());
        assert_eq!(sink.events(), commit.events);
        assert!(session.unsubscribe(id));
        assert!(session.verify_snapshot());
    }
}
