//! # fd-live
//!
//! A live full disjunction: [`LiveFd`] owns a mutable [`Database`] and a
//! materialized result set, keeps the two consistent under tuple inserts
//! and deletes via the delta engine of `fd-core` ([`fd_core::delta`]),
//! and reports every change to the result set as a stream of
//! [`FdEvent`]s — the subscription view of the ROADMAP's live-serving
//! goal, and the dynamic counterpart of the paper's incremental
//! *delivery* (`INCREMENTALFD` froze the database before the first
//! `GETNEXTRESULT`; `LiveFd` lets it keep changing).
//!
//! [`LiveRankedFd`] layers a ranking function on top and keeps a top-k
//! window current, in the spirit of any-k ranked enumeration over a
//! long-lived answer stream.
//!
//! ## Invariant
//!
//! After any sequence of [`LiveFd::apply`] calls, the materialized state
//! equals the full disjunction of the current database snapshot —
//! checkable at any time with [`LiveFd::verify_snapshot`] and enforced
//! against the brute-force oracle by the randomized churn suite in the
//! workspace root.
//!
//! ## Example
//!
//! ```
//! use fd_live::{FdEvent, LiveFd};
//! use fd_relational::{tourist_database, Delta, RelId};
//!
//! let mut live = LiveFd::new(tourist_database());
//! assert_eq!(live.len(), 6); // Table 2 of the paper
//!
//! // A new hotel in London joins c1 (Country) and s1 (City):
//! let events = live
//!     .apply(Delta::Insert {
//!         rel: RelId(1),
//!         values: vec!["Canada".into(), "London".into(), "Fairmont".into(), 5.into()],
//!     })
//!     .unwrap();
//! assert!(events.iter().any(|e| matches!(e, FdEvent::Added(_))));
//! assert!(live.verify_snapshot());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod ranked;

pub use ranked::{LiveRankedFd, TopKUpdate};

use fd_core::{canonicalize, FdConfig, FdError, FdQuery, TupleSet};
use fd_relational::fxhash::FxHashMap;
use fd_relational::{Change, ChangeLog, Database, Delta, RelId, RelationalError, TupleId, Value};

/// One change to the materialized full disjunction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdEvent {
    /// A tuple set entered the full disjunction.
    Added(TupleSet),
    /// A tuple set left the full disjunction (it was subsumed by a new
    /// result, or a member tuple was deleted).
    Retracted(TupleSet),
}

impl FdEvent {
    /// The tuple set the event concerns.
    pub fn set(&self) -> &TupleSet {
        match self {
            FdEvent::Added(s) | FdEvent::Retracted(s) => s,
        }
    }

    /// Renders the event the way `fd watch` prints it: `+ {c1, a1}` /
    /// `- {c1, a1}`.
    pub fn label(&self, db: &Database) -> String {
        match self {
            FdEvent::Added(s) => format!("+ {}", s.label(db)),
            FdEvent::Retracted(s) => format!("- {}", s.label(db)),
        }
    }
}

/// A materialized full disjunction maintained under mutations.
///
/// The result store reuses the workspace's [`StoreEngine`] choice through
/// [`FdConfig`]: the engine configures the `Incomplete`/`Complete`
/// structures of every internal delta run (scan vs. hash-indexed), the
/// same ablation axis the batch algorithms expose.
///
/// [`StoreEngine`]: fd_core::StoreEngine
#[derive(Debug)]
pub struct LiveFd {
    db: Database,
    cfg: FdConfig,
    /// Current results, in no particular order.
    results: Vec<TupleSet>,
    /// Canonical member list → position in `results`.
    index: FxHashMap<Box<[TupleId]>, usize>,
    log: ChangeLog,
}

impl LiveFd {
    /// Materializes the full disjunction of `db` and starts maintaining
    /// it.
    pub fn new(db: Database) -> Self {
        Self::with_config(db, FdConfig::default())
    }

    /// Like [`new`](Self::new) with explicit engine/block configuration
    /// for the initial computation and every delta run.
    pub fn with_config(db: Database, cfg: FdConfig) -> Self {
        Self::with_config_parallel(db, cfg, None)
    }

    /// Like [`with_config`](Self::with_config), additionally computing
    /// the *initial* materialization with up to `threads` workers (the
    /// parallel batch plan). Delta runs stay sequential — each one is a
    /// single seeded `FDi` run, already proportional to the change.
    ///
    /// The parallel materialization always runs with
    /// [`fd_core::InitStrategy::Singletons`] (the reuse strategies
    /// describe a sequence of prior runs the independent workers do not
    /// have; the computed set is identical either way); a non-default
    /// `cfg.init` still applies to the sequential delta runs. Build
    /// through [`from_query`](Self::from_query) to get the combination
    /// reported as a typed error instead.
    pub fn with_config_parallel(db: Database, cfg: FdConfig, threads: Option<usize>) -> Self {
        let results = {
            let mut query = FdQuery::over(&db).with_config(cfg);
            if let Some(t) = threads {
                query = query.init(fd_core::InitStrategy::Singletons).parallel(t);
            }
            query
                .run()
                .expect("a bare configuration is always a valid batch query")
                .into_sets()
        };
        let index = results
            .iter()
            .enumerate()
            .map(|(i, s)| (Box::<[TupleId]>::from(s.tuples()), i))
            .collect();
        LiveFd {
            db,
            cfg,
            results,
            index,
            log: ChangeLog::new(),
        }
    }

    /// Builds the live engine from an [`FdQuery`]: the query's
    /// engine/page-size/init configuration drives the initial
    /// materialization and every subsequent delta run, and `.parallel(n)`
    /// parallelizes the initial materialization. The database is cloned
    /// out of the query (the live engine owns its snapshot).
    ///
    /// Ranked and approximate options are rejected with a typed
    /// [`FdError`] — live maintenance materializes the plain full
    /// disjunction ([`LiveRankedFd::from_query`] adds the ranked window).
    ///
    /// ```
    /// use fd_core::{FdQuery, StoreEngine};
    /// use fd_live::LiveFd;
    /// use fd_relational::tourist_database;
    ///
    /// let db = tourist_database();
    /// let live = LiveFd::from_query(FdQuery::over(&db).engine(StoreEngine::Scan).parallel(2))?;
    /// assert_eq!(live.len(), 6);
    /// # Ok::<(), fd_core::FdError>(())
    /// ```
    pub fn from_query(query: FdQuery<'_>) -> Result<Self, FdError> {
        query.validate()?;
        let parts = query.into_parts();
        if parts.ranking.is_some() {
            return Err(FdError::Incompatible {
                left: "live maintenance",
                right: ".ranked",
            });
        }
        if parts.approx.is_some() {
            return Err(FdError::Incompatible {
                left: "live maintenance",
                right: ".approx",
            });
        }
        Ok(Self::with_config_parallel(
            parts.db.clone(),
            parts.config,
            parts.threads,
        ))
    }

    /// The query this engine re-derives for every delta run: same
    /// database snapshot, same execution configuration.
    fn query(&self) -> FdQuery<'_> {
        FdQuery::over(&self.db).with_config(self.cfg)
    }

    /// The current database snapshot.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Number of tuple sets currently in the full disjunction.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Is the full disjunction empty?
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The current results in unspecified order; see
    /// [`canonical_results`](Self::canonical_results) for a deterministic
    /// view.
    pub fn results(&self) -> &[TupleSet] {
        &self.results
    }

    /// The current results in canonical (member-id) order.
    pub fn canonical_results(&self) -> Vec<TupleSet> {
        canonicalize(self.results.clone())
    }

    /// Is this exact tuple set currently a result?
    pub fn contains(&self, tuples: &[TupleId]) -> bool {
        self.index.contains_key(tuples)
    }

    /// The realized mutation history, oldest first.
    pub fn changelog(&self) -> &ChangeLog {
        &self.log
    }

    /// Applies one mutation, returning the result-set changes it caused
    /// (retractions first, then additions).
    pub fn apply(&mut self, delta: Delta) -> Result<Vec<FdEvent>, RelationalError> {
        match delta {
            Delta::Insert { rel, values } => self.insert(rel, values).map(|(_, ev)| ev),
            Delta::Delete { tuple } => self.delete(tuple),
        }
    }

    /// Inserts a tuple and maintains the result set. Returns the new
    /// tuple's id along with the events.
    pub fn insert(
        &mut self,
        rel: RelId,
        values: Vec<Value>,
    ) -> Result<(TupleId, Vec<FdEvent>), RelationalError> {
        let tuple = self.db.insert_tuple(rel, values)?;
        self.log.record(Change::Inserted { rel, tuple });
        let d = self
            .query()
            .delta_insert(tuple, &self.results)
            .expect("the live engine only builds batch queries");
        let mut events = Vec::with_capacity(d.subsumed.len() + d.added.len());
        for set in d.subsumed {
            self.remove_set(&set);
            events.push(FdEvent::Retracted(set));
        }
        for set in d.added {
            self.add_set(set.clone());
            events.push(FdEvent::Added(set));
        }
        Ok((tuple, events))
    }

    /// Deletes a tuple and maintains the result set.
    pub fn delete(&mut self, tuple: TupleId) -> Result<Vec<FdEvent>, RelationalError> {
        if !self.db.is_live(tuple) {
            return Err(RelationalError::NoSuchTuple { id: tuple.0 });
        }
        let rel = self.db.rel_of(tuple);
        self.db.remove_tuple(tuple)?;
        self.log.record(Change::Removed { rel, tuple });
        let d = self
            .query()
            .delta_delete(tuple, &self.results)
            .expect("the live engine only builds batch queries");
        let mut events = Vec::with_capacity(d.dropped.len() + d.restored.len());
        for set in d.dropped {
            self.remove_set(&set);
            events.push(FdEvent::Retracted(set));
        }
        for set in d.restored {
            self.add_set(set.clone());
            events.push(FdEvent::Added(set));
        }
        Ok(events)
    }

    /// The oracle-checkable invariant: does the materialized state equal
    /// the full disjunction of the current snapshot, recomputed from
    /// scratch?
    pub fn verify_snapshot(&self) -> bool {
        let fresh = self
            .query()
            .run()
            .expect("the live engine only builds batch queries")
            .into_sets();
        self.canonical_results() == canonicalize(fresh)
    }

    fn add_set(&mut self, set: TupleSet) {
        let key: Box<[TupleId]> = set.tuples().into();
        debug_assert!(!self.index.contains_key(&key), "duplicate result {set}");
        self.index.insert(key, self.results.len());
        self.results.push(set);
    }

    fn remove_set(&mut self, set: &TupleSet) {
        let Some(pos) = self.index.remove(set.tuples()) else {
            debug_assert!(false, "retracting unknown result {set}");
            return;
        };
        self.results.swap_remove(pos);
        if pos < self.results.len() {
            let moved_key: Box<[TupleId]> = self.results[pos].tuples().into();
            self.index.insert(moved_key, pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_relational::tourist_database;

    #[test]
    fn starts_from_the_batch_full_disjunction() {
        let live = LiveFd::new(tourist_database());
        assert_eq!(live.len(), 6);
        assert!(live.verify_snapshot());
        assert!(live.contains(&[TupleId(0), TupleId(3)])); // {c1, a1}
    }

    #[test]
    fn insert_emits_additions_and_keeps_the_invariant() {
        let mut live = LiveFd::new(tourist_database());
        let (t, events) = live
            .insert(RelId(0), vec!["Chile".into(), "arid".into()])
            .unwrap();
        // A fresh country matches nothing: exactly one new singleton set.
        assert_eq!(
            events,
            vec![FdEvent::Added(TupleSet::singleton(live.db(), t))]
        );
        assert_eq!(live.len(), 7);
        assert!(live.verify_snapshot());
    }

    #[test]
    fn insert_that_subsumes_retracts_first() {
        let mut b = fd_relational::DatabaseBuilder::new();
        b.relation("P", &["A"]).row([1]);
        b.relation("Q", &["A", "B"]);
        let mut live = LiveFd::new(b.build().unwrap());
        assert_eq!(live.len(), 1);
        let (_, events) = live.insert(RelId(1), vec![1.into(), 2.into()]).unwrap();
        assert!(matches!(events[0], FdEvent::Retracted(_)));
        assert!(matches!(events[1], FdEvent::Added(_)));
        assert_eq!(live.len(), 1);
        assert!(live.verify_snapshot());
    }

    #[test]
    fn delete_emits_retractions_and_restorations() {
        let mut live = LiveFd::new(tourist_database());
        // Deleting a2 kills {c1, a2, s1} and restores {c1, s1}.
        let events = live.delete(TupleId(4)).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, FdEvent::Retracted(s) if s.tuples() == [TupleId(0), TupleId(4), TupleId(6)])));
        assert!(events
            .iter()
            .any(|e| matches!(e, FdEvent::Added(s) if s.tuples() == [TupleId(0), TupleId(6)])));
        assert!(live.verify_snapshot());
    }

    #[test]
    fn deleting_unknown_tuples_fails_cleanly() {
        let mut live = LiveFd::new(tourist_database());
        assert!(live.delete(TupleId(99)).is_err());
        live.delete(TupleId(0)).unwrap();
        assert!(live.delete(TupleId(0)).is_err());
        assert!(live.verify_snapshot());
    }

    #[test]
    fn changelog_records_realized_mutations() {
        let mut live = LiveFd::new(tourist_database());
        let (t, _) = live
            .insert(RelId(0), vec!["Chile".into(), "arid".into()])
            .unwrap();
        live.delete(t).unwrap();
        assert_eq!(live.changelog().len(), 2);
        assert_eq!(live.changelog().changes()[0].tuple(), t);
    }

    #[test]
    fn from_query_honors_config_and_rejects_nonbatch_options() {
        let db = tourist_database();
        let live = LiveFd::from_query(
            FdQuery::over(&db)
                .engine(fd_core::StoreEngine::Scan)
                .page_size(3),
        )
        .unwrap();
        assert_eq!(live.len(), 6);
        assert_eq!(live.cfg.engine, fd_core::StoreEngine::Scan);
        assert_eq!(live.cfg.page_size, Some(3));

        let imp = fd_core::ImpScores::uniform(&db, 1.0);
        let err =
            LiveFd::from_query(FdQuery::over(&db).ranked(fd_core::FMax::new(&imp))).unwrap_err();
        assert_eq!(
            err,
            FdError::Incompatible {
                left: "live maintenance",
                right: ".ranked"
            }
        );
        // `.parallel` is accepted: it parallelizes the initial
        // materialization (deltas stay sequential).
        let live = LiveFd::from_query(FdQuery::over(&db).parallel(2)).unwrap();
        assert_eq!(live.len(), 6);
        assert!(live.verify_snapshot());
    }

    #[test]
    fn parallel_materialization_tolerates_reuse_init() {
        // The direct constructor must not panic on reuse-init + threads:
        // the parallel materialization falls back to singleton init (the
        // computed set is identical), while the strategy still applies
        // to the sequential delta runs.
        let cfg = FdConfig {
            init: fd_core::InitStrategy::ReuseResults,
            ..FdConfig::default()
        };
        let mut live = LiveFd::with_config_parallel(tourist_database(), cfg, Some(2));
        assert_eq!(live.len(), 6);
        live.insert(RelId(0), vec!["Chile".into(), "arid".into()])
            .unwrap();
        assert!(live.verify_snapshot());

        // The validated builder path reports the combination instead.
        let db = tourist_database();
        let err = LiveFd::from_query(
            FdQuery::over(&db)
                .init(fd_core::InitStrategy::ReuseResults)
                .parallel(2),
        )
        .unwrap_err();
        assert_eq!(
            err,
            FdError::Incompatible {
                left: ".init(ReuseResults/TrimExtend)",
                right: ".parallel"
            }
        );
    }

    #[test]
    fn from_query_engine_stays_consistent_under_mutations() {
        let db = tourist_database();
        let mut live = LiveFd::from_query(FdQuery::over(&db).page_size(2)).unwrap();
        live.insert(RelId(0), vec!["Chile".into(), "arid".into()])
            .unwrap();
        assert!(live.verify_snapshot());
    }

    #[test]
    fn scripted_churn_matches_recomputation_for_both_engines() {
        for engine in [fd_core::StoreEngine::Scan, fd_core::StoreEngine::Indexed] {
            let cfg = FdConfig {
                engine,
                ..FdConfig::default()
            };
            let mut live = LiveFd::with_config(tourist_database(), cfg);
            let script: Vec<Delta> = vec![
                Delta::Insert {
                    rel: RelId(1),
                    values: vec!["UK".into(), "London".into(), "Savoy".into(), 5.into()],
                },
                Delta::Delete { tuple: TupleId(6) },
                Delta::Insert {
                    rel: RelId(2),
                    values: vec!["Canada".into(), "Toronto".into(), "CN Tower".into()],
                },
                Delta::Delete { tuple: TupleId(0) },
                Delta::Delete { tuple: TupleId(10) },
            ];
            for delta in script {
                live.apply(delta).unwrap();
                assert!(live.verify_snapshot(), "engine {engine:?}");
            }
        }
    }
}
