//! A live top-k window over the maintained full disjunction.
//!
//! Ranked enumeration (the paper's `PRIORITYINCREMENTALFD`, and the
//! any-k literature's view of it) treats the answer stream as long-lived;
//! [`LiveRankedFd`] extends that to a *changing* database: it maintains
//! the full result set through [`LiveFd`] and keeps the k highest-ranked
//! answers current, reporting window entries and exits per mutation.

use crate::{FdEvent, LiveFd};
use fd_core::{
    canonical_rank_order, BoxedRanking, FdConfig, FdError, FdQuery, RankingFunction, TupleSet,
};
use fd_relational::fxhash::FxHashMap;
use fd_relational::{Database, Delta, RelationalError, TupleId};

/// What one mutation did to the ranked view.
#[derive(Debug, Clone)]
pub struct TopKUpdate {
    /// The underlying result-set changes (retractions first).
    pub events: Vec<FdEvent>,
    /// Sets that entered the top-k window, with their ranks.
    pub entered: Vec<(TupleSet, f64)>,
    /// Sets that left the top-k window (retracted or outranked).
    pub left: Vec<TupleSet>,
}

/// A maintained top-k window over a [`LiveFd`].
///
/// The ranking function is evaluated once per result-set change, and the
/// ranked vector is maintained *incrementally*: one binary-search insert
/// per entered set, one binary-search (positional) removal per retracted
/// set — `O(log m + m)` vector work per change, no re-sort, no re-ranking
/// of unaffected results. The only full sort happens at construction.
/// Tuples inserted after an importance assignment was built rank through
/// its documented default (see [`fd_core::ImpScores::imp`]).
#[derive(Debug)]
pub struct LiveRankedFd<F> {
    inner: LiveFd,
    f: F,
    k: usize,
    /// Current results with ranks, sorted by descending rank (ties in
    /// canonical member order); the window is the first `k` entries.
    ranked: Vec<(TupleSet, f64)>,
    /// Member list → the rank stored in `ranked`, so a retraction can
    /// binary-search by its recorded rank without re-evaluating the
    /// ranking function against the already-mutated database.
    rank_of: FxHashMap<Box<[TupleId]>, f64>,
}

/// The maintained order — [`fd_core::canonical_rank_order`], the same
/// canonical emission order the ranked `FdQuery` plans produce.
fn rank_order(a: &(TupleSet, f64), b: &(TupleSet, f64)) -> std::cmp::Ordering {
    canonical_rank_order(a.1, &a.0, b.1, &b.0)
}

impl<F: RankingFunction> LiveRankedFd<F> {
    /// Materializes the full disjunction of `db` and the initial top-k
    /// window under `f`.
    pub fn new(db: Database, f: F, k: usize) -> Self {
        Self::with_config(db, f, k, FdConfig::default())
    }

    /// Like [`new`](Self::new) with explicit engine/block configuration.
    pub fn with_config(db: Database, f: F, k: usize, cfg: FdConfig) -> Self {
        Self::with_config_parallel(db, f, k, cfg, None)
    }

    /// Like [`with_config`](Self::with_config), additionally computing
    /// the initial materialization with up to `threads` workers.
    pub fn with_config_parallel(
        db: Database,
        f: F,
        k: usize,
        cfg: FdConfig,
        threads: Option<usize>,
    ) -> Self {
        let inner = LiveFd::with_config_parallel(db, cfg, threads);
        let mut ranked: Vec<(TupleSet, f64)> = inner
            .results()
            .iter()
            .map(|s| (s.clone(), f.rank(inner.db(), s)))
            .collect();
        ranked.sort_by(rank_order);
        let rank_of = ranked
            .iter()
            .map(|(s, r)| (Box::<[TupleId]>::from(s.tuples()), *r))
            .collect();
        LiveRankedFd {
            inner,
            f,
            k,
            ranked,
            rank_of,
        }
    }

    /// The maintained full disjunction underneath.
    pub fn inner(&self) -> &LiveFd {
        &self.inner
    }

    /// The current database snapshot.
    pub fn db(&self) -> &Database {
        self.inner.db()
    }

    /// The window size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The current top-k window: up to `k` `(set, rank)` pairs in
    /// non-increasing rank order.
    pub fn top(&self) -> &[(TupleSet, f64)] {
        &self.ranked[..self.k.min(self.ranked.len())]
    }

    /// The full maintained ranking (the window is its first `k` entries):
    /// every current result with its rank, in non-increasing rank order
    /// with ties in canonical member order.
    pub fn ranking(&self) -> &[(TupleSet, f64)] {
        &self.ranked
    }

    /// Removes a retracted set from the ranked vector by binary search
    /// on its *recorded* rank — the ranking function is never re-invoked
    /// on a retracted set (its member tuples may already be gone from
    /// the mutated database).
    fn remove_ranked(&mut self, set: &TupleSet) {
        let Some(rank) = self.rank_of.remove(set.tuples()) else {
            debug_assert!(false, "retracting unknown ranked result {set}");
            return;
        };
        let found = self
            .ranked
            .binary_search_by(|e| canonical_rank_order(e.1, &e.0, rank, set));
        match found {
            Ok(pos) => {
                self.ranked.remove(pos);
            }
            Err(_) => {
                // Unreachable with a consistent map, but stay lossless.
                debug_assert!(false, "recorded rank not found for {set}");
                if let Some(pos) = self
                    .ranked
                    .iter()
                    .position(|(s, _)| s.tuples() == set.tuples())
                {
                    self.ranked.remove(pos);
                }
            }
        }
    }

    /// Applies one mutation, maintaining both the result set and the
    /// window, and reports what changed. The ranked vector is maintained
    /// in place — binary-search insert for entered sets, positional
    /// removal for retracted ones — never re-sorted or re-ranked.
    pub fn apply(&mut self, delta: Delta) -> Result<TopKUpdate, RelationalError> {
        let before: Vec<TupleSet> = self.top().iter().map(|(s, _)| s.clone()).collect();
        let events = self.inner.apply(delta)?;
        for event in &events {
            match event {
                FdEvent::Retracted(set) => self.remove_ranked(set),
                FdEvent::Added(set) => {
                    let rank = self.f.rank(self.inner.db(), set);
                    self.rank_of.insert(set.tuples().into(), rank);
                    let probe = (set.clone(), rank);
                    let pos = self
                        .ranked
                        .binary_search_by(|e| rank_order(e, &probe))
                        .unwrap_or_else(|p| p);
                    self.ranked.insert(pos, probe);
                }
            }
        }

        let after = self.top();
        let entered = after
            .iter()
            .filter(|(s, _)| !before.iter().any(|b| b.tuples() == s.tuples()))
            .cloned()
            .collect();
        let left = before
            .into_iter()
            .filter(|b| !after.iter().any(|(s, _)| s.tuples() == b.tuples()))
            .collect();
        Ok(TopKUpdate {
            events,
            entered,
            left,
        })
    }
}

impl<'q> LiveRankedFd<BoxedRanking<'q>> {
    /// Builds the live top-k engine from an [`FdQuery`]: requires
    /// `.ranked(f)` and `.top_k(k)`; honors the query's
    /// engine/page-size/init configuration for the materialization and
    /// every delta run, and `.parallel(n)` for the initial
    /// materialization; rejects `.approx` and `.threshold` with a typed
    /// [`FdError`]. The database is cloned out of the query (the live
    /// engine owns its snapshot).
    ///
    /// ```
    /// use fd_core::{FMax, FdQuery, ImpScores};
    /// use fd_live::LiveRankedFd;
    /// use fd_relational::tourist_database;
    ///
    /// let db = tourist_database();
    /// let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
    /// let live =
    ///     LiveRankedFd::from_query(FdQuery::over(&db).ranked(FMax::new(&imp)).top_k(2))?;
    /// assert_eq!(live.top().len(), 2);
    /// # Ok::<(), fd_core::FdError>(())
    /// ```
    pub fn from_query(query: FdQuery<'q>) -> Result<Self, FdError> {
        query.validate()?;
        let parts = query.into_parts();
        if parts.approx.is_some() {
            return Err(FdError::Incompatible {
                left: "live top-k maintenance",
                right: ".approx",
            });
        }
        if parts.min_rank.is_some() {
            return Err(FdError::Incompatible {
                left: "live top-k maintenance",
                right: ".threshold",
            });
        }
        let f = parts.ranking.ok_or(FdError::RankingRequired {
            option: "live top-k maintenance",
        })?;
        let k = parts.top_k.ok_or(FdError::TopKRequired {
            context: "live top-k maintenance",
        })?;
        Ok(Self::with_config_parallel(
            parts.db.clone(),
            f,
            k,
            parts.config,
            parts.threads,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_core::{FMax, ImpScores};
    use fd_relational::{tourist_database, RelId, TupleId};

    fn stars_imp(db: &Database) -> ImpScores {
        let stars = db.attr_id("Stars").unwrap();
        ImpScores::from_fn(db, |t| match db.tuple_value(t, stars) {
            Some(fd_relational::Value::Int(i)) => *i as f64,
            _ => 0.0,
        })
    }

    #[test]
    fn initial_window_matches_batch_top_k() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let f = FMax::new(&imp);
        let live = LiveRankedFd::new(db.clone(), f, 2);
        let batch = FdQuery::over(&db)
            .ranked(FMax::new(&imp))
            .top_k(2)
            .run()
            .unwrap()
            .into_ranked()
            .unwrap();
        let live_ranks: Vec<f64> = live.top().iter().map(|(_, r)| *r).collect();
        let batch_ranks: Vec<f64> = batch.iter().map(|(_, r)| *r).collect();
        assert_eq!(live_ranks, batch_ranks);
    }

    #[test]
    fn deleting_the_leader_promotes_the_runner_up() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let mut live = LiveRankedFd::new(db, FMax::new(&imp), 1);
        // The leader is {c1, a1} via the 4-star Plaza (a1 = t3).
        assert_eq!(live.top()[0].1, 4.0);
        let update = live.apply(Delta::Delete { tuple: TupleId(3) }).unwrap();
        assert!(!update.entered.is_empty());
        assert!(!update.left.is_empty());
        // Ramada (3 stars) leads now.
        assert_eq!(live.top()[0].1, 3.0);
        assert!(live.inner().verify_snapshot());
    }

    #[test]
    fn from_query_requires_ranking_and_window() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let live =
            LiveRankedFd::from_query(FdQuery::over(&db).ranked(FMax::new(&imp)).top_k(2)).unwrap();
        assert_eq!(live.top().len(), 2);

        assert_eq!(
            LiveRankedFd::from_query(FdQuery::over(&db)).err(),
            Some(FdError::RankingRequired {
                option: "live top-k maintenance"
            })
        );
        assert_eq!(
            LiveRankedFd::from_query(FdQuery::over(&db).ranked(FMax::new(&imp))).err(),
            Some(FdError::TopKRequired {
                context: "live top-k maintenance"
            })
        );
    }

    #[test]
    fn ranking_function_is_never_evaluated_on_retracted_sets() {
        // A ranking function may read the database; after a delete, the
        // retracted sets reference tuples that are no longer live, so
        // maintenance must locate them by their *recorded* rank instead
        // of re-ranking them.
        struct LivenessAsserting;
        impl RankingFunction for LivenessAsserting {
            fn rank(&self, db: &Database, set: &TupleSet) -> f64 {
                for &t in set.tuples() {
                    assert!(db.is_live(t), "rank evaluated on dead tuple {t}");
                }
                set.tuples().iter().map(|t| t.0 as f64).fold(0.0, f64::max)
            }
        }
        let mut live = LiveRankedFd::new(tourist_database(), LivenessAsserting, 3);
        live.apply(Delta::Delete { tuple: TupleId(3) }).unwrap();
        live.apply(Delta::Delete { tuple: TupleId(0) }).unwrap();
        assert!(live.inner().verify_snapshot());
    }

    #[test]
    fn incremental_ranking_equals_a_from_scratch_sort_under_churn() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let mut live = LiveRankedFd::new(db, FMax::new(&imp), 2);
        let script: Vec<Delta> = vec![
            Delta::Insert {
                rel: RelId(1),
                values: vec!["UK".into(), "London".into(), "Savoy".into(), 5.into()],
            },
            Delta::Delete { tuple: TupleId(3) },
            Delta::Insert {
                rel: RelId(2),
                values: vec!["Canada".into(), "Toronto".into(), "CN Tower".into()],
            },
            Delta::Delete { tuple: TupleId(10) },
            Delta::Delete { tuple: TupleId(0) },
            Delta::Insert {
                rel: RelId(0),
                values: vec!["Chile".into(), "arid".into()],
            },
        ];
        for delta in script {
            live.apply(delta).unwrap();
            // The incrementally maintained vector must equal what a full
            // re-rank + re-sort of the current results would produce.
            let mut scratch: Vec<(TupleSet, f64)> = live
                .inner()
                .results()
                .iter()
                .map(|s| (s.clone(), FMax::new(&imp).rank(live.db(), s)))
                .collect();
            scratch.sort_by(rank_order);
            assert_eq!(live.ranking(), &scratch[..]);
            assert!(live.inner().verify_snapshot());
        }
    }

    #[test]
    fn from_query_accepts_parallel_for_the_initial_materialization() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let parallel = LiveRankedFd::from_query(
            FdQuery::over(&db)
                .ranked(FMax::new(&imp))
                .top_k(3)
                .parallel(2),
        )
        .unwrap();
        let sequential =
            LiveRankedFd::from_query(FdQuery::over(&db).ranked(FMax::new(&imp)).top_k(3)).unwrap();
        assert_eq!(parallel.ranking(), sequential.ranking());
    }

    #[test]
    fn window_stays_sorted_under_churn() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let mut live = LiveRankedFd::new(db, FMax::new(&imp), 3);
        live.apply(Delta::Insert {
            rel: RelId(1),
            values: vec!["UK".into(), "London".into(), "Savoy".into(), 5.into()],
        })
        .unwrap();
        live.apply(Delta::Delete { tuple: TupleId(4) }).unwrap();
        let window = live.top();
        assert!(window.len() <= 3);
        for w in window.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(live.inner().verify_snapshot());
    }
}
