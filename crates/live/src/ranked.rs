//! A live top-k window over the maintained full disjunction.
//!
//! Ranked enumeration (the paper's `PRIORITYINCREMENTALFD`, and the
//! any-k literature's view of it) treats the answer stream as long-lived;
//! [`LiveRankedFd`] extends that to a *changing* database: it maintains
//! the full result set through [`LiveFd`] and keeps the k highest-ranked
//! answers current, reporting window entries and exits per mutation.

use crate::{FdEvent, LiveFd};
use fd_core::{BoxedRanking, FdConfig, FdError, FdQuery, RankingFunction, TupleSet};
use fd_relational::{Database, Delta, RelationalError};

/// What one mutation did to the ranked view.
#[derive(Debug, Clone)]
pub struct TopKUpdate {
    /// The underlying result-set changes (retractions first).
    pub events: Vec<FdEvent>,
    /// Sets that entered the top-k window, with their ranks.
    pub entered: Vec<(TupleSet, f64)>,
    /// Sets that left the top-k window (retracted or outranked).
    pub left: Vec<TupleSet>,
}

/// A maintained top-k window over a [`LiveFd`].
///
/// The ranking function is evaluated once per result-set change, and the
/// window is rebuilt from the maintained ranks — `O(m log m)` in the
/// number of current results, independent of the database size. Tuples
/// inserted after an importance assignment was built rank through its
/// documented default (see [`fd_core::ImpScores::imp`]).
#[derive(Debug)]
pub struct LiveRankedFd<F> {
    inner: LiveFd,
    f: F,
    k: usize,
    /// Current results with ranks, sorted by descending rank (ties in
    /// canonical order); the window is the first `k` entries.
    ranked: Vec<(TupleSet, f64)>,
}

impl<F: RankingFunction> LiveRankedFd<F> {
    /// Materializes the full disjunction of `db` and the initial top-k
    /// window under `f`.
    pub fn new(db: Database, f: F, k: usize) -> Self {
        Self::with_config(db, f, k, FdConfig::default())
    }

    /// Like [`new`](Self::new) with explicit engine/block configuration.
    pub fn with_config(db: Database, f: F, k: usize, cfg: FdConfig) -> Self {
        let inner = LiveFd::with_config(db, cfg);
        let mut ranked: Vec<(TupleSet, f64)> = inner
            .results()
            .iter()
            .map(|s| (s.clone(), f.rank(inner.db(), s)))
            .collect();
        sort_ranked(&mut ranked);
        LiveRankedFd {
            inner,
            f,
            k,
            ranked,
        }
    }

    /// The maintained full disjunction underneath.
    pub fn inner(&self) -> &LiveFd {
        &self.inner
    }

    /// The current database snapshot.
    pub fn db(&self) -> &Database {
        self.inner.db()
    }

    /// The window size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The current top-k window: up to `k` `(set, rank)` pairs in
    /// non-increasing rank order.
    pub fn top(&self) -> &[(TupleSet, f64)] {
        &self.ranked[..self.k.min(self.ranked.len())]
    }

    /// Applies one mutation, maintaining both the result set and the
    /// window, and reports what changed.
    pub fn apply(&mut self, delta: Delta) -> Result<TopKUpdate, RelationalError> {
        let before: Vec<TupleSet> = self.top().iter().map(|(s, _)| s.clone()).collect();
        let events = self.inner.apply(delta)?;
        for event in &events {
            match event {
                FdEvent::Retracted(set) => {
                    self.ranked.retain(|(s, _)| s.tuples() != set.tuples());
                }
                FdEvent::Added(set) => {
                    let rank = self.f.rank(self.inner.db(), set);
                    self.ranked.push((set.clone(), rank));
                }
            }
        }
        sort_ranked(&mut self.ranked);

        let after = self.top();
        let entered = after
            .iter()
            .filter(|(s, _)| !before.iter().any(|b| b.tuples() == s.tuples()))
            .cloned()
            .collect();
        let left = before
            .into_iter()
            .filter(|b| !after.iter().any(|(s, _)| s.tuples() == b.tuples()))
            .collect();
        Ok(TopKUpdate {
            events,
            entered,
            left,
        })
    }
}

impl<'q> LiveRankedFd<BoxedRanking<'q>> {
    /// Builds the live top-k engine from an [`FdQuery`]: requires
    /// `.ranked(f)` and `.top_k(k)`; honors the query's
    /// engine/page-size/init configuration for the materialization and
    /// every delta run; rejects `.approx`, `.parallel` and `.threshold`
    /// with a typed [`FdError`]. The database is cloned out of the query
    /// (the live engine owns its snapshot).
    ///
    /// ```
    /// use fd_core::{FMax, FdQuery, ImpScores};
    /// use fd_live::LiveRankedFd;
    /// use fd_relational::tourist_database;
    ///
    /// let db = tourist_database();
    /// let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
    /// let live =
    ///     LiveRankedFd::from_query(FdQuery::over(&db).ranked(FMax::new(&imp)).top_k(2))?;
    /// assert_eq!(live.top().len(), 2);
    /// # Ok::<(), fd_core::FdError>(())
    /// ```
    pub fn from_query(query: FdQuery<'q>) -> Result<Self, FdError> {
        query.validate()?;
        let parts = query.into_parts();
        if parts.approx.is_some() {
            return Err(FdError::Incompatible {
                left: "live top-k maintenance",
                right: ".approx",
            });
        }
        if parts.threads.is_some() {
            return Err(FdError::Incompatible {
                left: "live top-k maintenance",
                right: ".parallel",
            });
        }
        if parts.min_rank.is_some() {
            return Err(FdError::Incompatible {
                left: "live top-k maintenance",
                right: ".threshold",
            });
        }
        let f = parts.ranking.ok_or(FdError::RankingRequired {
            option: "live top-k maintenance",
        })?;
        let k = parts.top_k.ok_or(FdError::TopKRequired {
            context: "live top-k maintenance",
        })?;
        Ok(Self::with_config(parts.db.clone(), f, k, parts.config))
    }
}

fn sort_ranked(ranked: &mut [(TupleSet, f64)]) {
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_core::{FMax, ImpScores};
    use fd_relational::{tourist_database, RelId, TupleId};

    fn stars_imp(db: &Database) -> ImpScores {
        let stars = db.attr_id("Stars").unwrap();
        ImpScores::from_fn(db, |t| match db.tuple_value(t, stars) {
            Some(fd_relational::Value::Int(i)) => *i as f64,
            _ => 0.0,
        })
    }

    #[test]
    fn initial_window_matches_batch_top_k() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let f = FMax::new(&imp);
        let live = LiveRankedFd::new(db.clone(), f, 2);
        let batch = fd_core::top_k(&db, &FMax::new(&imp), 2);
        let live_ranks: Vec<f64> = live.top().iter().map(|(_, r)| *r).collect();
        let batch_ranks: Vec<f64> = batch.iter().map(|(_, r)| *r).collect();
        assert_eq!(live_ranks, batch_ranks);
    }

    #[test]
    fn deleting_the_leader_promotes_the_runner_up() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let mut live = LiveRankedFd::new(db, FMax::new(&imp), 1);
        // The leader is {c1, a1} via the 4-star Plaza (a1 = t3).
        assert_eq!(live.top()[0].1, 4.0);
        let update = live.apply(Delta::Delete { tuple: TupleId(3) }).unwrap();
        assert!(!update.entered.is_empty());
        assert!(!update.left.is_empty());
        // Ramada (3 stars) leads now.
        assert_eq!(live.top()[0].1, 3.0);
        assert!(live.inner().verify_snapshot());
    }

    #[test]
    fn from_query_requires_ranking_and_window() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let live =
            LiveRankedFd::from_query(FdQuery::over(&db).ranked(FMax::new(&imp)).top_k(2)).unwrap();
        assert_eq!(live.top().len(), 2);

        assert_eq!(
            LiveRankedFd::from_query(FdQuery::over(&db)).err(),
            Some(FdError::RankingRequired {
                option: "live top-k maintenance"
            })
        );
        assert_eq!(
            LiveRankedFd::from_query(FdQuery::over(&db).ranked(FMax::new(&imp))).err(),
            Some(FdError::TopKRequired {
                context: "live top-k maintenance"
            })
        );
    }

    #[test]
    fn window_stays_sorted_under_churn() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let mut live = LiveRankedFd::new(db, FMax::new(&imp), 3);
        live.apply(Delta::Insert {
            rel: RelId(1),
            values: vec!["UK".into(), "London".into(), "Savoy".into(), 5.into()],
        })
        .unwrap();
        live.apply(Delta::Delete { tuple: TupleId(4) }).unwrap();
        let window = live.top();
        assert!(window.len() <= 3);
        for w in window.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(live.inner().verify_snapshot());
    }
}
