//! A live top-k window over the maintained full disjunction — a thin
//! wrapper over a **ranked** [`FdSession`].
//!
//! Ranked enumeration (the paper's `PRIORITYINCREMENTALFD`, and the
//! any-k literature's view of it) treats the answer stream as
//! long-lived; a ranked session extends that to a *changing* database.
//! [`LiveRankedFd`] keeps the pre-session surface (`apply` one
//! [`Delta`], read `top()`) alive; new code should open the session
//! directly: `FdQuery::over(&db).ranked(f).top_k(k).session()?`.

use crate::{FdSession, TopKUpdate};
use fd_core::{FdError, FdQuery, RankingFunction, TupleSet};
use fd_relational::{Database, Delta};

/// A maintained top-k window over a live full disjunction — a thin
/// wrapper over a ranked [`FdSession`], kept for source compatibility.
///
/// **Deprecated in favor of [`FdSession`]** (build one with
/// `FdQuery::over(&db).ranked(f).top_k(k).session()?`): the session
/// adds batched commits and push subscribers, and its window is
/// maintained identically — one ranking evaluation per added set, one
/// binary-search insert/remove per change, never a full re-sort.
#[derive(Debug)]
pub struct LiveRankedFd<'q> {
    session: FdSession<'q>,
}

impl<'q> LiveRankedFd<'q> {
    /// Materializes the full disjunction of `db` and the initial top-k
    /// window under `f`.
    pub fn new(db: Database, f: impl RankingFunction + 'q, k: usize) -> Self {
        Self::with_config(db, f, k, fd_core::FdConfig::default())
    }

    /// Like [`new`](Self::new) with explicit engine/block configuration.
    pub fn with_config(
        db: Database,
        f: impl RankingFunction + 'q,
        k: usize,
        cfg: fd_core::FdConfig,
    ) -> Self {
        Self::with_config_parallel(db, f, k, cfg, None)
    }

    /// Like [`with_config`](Self::with_config), additionally computing
    /// the initial materialization with up to `threads` workers.
    pub fn with_config_parallel(
        db: Database,
        f: impl RankingFunction + 'q,
        k: usize,
        cfg: fd_core::FdConfig,
        threads: Option<usize>,
    ) -> Self {
        LiveRankedFd {
            session: FdSession::ranked_with_config_parallel(db, f, k, cfg, threads),
        }
    }

    /// Builds the live top-k engine from an [`FdQuery`]: requires
    /// `.ranked(f)` and `.top_k(k)`; honors the query's
    /// engine/page-size/init configuration for the materialization and
    /// every delta run, and `.parallel(n)` for the initial
    /// materialization; rejects `.approx` and `.threshold` with a typed
    /// [`FdError`]. The database is cloned out of the query (the live
    /// engine owns its snapshot).
    ///
    /// ```
    /// use fd_core::{FMax, FdQuery, ImpScores};
    /// use fd_live::LiveRankedFd;
    /// use fd_relational::tourist_database;
    ///
    /// let db = tourist_database();
    /// let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
    /// let live =
    ///     LiveRankedFd::from_query(FdQuery::over(&db).ranked(FMax::new(&imp)).top_k(2))?;
    /// assert_eq!(live.top().len(), 2);
    /// # Ok::<(), fd_core::FdError>(())
    /// ```
    pub fn from_query(query: FdQuery<'q>) -> Result<Self, FdError> {
        query.validate()?;
        let parts = query.into_parts();
        if parts.approx.is_some() {
            return Err(FdError::Incompatible {
                left: "live top-k maintenance",
                right: ".approx",
            });
        }
        if parts.min_rank.is_some() {
            return Err(FdError::Incompatible {
                left: "live top-k maintenance",
                right: ".threshold",
            });
        }
        let f = parts.ranking.ok_or(FdError::RankingRequired {
            option: "live top-k maintenance",
        })?;
        let k = parts.top_k.ok_or(FdError::TopKRequired {
            context: "live top-k maintenance",
        })?;
        Ok(Self::with_config_parallel(
            parts.db.clone(),
            f,
            k,
            parts.config,
            parts.threads,
        ))
    }

    /// The underlying ranked session.
    pub fn session(&self) -> &FdSession<'q> {
        &self.session
    }

    /// Mutable access to the underlying session (e.g. to subscribe an
    /// [`crate::EventSink`] or commit a whole [`crate::DeltaBatch`]).
    pub fn session_mut(&mut self) -> &mut FdSession<'q> {
        &mut self.session
    }

    /// The current database snapshot.
    pub fn db(&self) -> &Database {
        self.session.db()
    }

    /// The window size `k`.
    pub fn k(&self) -> usize {
        self.session.k().expect("ranked session")
    }

    /// The current results in unspecified order.
    pub fn results(&self) -> &[TupleSet] {
        self.session.results()
    }

    /// The current top-k window: up to `k` `(set, rank)` pairs in
    /// non-increasing rank order.
    pub fn top(&self) -> &[(TupleSet, f64)] {
        self.session.window().expect("ranked session")
    }

    /// The full maintained ranking (the window is its first `k` entries):
    /// every current result with its rank, in non-increasing rank order
    /// with ties in canonical member order.
    pub fn ranking(&self) -> &[(TupleSet, f64)] {
        self.session.ranking().expect("ranked session")
    }

    /// Applies one mutation, maintaining both the result set and the
    /// window, and reports what changed. The ranked vector is maintained
    /// in place — binary-search insert for entered sets, positional
    /// removal for retracted ones — never re-sorted or re-ranked.
    pub fn apply(&mut self, delta: Delta) -> Result<TopKUpdate, FdError> {
        Ok(self
            .session
            .apply(delta)?
            .topk
            .expect("ranked sessions always report a TopKUpdate"))
    }

    /// The oracle-checkable invariant of the wrapped session (results
    /// *and* maintained ranking match a from-scratch recomputation).
    pub fn verify_snapshot(&self) -> bool {
        self.session.verify_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_core::{FMax, ImpScores};
    use fd_relational::{tourist_database, RelId, TupleId};

    fn stars_imp(db: &Database) -> ImpScores {
        let stars = db.attr_id("Stars").unwrap();
        ImpScores::from_fn(db, |t| match db.tuple_value(t, stars) {
            Some(fd_relational::Value::Int(i)) => *i as f64,
            _ => 0.0,
        })
    }

    #[test]
    fn initial_window_matches_batch_top_k() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let f = FMax::new(&imp);
        let live = LiveRankedFd::new(db.clone(), f, 2);
        let batch = FdQuery::over(&db)
            .ranked(FMax::new(&imp))
            .top_k(2)
            .run()
            .unwrap()
            .into_ranked()
            .unwrap();
        let live_ranks: Vec<f64> = live.top().iter().map(|(_, r)| *r).collect();
        let batch_ranks: Vec<f64> = batch.iter().map(|(_, r)| *r).collect();
        assert_eq!(live_ranks, batch_ranks);
    }

    #[test]
    fn deleting_the_leader_promotes_the_runner_up() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let mut live = LiveRankedFd::new(db, FMax::new(&imp), 1);
        // The leader is {c1, a1} via the 4-star Plaza (a1 = t3).
        assert_eq!(live.top()[0].1, 4.0);
        let update = live.apply(Delta::Delete { tuple: TupleId(3) }).unwrap();
        assert!(!update.entered.is_empty());
        assert!(!update.left.is_empty());
        // Ramada (3 stars) leads now.
        assert_eq!(live.top()[0].1, 3.0);
        assert!(live.verify_snapshot());
    }

    #[test]
    fn from_query_requires_ranking_and_window() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let live =
            LiveRankedFd::from_query(FdQuery::over(&db).ranked(FMax::new(&imp)).top_k(2)).unwrap();
        assert_eq!(live.top().len(), 2);

        assert_eq!(
            LiveRankedFd::from_query(FdQuery::over(&db)).err(),
            Some(FdError::RankingRequired {
                option: "live top-k maintenance"
            })
        );
        assert_eq!(
            LiveRankedFd::from_query(FdQuery::over(&db).ranked(FMax::new(&imp))).err(),
            Some(FdError::TopKRequired {
                context: "live top-k maintenance"
            })
        );
    }

    #[test]
    fn ranking_function_is_never_evaluated_on_retracted_sets() {
        // A ranking function may read the database; after a delete, the
        // retracted sets reference tuples that are no longer live, so
        // maintenance must locate them by their *recorded* rank instead
        // of re-ranking them.
        struct LivenessAsserting;
        impl RankingFunction for LivenessAsserting {
            fn rank(&self, db: &Database, set: &TupleSet) -> f64 {
                for &t in set.tuples() {
                    assert!(db.is_live(t), "rank evaluated on dead tuple {t}");
                }
                set.tuples().iter().map(|t| t.0 as f64).fold(0.0, f64::max)
            }
        }
        let mut live = LiveRankedFd::new(tourist_database(), LivenessAsserting, 3);
        live.apply(Delta::Delete { tuple: TupleId(3) }).unwrap();
        live.apply(Delta::Delete { tuple: TupleId(0) }).unwrap();
        assert!(live.verify_snapshot());
    }

    #[test]
    fn incremental_ranking_equals_a_from_scratch_sort_under_churn() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let mut live = LiveRankedFd::new(db, FMax::new(&imp), 2);
        let script: Vec<Delta> = vec![
            Delta::Insert {
                rel: RelId(1),
                values: vec!["UK".into(), "London".into(), "Savoy".into(), 5.into()],
            },
            Delta::Delete { tuple: TupleId(3) },
            Delta::Insert {
                rel: RelId(2),
                values: vec!["Canada".into(), "Toronto".into(), "CN Tower".into()],
            },
            Delta::Delete { tuple: TupleId(10) },
            Delta::Delete { tuple: TupleId(0) },
            Delta::Insert {
                rel: RelId(0),
                values: vec!["Chile".into(), "arid".into()],
            },
        ];
        for delta in script {
            live.apply(delta).unwrap();
            // The incrementally maintained vector must equal what a full
            // re-rank + re-sort of the current results would produce.
            let mut scratch: Vec<(TupleSet, f64)> = live
                .results()
                .iter()
                .map(|s| (s.clone(), FMax::new(&imp).rank(live.db(), s)))
                .collect();
            scratch.sort_by(|a, b| fd_core::canonical_rank_order(a.1, &a.0, b.1, &b.0));
            assert_eq!(live.ranking(), &scratch[..]);
            assert!(live.verify_snapshot());
        }
    }

    #[test]
    fn from_query_accepts_parallel_for_the_initial_materialization() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let parallel = LiveRankedFd::from_query(
            FdQuery::over(&db)
                .ranked(FMax::new(&imp))
                .top_k(3)
                .parallel(2),
        )
        .unwrap();
        let sequential =
            LiveRankedFd::from_query(FdQuery::over(&db).ranked(FMax::new(&imp)).top_k(3)).unwrap();
        assert_eq!(parallel.ranking(), sequential.ranking());
    }

    #[test]
    fn window_stays_sorted_under_churn() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let mut live = LiveRankedFd::new(db, FMax::new(&imp), 3);
        live.apply(Delta::Insert {
            rel: RelId(1),
            values: vec!["UK".into(), "London".into(), "Savoy".into(), 5.into()],
        })
        .unwrap();
        live.apply(Delta::Delete { tuple: TupleId(4) }).unwrap();
        let window = live.top();
        assert!(window.len() <= 3);
        for w in window.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(live.verify_snapshot());
    }

    #[test]
    fn batched_commits_update_the_window_once() {
        let db = tourist_database();
        let imp = stars_imp(&db);
        let mut live = LiveRankedFd::new(db, FMax::new(&imp), 2);
        let mut batch = live.session().begin();
        batch.delete(TupleId(3)).insert(
            RelId(1),
            vec!["UK".into(), "London".into(), "Savoy".into(), 5.into()],
        );
        let commit = live.session_mut().commit(batch).unwrap();
        assert_eq!(live.session().maintenance_passes(), 1);
        let update = commit.topk.expect("ranked session");
        assert!(!update.entered.is_empty());
        assert!(live.verify_snapshot());
    }
}
