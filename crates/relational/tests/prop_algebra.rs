//! Property tests for the relational substrate: join/outerjoin algebra,
//! subsumption removal, and the acyclicity hierarchy.

use fd_relational::hypergraph::Hypergraph;
use fd_relational::join::{natural_join, DerivedRelation};
use fd_relational::outerjoin::{full_outerjoin, remove_subsumed, subsumes};
use fd_relational::{AttrId, Value};
use proptest::prelude::*;

/// A derived relation over attributes {0: shared, 1 or 2: own}, with
/// small integer values and nulls.
fn arb_side(own_attr: u32) -> impl Strategy<Value = DerivedRelation> {
    proptest::collection::vec(
        (proptest::option::of(0i64..4), proptest::option::of(0i64..4)),
        0..6,
    )
    .prop_map(move |rows| {
        let mut rel = DerivedRelation::empty(vec![AttrId(0), AttrId(own_attr)]);
        for (a, b) in rows {
            let v = |x: Option<i64>| x.map(Value::Int).unwrap_or(Value::Null);
            rel.rows.push(Box::new([v(a), v(b)]));
        }
        rel
    })
}

/// Random small hypergraphs: up to 5 edges over 6 vertices.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..6, 1..4), 1..6).prop_map(
        |edges| {
            Hypergraph::new(
                edges
                    .into_iter()
                    .map(|e| e.into_iter().map(AttrId).collect())
                    .collect(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Inner join ⊆ full outerjoin, and the outerjoin preserves both
    /// sides: every input row is subsumed by some output row.
    #[test]
    fn outerjoin_contains_join_and_preserves_inputs(
        a in arb_side(1),
        b in arb_side(2),
    ) {
        let join = natural_join(&a, &b);
        let outer = full_outerjoin(&a, &b);
        prop_assert!(join.len() <= outer.len());
        for row in &join.rows {
            prop_assert!(outer.rows.contains(row));
        }
        // Left preservation: pad each a-row and find a subsuming output.
        for arow in &a.rows {
            let padded: Vec<Value> = outer
                .attrs
                .iter()
                .map(|attr| match a.column_of(*attr) {
                    Some(c) => arow[c].clone(),
                    None => Value::Null,
                })
                .collect();
            prop_assert!(
                outer.rows.iter().any(|orow| subsumes(orow, &padded)),
                "left row lost"
            );
        }
        for brow in &b.rows {
            let padded: Vec<Value> = outer
                .attrs
                .iter()
                .map(|attr| match b.column_of(*attr) {
                    Some(c) => brow[c].clone(),
                    None => Value::Null,
                })
                .collect();
            prop_assert!(
                outer.rows.iter().any(|orow| subsumes(orow, &padded)),
                "right row lost"
            );
        }
    }

    /// Join is commutative up to row order.
    #[test]
    fn join_is_commutative(a in arb_side(1), b in arb_side(2)) {
        let mut ab = natural_join(&a, &b);
        let mut ba = natural_join(&b, &a);
        ab.sort_dedup();
        ba.sort_dedup();
        prop_assert_eq!(ab, ba);
    }

    /// Subsumption removal is idempotent and leaves an antichain.
    #[test]
    fn remove_subsumed_is_idempotent(a in arb_side(1)) {
        let mut once = a.clone();
        remove_subsumed(&mut once);
        let mut twice = once.clone();
        remove_subsumed(&mut twice);
        prop_assert_eq!(&once, &twice);
        for (i, x) in once.rows.iter().enumerate() {
            for (j, y) in once.rows.iter().enumerate() {
                if i != j {
                    prop_assert!(!subsumes(y, x), "row {i} subsumed by {j}");
                }
            }
        }
    }

    /// Every row surviving subsumption removal was an input row, and
    /// every input row is subsumed by some survivor.
    #[test]
    fn remove_subsumed_is_a_covering_subset(a in arb_side(1)) {
        let mut cleaned = a.clone();
        remove_subsumed(&mut cleaned);
        for row in &cleaned.rows {
            prop_assert!(a.rows.contains(row));
        }
        for row in &a.rows {
            prop_assert!(cleaned.rows.iter().any(|c| subsumes(c, row)));
        }
    }

    /// Fagin's hierarchy: γ-acyclic ⇒ α-acyclic.
    #[test]
    fn gamma_acyclic_implies_alpha_acyclic(h in arb_hypergraph()) {
        if h.is_gamma_acyclic() {
            prop_assert!(h.is_alpha_acyclic());
        }
    }

    /// Acyclicity tests are deterministic and edge-order independent.
    #[test]
    fn acyclicity_is_edge_order_independent(h in arb_hypergraph()) {
        let mut reversed = h.edges.clone();
        reversed.reverse();
        let hr = Hypergraph::new(reversed);
        prop_assert_eq!(h.is_alpha_acyclic(), hr.is_alpha_acyclic());
        prop_assert_eq!(h.is_gamma_acyclic(), hr.is_gamma_acyclic());
    }
}
