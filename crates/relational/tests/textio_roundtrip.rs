//! Property test: the textual format is a faithful serialization —
//! `parse_database(format_database(db))` is the identity on relation
//! names, schemas and row values, for databases whose values include the
//! adversarial strings that used to break the format (pipes, quotes,
//! whitespace, spellings of other value types, grammar keywords).

use fd_relational::textio::{format_database, parse_database};
use fd_relational::{Database, DatabaseBuilder, Value};
use proptest::prelude::*;

/// Strings chosen to collide with every piece of the format's grammar.
const ADVERSARIAL: &[&str] = &[
    "",
    " ",
    "a|b",
    "x | y",
    "he said \"hi\"",
    "back\\slash",
    "\"",
    "42",
    "-7",
    "4.5",
    "1e3",
    "true",
    "false",
    "null",
    "NULL",
    "_",
    "⊥",
    "relation",
    "relation R(A)",
    "# comment",
    " padded ",
    "line\nbreak",
    "tab\tcell",
];

fn arb_value() -> impl Strategy<Value = Value> {
    (0usize..8, 0i64..200, 0usize..ADVERSARIAL.len()).prop_map(|(kind, n, pick)| match kind {
        0 => Value::Null,
        1 => Value::Int(n - 100),
        2 => Value::float((n - 100) as f64 / 4.0),
        3 => Value::Bool(n % 2 == 0),
        4 => Value::str(format!("word{n}")),
        _ => Value::str(ADVERSARIAL[pick]),
    })
}

/// One relation spec: arity, attribute-pool offset (overlapping offsets
/// give relations shared attributes), and rows of raw values.
fn arb_relation() -> impl Strategy<Value = (usize, usize, Vec<Vec<Value>>)> {
    (
        1usize..=3,
        0usize..=2,
        proptest::collection::vec(proptest::collection::vec(arb_value(), 3), 0..5),
    )
}

fn build(spec: &[(usize, usize, Vec<Vec<Value>>)]) -> Database {
    const ATTR_POOL: &[&str] = &["A0", "A1", "A2", "A3", "A4"];
    let mut b = DatabaseBuilder::new();
    for (i, (arity, offset, rows)) in spec.iter().enumerate() {
        let attrs: Vec<&str> = ATTR_POOL[*offset..offset + arity].to_vec();
        let mut rel = b.relation(&format!("R{i}"), &attrs);
        for row in rows {
            rel.row_values(row[..*arity].to_vec());
        }
    }
    b.build().expect("generated database is well-formed")
}

fn assert_databases_equal(a: &Database, b: &Database) {
    assert_eq!(a.num_relations(), b.num_relations());
    assert_eq!(a.num_tuples(), b.num_tuples());
    for (ra, rb) in a.relations().iter().zip(b.relations()) {
        assert_eq!(ra.name(), rb.name());
        let attrs_a: Vec<&str> = ra
            .schema()
            .attrs()
            .iter()
            .map(|&x| a.attr_name(x))
            .collect();
        let attrs_b: Vec<&str> = rb
            .schema()
            .attrs()
            .iter()
            .map(|&x| b.attr_name(x))
            .collect();
        assert_eq!(attrs_a, attrs_b, "schema of {}", ra.name());
        let rows_a: Vec<&[Value]> = ra.rows().collect();
        let rows_b: Vec<&[Value]> = rb.rows().collect();
        assert_eq!(rows_a, rows_b, "rows of {}", ra.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// format → parse is the identity.
    #[test]
    fn format_then_parse_is_identity(
        spec in proptest::collection::vec(arb_relation(), 1..4),
    ) {
        let db = build(&spec);
        let text = format_database(&db);
        let back = parse_database(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- serialized ---\n{text}"));
        assert_databases_equal(&db, &back);
    }

    /// Serialization is stable: a round-tripped database serializes to
    /// the same text (no oscillating quoting decisions).
    #[test]
    fn serialization_is_a_fixpoint(
        spec in proptest::collection::vec(arb_relation(), 1..3),
    ) {
        let db = build(&spec);
        let text = format_database(&db);
        let back = parse_database(&text).unwrap();
        prop_assert_eq!(text, format_database(&back));
    }
}
