//! Relation schemas.
//!
//! A schema is an ordered list of interned attributes. Following the paper's
//! auxiliary structure (Section 4), each schema also records, for every
//! column, the numerical position the attribute would take if the schema
//! were sorted by ascending attribute id — that is what lets a singleton
//! tuple set's sorted binding list be built in linear time (bucket sort).

use crate::ids::AttrId;

/// The attribute list of one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Attributes in declaration (column) order.
    attrs: Box<[AttrId]>,
    /// `sorted_pos[c]` = rank of column `c`'s attribute among the schema's
    /// attributes sorted ascending. The paper's per-relation auxiliary
    /// structure.
    sorted_pos: Box<[u16]>,
    /// Column index per attribute, sorted by attribute id — supports
    /// `O(log |schema|)` attribute lookup and ordered iteration.
    by_attr: Box<[(AttrId, u16)]>,
}

impl Schema {
    /// Builds a schema from distinct attributes in declaration order.
    ///
    /// # Panics
    /// Panics if an attribute repeats (the database builder reports this as
    /// a proper error before calling in).
    pub fn new(attrs: Vec<AttrId>) -> Self {
        let mut by_attr: Vec<(AttrId, u16)> = attrs
            .iter()
            .enumerate()
            .map(|(c, &a)| (a, c as u16))
            .collect();
        by_attr.sort_unstable();
        debug_assert!(
            by_attr.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate attribute in schema"
        );
        let mut sorted_pos = vec![0u16; attrs.len()];
        for (rank, &(_, col)) in by_attr.iter().enumerate() {
            sorted_pos[col as usize] = rank as u16;
        }
        Schema {
            attrs: attrs.into_boxed_slice(),
            sorted_pos: sorted_pos.into_boxed_slice(),
            by_attr: by_attr.into_boxed_slice(),
        }
    }

    /// Attributes in declaration order.
    #[inline]
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Column index of `attr`, if present.
    #[inline]
    pub fn column_of(&self, attr: AttrId) -> Option<usize> {
        self.by_attr
            .binary_search_by_key(&attr, |&(a, _)| a)
            .ok()
            .map(|i| self.by_attr[i].1 as usize)
    }

    /// Does this schema contain `attr`?
    #[inline]
    pub fn contains(&self, attr: AttrId) -> bool {
        self.column_of(attr).is_some()
    }

    /// `(attribute, column)` pairs in ascending attribute order — the order
    /// the paper keeps its `(r, a, v)` triple lists in.
    #[inline]
    pub fn columns_by_attr(&self) -> &[(AttrId, u16)] {
        &self.by_attr
    }

    /// Rank of column `col`'s attribute among the sorted attributes
    /// (the paper's auxiliary bucket-sort positions).
    #[inline]
    pub fn sorted_position(&self, col: usize) -> usize {
        self.sorted_pos[col] as usize
    }

    /// Attributes shared with another schema, ascending. Two relations are
    /// *connected* iff this is non-empty.
    pub fn shared_attrs(&self, other: &Schema) -> Vec<AttrId> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.by_attr.len() && j < other.by_attr.len() {
            match self.by_attr[i].0.cmp(&other.by_attr[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.by_attr[i].0);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Is this schema connected to (shares at least one attribute with)
    /// `other`?
    pub fn connected_to(&self, other: &Schema) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.by_attr.len() && j < other.by_attr.len() {
            match self.by_attr[i].0.cmp(&other.by_attr[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(ids: &[u32]) -> Schema {
        Schema::new(ids.iter().map(|&i| AttrId(i)).collect())
    }

    #[test]
    fn column_lookup() {
        let s = schema(&[5, 2, 9]);
        assert_eq!(s.column_of(AttrId(5)), Some(0));
        assert_eq!(s.column_of(AttrId(2)), Some(1));
        assert_eq!(s.column_of(AttrId(9)), Some(2));
        assert_eq!(s.column_of(AttrId(7)), None);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn sorted_positions_match_ascending_order() {
        // Declaration order: 5, 2, 9  →  sorted order: 2, 5, 9
        let s = schema(&[5, 2, 9]);
        assert_eq!(s.sorted_position(0), 1); // attr 5 ranks 1st (0-based)
        assert_eq!(s.sorted_position(1), 0); // attr 2 ranks 0th
        assert_eq!(s.sorted_position(2), 2); // attr 9 ranks 2nd
    }

    #[test]
    fn shared_attrs_is_sorted_intersection() {
        let a = schema(&[1, 3, 5, 7]);
        let b = schema(&[2, 3, 7, 8]);
        assert_eq!(a.shared_attrs(&b), vec![AttrId(3), AttrId(7)]);
        assert!(a.connected_to(&b));
        let c = schema(&[0, 9]);
        assert!(a.shared_attrs(&c).is_empty());
        assert!(!a.connected_to(&c));
    }

    #[test]
    fn columns_by_attr_ascending() {
        let s = schema(&[5, 2, 9]);
        let cols: Vec<u32> = s.columns_by_attr().iter().map(|&(a, _)| a.0).collect();
        assert_eq!(cols, vec![2, 5, 9]);
    }
}
