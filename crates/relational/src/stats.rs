//! Catalog statistics: per-attribute value profiles and a heuristic
//! full-disjunction size estimate.
//!
//! Section 7 of the paper targets execution inside a database system;
//! any such integration needs catalog statistics to budget memory for
//! `Incomplete`/`Complete` and to decide whether computing the full FD is
//! feasible before starting. This module provides the standard per-column
//! profile (row count, null count, distinct count, most common values)
//! and [`estimate_fd_pairs`], a pairwise-independence estimate of how
//! many two-tuple join-consistent combinations the data holds — a cheap
//! lower-bound signal for the output size. It is a *heuristic*
//! (documented as such); the algorithms never depend on it.

use crate::database::Database;
use crate::fxhash::FxHashMap;
use crate::ids::{AttrId, RelId};
use crate::value::Value;

/// Statistics for one attribute of one relation.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// The attribute.
    pub attr: AttrId,
    /// Number of rows in the relation.
    pub rows: usize,
    /// Number of null values in this column.
    pub nulls: usize,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// The most common non-null value and its frequency, if any.
    pub most_common: Option<(Value, usize)>,
}

impl ColumnStats {
    /// Fraction of rows that are null in this column.
    pub fn null_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }
}

/// Per-relation, per-column statistics for a database.
#[derive(Debug, Clone)]
pub struct CatalogStats {
    /// `columns[rel][col]` aligned with each relation's schema order.
    pub columns: Vec<Vec<ColumnStats>>,
}

impl CatalogStats {
    /// Profiles every column of every relation (one pass per column).
    pub fn collect(db: &Database) -> Self {
        let mut columns = Vec::with_capacity(db.num_relations());
        for rel in db.relations() {
            let mut rel_stats = Vec::with_capacity(rel.schema().arity());
            for (col, &attr) in rel.schema().attrs().iter().enumerate() {
                let mut nulls = 0usize;
                let mut freq: FxHashMap<&Value, usize> = FxHashMap::default();
                for row in rel.rows() {
                    let v = &row[col];
                    if v.is_null() {
                        nulls += 1;
                    } else {
                        *freq.entry(v).or_insert(0) += 1;
                    }
                }
                let most_common = freq
                    .iter()
                    .max_by_key(|&(_, &c)| c)
                    .map(|(&v, &c)| (v.clone(), c));
                rel_stats.push(ColumnStats {
                    attr,
                    rows: rel.len(),
                    nulls,
                    distinct: freq.len(),
                    most_common,
                });
            }
            columns.push(rel_stats);
        }
        CatalogStats { columns }
    }

    /// The stats of `attr` within `rel`, if the schema has it.
    pub fn column(&self, db: &Database, rel: RelId, attr: AttrId) -> Option<&ColumnStats> {
        let col = db.relation(rel).schema().column_of(attr)?;
        Some(&self.columns[rel.index()][col])
    }
}

/// Estimates, per connected relation pair, how many join-consistent tuple
/// *pairs* the data holds, assuming per-attribute independence and
/// uniform value distributions (the textbook `|R|·|S| / max(d_R, d_S)`
/// selectivity, corrected for nulls, multiplied over the shared
/// attributes). Returns `(r1, r2, estimated pairs)` for each edge of the
/// relation graph, plus the total.
///
/// This is the standard optimizer heuristic — skew makes it an
/// underestimate, correlation an overestimate; tests only assert
/// order-of-magnitude behavior on uniform data.
pub fn estimate_fd_pairs(db: &Database, stats: &CatalogStats) -> (Vec<(RelId, RelId, f64)>, f64) {
    let mut edges = Vec::new();
    let mut total = 0.0;
    let n = db.num_relations();
    for a in 0..n {
        for b in (a + 1)..n {
            let (ra, rb) = (RelId(a as u16), RelId(b as u16));
            let shared = db.shared_attrs(ra, rb);
            if shared.is_empty() {
                continue;
            }
            let rows_a = db.relation(ra).len() as f64;
            let rows_b = db.relation(rb).len() as f64;
            let mut est = rows_a * rows_b;
            for &attr in shared {
                let ca = stats.column(db, ra, attr).expect("shared attr");
                let cb = stats.column(db, rb, attr).expect("shared attr");
                let d = ca.distinct.max(cb.distinct).max(1) as f64;
                let non_null = (1.0 - ca.null_fraction()) * (1.0 - cb.null_fraction());
                est *= non_null / d;
            }
            total += est;
            edges.push((ra, rb, est));
        }
    }
    (edges, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use crate::value::NULL;

    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A", "B"])
            .row([1, 10])
            .row([1, 20])
            .row_values(vec![2.into(), NULL]);
        b.relation("S", &["B", "C"])
            .row([10, 1])
            .row([20, 2])
            .row([30, 3]);
        b.build().unwrap()
    }

    #[test]
    fn column_profiles() {
        let db = db();
        let stats = CatalogStats::collect(&db);
        let b_attr = db.attr_id("B").unwrap();
        let rb = stats.column(&db, RelId(0), b_attr).unwrap();
        assert_eq!(rb.rows, 3);
        assert_eq!(rb.nulls, 1);
        assert_eq!(rb.distinct, 2);
        assert!((rb.null_fraction() - 1.0 / 3.0).abs() < 1e-12);
        let a_attr = db.attr_id("A").unwrap();
        let ra = stats.column(&db, RelId(0), a_attr).unwrap();
        assert_eq!(ra.most_common, Some((Value::Int(1), 2)));
        // Attribute not in the schema.
        let c_attr = db.attr_id("C").unwrap();
        assert!(stats.column(&db, RelId(0), c_attr).is_none());
    }

    #[test]
    fn pair_estimate_on_uniform_data_is_close() {
        let db = db();
        let stats = CatalogStats::collect(&db);
        let (edges, total) = estimate_fd_pairs(&db, &stats);
        assert_eq!(edges.len(), 1);
        // Actual join-consistent pairs: (1,10)-(10,1) and (1,20)-(20,2) = 2.
        // Estimate: 3·3 · (2/3 · 1) / 3 = 2.0.
        assert!((total - 2.0).abs() < 1e-9, "estimate {total}");
    }

    #[test]
    fn estimator_tracks_selectivity_on_generated_data() {
        // Uniform chain: doubling the domain should roughly halve the
        // estimated pair count.
        let mk = |domain: i64| {
            let mut b = DatabaseBuilder::new();
            {
                let mut r = b.relation("R", &["A", "B"]);
                for i in 0..40i64 {
                    r.row([i, i % domain]);
                }
            }
            {
                let mut s = b.relation("S", &["B", "C"]);
                for i in 0..40i64 {
                    s.row([i % domain, i]);
                }
            }
            b.build().unwrap()
        };
        let est = |domain| {
            let db = mk(domain);
            let stats = CatalogStats::collect(&db);
            estimate_fd_pairs(&db, &stats).1
        };
        let e4 = est(4);
        let e8 = est(8);
        assert!(e4 > 1.8 * e8, "e4={e4} e8={e8}");
    }

    #[test]
    fn empty_relation_profiles_cleanly() {
        let mut b = DatabaseBuilder::new();
        b.relation("E", &["A"]);
        let db = b.build().unwrap();
        let stats = CatalogStats::collect(&db);
        let a = db.attr_id("A").unwrap();
        let c = stats.column(&db, RelId(0), a).unwrap();
        assert_eq!(c.rows, 0);
        assert_eq!(c.null_fraction(), 0.0);
        assert!(c.most_common.is_none());
    }
}
