//! The database catalog: interned attributes, relations, the global tuple
//! id space `Tuples(R)`, and the relation connectivity graph.

use crate::error::{RelationalError, Result};
use crate::fxhash::FxHashMap;
use crate::ids::{AttrId, RelId, TupleId};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Probe instrumentation, shared behind `&Database` across threads.
/// Cloning a database snapshots the counter values.
#[derive(Debug, Default)]
struct ProbeCounters {
    probes: AtomicU64,
    hits: AtomicU64,
}

impl Clone for ProbeCounters {
    fn clone(&self) -> Self {
        ProbeCounters {
            probes: AtomicU64::new(self.probes.load(Ordering::Relaxed)),
            hits: AtomicU64::new(self.hits.load(Ordering::Relaxed)),
        }
    }
}

/// A set of relations `R = {R1, …, Rn}` plus every derived index the
/// paper's algorithms need:
///
/// * a global tuple id space (`Tuples(R)`),
/// * the *relation graph* — vertices are relations, edges connect relations
///   whose schemas share an attribute (Section 2),
/// * per-pair shared-attribute lists, used by the `O(n²)` connected-
///   component step of `GETNEXTRESULT` (Theorem 4.8),
/// * an attribute → relations index.
///
/// The *schema* is immutable once built (see [`DatabaseBuilder`]), so all
/// algorithms can borrow a database freely, including across threads. The
/// *data* supports a mutation layer for dynamic maintenance
/// ([`insert_tuple`](Database::insert_tuple) /
/// [`remove_tuple`](Database::remove_tuple)): inserted tuples receive
/// fresh ids above the builder-time id space, deletions tombstone the
/// tuple in place, and existing [`TupleId`]s never change meaning.
#[derive(Debug, Clone)]
pub struct Database {
    attr_names: Vec<String>,
    attr_ids: HashMap<String, AttrId>,
    relations: Vec<Relation>,
    rel_ids: HashMap<String, RelId>,
    /// `tuple_start[r]` = first global tuple id of relation `r` at build
    /// time; `tuple_start[n]` = builder-time tuple count (sentinel).
    /// Tuples inserted later live *above* this dense base layout.
    tuple_start: Vec<u32>,
    /// Dynamically inserted tuples: id `base + i` maps to
    /// `overflow[i] = (relation, row index within the relation)`.
    overflow: Vec<(RelId, u32)>,
    /// Global ids of each relation's dynamic tuples, ascending.
    overflow_by_rel: Vec<Vec<u32>>,
    /// Liveness per tuple id; `false` marks a tombstoned (deleted) tuple.
    alive: Vec<bool>,
    /// Number of live tuples.
    live: usize,
    /// Adjacency lists of the relation graph, ascending.
    adjacency: Vec<Vec<RelId>>,
    /// Shared attributes per relation pair, flattened `n × n` row-major.
    shared: Vec<Vec<AttrId>>,
    /// Relations containing each attribute, ascending.
    attr_rels: Vec<Vec<RelId>>,
    /// Per relation: the *join columns* — attributes of its schema shared
    /// with at least one other relation's schema — as `(attr, column)`
    /// pairs ascending by attribute. Only these can carry a binding a
    /// probe needs to match, so only these are indexed.
    indexed_attrs: Vec<Vec<(AttrId, u16)>>,
    /// Per (relation, join-column slot): value → ascending **live**
    /// global tuple ids of that relation holding the value. Nulls are
    /// never indexed (`⊥` is join-consistent with nothing). Maintained by
    /// [`insert_tuple`](Database::insert_tuple) /
    /// [`remove_tuple`](Database::remove_tuple).
    postings: Vec<Vec<FxHashMap<Value, Vec<u32>>>>,
    /// When false, [`probe`](Database::probe) always takes the fallback
    /// scan — the A/B lever the scaling bench uses to price the index.
    index_enabled: bool,
    probe_counters: ProbeCounters,
}

impl Database {
    /// Number of relations (`n` in the paper).
    #[inline]
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Number of *live* tuples across all relations (`|Tuples(R)|`):
    /// tombstoned tuples are excluded, inserted ones included.
    #[inline]
    pub fn num_tuples(&self) -> usize {
        self.live
    }

    /// Number of builder-time tuples; ids `>= base_tuple_count()` were
    /// inserted dynamically and live in the overflow layout.
    #[inline]
    pub fn base_tuple_count(&self) -> u32 {
        *self.tuple_start.last().expect("sentinel")
    }

    /// Exclusive upper bound of the tuple id space (live or dead). Useful
    /// for id-indexed side tables like importance assignments.
    #[inline]
    pub fn tuple_id_bound(&self) -> u32 {
        self.base_tuple_count() + self.overflow.len() as u32
    }

    /// Is `t` a live tuple (allocated and not tombstoned)?
    #[inline]
    pub fn is_live(&self, t: TupleId) -> bool {
        self.alive.get(t.index()).copied().unwrap_or(false)
    }

    /// Has the database been mutated since it was built? (Baselines that
    /// read relation rows directly require an unmutated database.)
    #[inline]
    pub fn has_mutations(&self) -> bool {
        !self.overflow.is_empty() || self.live != self.base_tuple_count() as usize
    }

    /// Number of distinct attributes.
    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// Total size `s` as the paper measures it: the number of
    /// (tuple, attribute, value) entries over all relations.
    pub fn total_size(&self) -> usize {
        self.relations.iter().map(Relation::total_size).sum()
    }

    /// All relations in `R1..Rn` order.
    #[inline]
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// The relation with the given id.
    #[inline]
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Looks a relation up by name.
    pub fn relation_by_name(&self, name: &str) -> Result<&Relation> {
        let id = self
            .rel_ids
            .get(name)
            .ok_or_else(|| RelationalError::UnknownRelation {
                relation: name.to_owned(),
            })?;
        Ok(&self.relations[id.index()])
    }

    /// The interned id of an attribute name.
    pub fn attr_id(&self, name: &str) -> Result<AttrId> {
        self.attr_ids
            .get(name)
            .copied()
            .ok_or_else(|| RelationalError::UnknownAttribute {
                attribute: name.to_owned(),
            })
    }

    /// The name of an interned attribute.
    #[inline]
    pub fn attr_name(&self, attr: AttrId) -> &str {
        &self.attr_names[attr.index()]
    }

    /// All attribute ids, ascending.
    pub fn attrs(&self) -> impl ExactSizeIterator<Item = AttrId> {
        (0..self.attr_names.len() as u32).map(AttrId)
    }

    /// The builder-time dense id band of relation `rel`. Dynamic tuples of
    /// `rel` live *outside* this range; use [`tuples_of`](Self::tuples_of)
    /// to enumerate them all.
    #[inline]
    pub fn base_tuples(&self, rel: RelId) -> Range<u32> {
        self.tuple_start[rel.index()]..self.tuple_start[rel.index() + 1]
    }

    /// The live tuples of relation `rel`: the builder-time band minus
    /// tombstones, then dynamically inserted tuples in insert order.
    pub fn tuples_of(&self, rel: RelId) -> impl Iterator<Item = TupleId> + '_ {
        self.base_tuples(rel)
            .chain(self.overflow_by_rel[rel.index()].iter().copied())
            .filter(|&raw| self.alive[raw as usize])
            .map(TupleId)
    }

    /// All live global tuple ids, in ascending id order — builder-time
    /// tuples in `R1..Rn` then row order (the scan order of the paper's
    /// `foreach` loops), then dynamic inserts in insertion order.
    pub fn all_tuples(&self) -> impl Iterator<Item = TupleId> + '_ {
        (0..self.tuple_id_bound())
            .filter(|&raw| self.alive[raw as usize])
            .map(TupleId)
    }

    /// The relation a tuple belongs to.
    #[inline]
    pub fn rel_of(&self, t: TupleId) -> RelId {
        let base = self.base_tuple_count();
        if t.0 >= base {
            return self.overflow[(t.0 - base) as usize].0;
        }
        // partition_point returns the count of starts <= t, so the owning
        // relation is one before that.
        let idx = self.tuple_start.partition_point(|&s| s <= t.0) - 1;
        RelId(idx as u16)
    }

    /// The row index of a tuple within its relation.
    #[inline]
    pub fn row_of(&self, t: TupleId) -> usize {
        self.locate(t).1
    }

    /// Splits a tuple id into (relation, row).
    #[inline]
    pub fn locate(&self, t: TupleId) -> (RelId, usize) {
        let base = self.base_tuple_count();
        if t.0 >= base {
            let (rel, row) = self.overflow[(t.0 - base) as usize];
            return (rel, row as usize);
        }
        let rel = self.rel_of(t);
        (rel, (t.0 - self.tuple_start[rel.index()]) as usize)
    }

    /// Appends a tuple to relation `rel`, returning its fresh global id.
    ///
    /// Existing ids are untouched: the new tuple is allocated *above* the
    /// current id space and the relation's row storage grows at the end,
    /// so labels, importance tables and previously computed tuple sets
    /// all stay valid.
    pub fn insert_tuple(&mut self, rel: RelId, values: Vec<Value>) -> Result<TupleId> {
        if rel.index() >= self.relations.len() {
            return Err(RelationalError::UnknownRelation {
                relation: rel.to_string(),
            });
        }
        if self.tuple_id_bound() == u32::MAX {
            return Err(RelationalError::CapacityExceeded { what: "tuples" });
        }
        let id = self.tuple_id_bound();
        let row = self.relations[rel.index()].len() as u32;
        self.relations[rel.index()].push_row(values)?;
        self.overflow.push((rel, row));
        self.overflow_by_rel[rel.index()].push(id);
        self.alive.push(true);
        self.live += 1;
        // Maintain the join-column postings: `id` is above every existing
        // id, so appending keeps each list ascending.
        let r = rel.index();
        for (slot, &(_, col)) in self.indexed_attrs[r].iter().enumerate() {
            let v = &self.relations[r].row(row as usize)[col as usize];
            if !v.is_null() {
                let v = v.clone();
                self.postings[r][slot].entry(v).or_default().push(id);
            }
        }
        Ok(TupleId(id))
    }

    /// Tombstones tuple `t`: it disappears from every scan while its id
    /// (and the ids of all other tuples) keep their meaning. The row data
    /// is retained so historical tuple sets can still be rendered.
    pub fn remove_tuple(&mut self, t: TupleId) -> Result<()> {
        if !self.is_live(t) {
            return Err(RelationalError::NoSuchTuple { id: t.0 });
        }
        self.alive[t.index()] = false;
        self.live -= 1;
        // Drop the tombstoned id from its relation's posting lists so
        // probes never surface dead tuples.
        let (rel, row) = self.locate(t);
        let r = rel.index();
        for (slot, &(_, col)) in self.indexed_attrs[r].iter().enumerate() {
            let v = &self.relations[r].row(row)[col as usize];
            if v.is_null() {
                continue;
            }
            if let Some(list) = self.postings[r][slot].get_mut(v) {
                if let Ok(pos) = list.binary_search(&t.0) {
                    list.remove(pos);
                }
                if list.is_empty() {
                    self.postings[r][slot].remove(v);
                }
            }
        }
        Ok(())
    }

    /// `t[A]`: the value of attribute `attr` in tuple `t`, or `None` when
    /// `attr` is not in `Schema(t)`.
    #[inline]
    pub fn tuple_value(&self, t: TupleId, attr: AttrId) -> Option<&Value> {
        let (rel, row) = self.locate(t);
        self.relations[rel.index()].value(row, attr)
    }

    /// The values of tuple `t` in column order.
    #[inline]
    pub fn tuple_values(&self, t: TupleId) -> &[Value] {
        let (rel, row) = self.locate(t);
        self.relations[rel.index()].row(row)
    }

    /// `Schema(t)`: the schema of the relation tuple `t` belongs to.
    #[inline]
    pub fn tuple_schema(&self, t: TupleId) -> &Schema {
        self.relations[self.rel_of(t).index()].schema()
    }

    /// A short, human-readable label like the paper's `c1`, `a2`, `s3`:
    /// first letter of the relation name (lowercased) plus the 1-based row.
    pub fn tuple_label(&self, t: TupleId) -> String {
        let (rel, row) = self.locate(t);
        let initial = self.relations[rel.index()]
            .name()
            .chars()
            .next()
            .map(|c| c.to_ascii_lowercase())
            .unwrap_or('t');
        format!("{initial}{}", row + 1)
    }

    /// Relations adjacent to `rel` in the relation graph.
    #[inline]
    pub fn neighbors(&self, rel: RelId) -> &[RelId] {
        &self.adjacency[rel.index()]
    }

    /// Attributes shared by two relations' schemas (empty ⇔ not connected).
    #[inline]
    pub fn shared_attrs(&self, a: RelId, b: RelId) -> &[AttrId] {
        &self.shared[a.index() * self.relations.len() + b.index()]
    }

    /// Are two relations connected (do their schemas share an attribute)?
    #[inline]
    pub fn rels_connected(&self, a: RelId, b: RelId) -> bool {
        !self.shared_attrs(a, b).is_empty()
    }

    /// Relations whose schemas contain `attr`.
    #[inline]
    pub fn relations_with_attr(&self, attr: AttrId) -> &[RelId] {
        &self.attr_rels[attr.index()]
    }

    /// The join columns of `rel`: attributes of its schema shared with at
    /// least one other relation (the indexed attributes), ascending.
    pub fn join_columns(&self, rel: RelId) -> impl ExactSizeIterator<Item = AttrId> + '_ {
        self.indexed_attrs[rel.index()].iter().map(|&(a, _)| a)
    }

    /// Candidate tuples of `rel` matching a sorted binding list — the
    /// probe primitive of the paper's maximal-extension loops (Fig. 2
    /// lines 2–6): "the tuples of `rel` that could be join-consistent
    /// with these bindings".
    ///
    /// `bindings` is a `(attribute, value, owner)` list ascending by
    /// attribute — exactly a
    /// `TupleSet::bindings()` slice. Bindings on attributes outside
    /// `rel`'s schema are ignored (they constrain nothing here). When at
    /// least one binding lands on a join column, the posting lists are
    /// intersected and the result is *exact*: every returned tuple is
    /// live and agrees with every applicable binding, in ascending id
    /// order — the same first-match order as
    /// [`tuples_of`](Self::tuples_of). A null binding on a join column
    /// returns no candidates (`⊥` is join-consistent with nothing).
    ///
    /// When no binding applies (an empty binding list, an all-null set,
    /// score-based approximate matching, or block-granular `Pager`
    /// scans), this falls back to the liveness-aware scan, i.e. exactly
    /// `tuples_of(rel)`.
    pub fn probe(&self, rel: RelId, bindings: &[(AttrId, Value, TupleId)]) -> Vec<TupleId> {
        debug_assert!(
            bindings.windows(2).all(|w| w[0].0 < w[1].0),
            "probe bindings must be ascending by attribute"
        );
        self.probe_counters.probes.fetch_add(1, Ordering::Relaxed);
        if self.index_enabled {
            if let Some(ids) = self.probe_indexed(rel, bindings) {
                self.probe_counters.hits.fetch_add(1, Ordering::Relaxed);
                return ids;
            }
        }
        self.tuples_of(rel).collect()
    }

    /// The indexed arm of [`probe`](Self::probe): `None` when no binding
    /// lands on a join column of `rel` (the caller falls back to a scan).
    fn probe_indexed(
        &self,
        rel: RelId,
        bindings: &[(AttrId, Value, TupleId)],
    ) -> Option<Vec<TupleId>> {
        let slots = &self.indexed_attrs[rel.index()];
        let maps = &self.postings[rel.index()];
        let mut lists: Vec<&[u32]> = Vec::new();
        let (mut i, mut j) = (0, 0);
        let mut applicable = false;
        while i < slots.len() && j < bindings.len() {
            match slots[i].0.cmp(&bindings[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    applicable = true;
                    let v = &bindings[j].1;
                    if v.is_null() {
                        // A null binding on a shared attribute conflicts
                        // with every candidate: zero results, decisively.
                        return Some(Vec::new());
                    }
                    match maps[i].get(v) {
                        Some(list) => lists.push(list),
                        None => return Some(Vec::new()),
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        if !applicable {
            return None;
        }
        // Intersect ascending posting lists: walk the smallest, binary-
        // search the rest. Output stays ascending — `tuples_of` order.
        lists.sort_unstable_by_key(|l| l.len());
        let (first, rest) = lists.split_first().expect("applicable ⇒ non-empty");
        let mut out = Vec::with_capacity(first.len());
        'ids: for &id in *first {
            for l in rest {
                if l.binary_search(&id).is_err() {
                    continue 'ids;
                }
            }
            out.push(TupleId(id));
        }
        Some(out)
    }

    /// Total [`probe`](Self::probe) calls since construction (or clone).
    pub fn index_probes(&self) -> u64 {
        self.probe_counters.probes.load(Ordering::Relaxed)
    }

    /// Probes answered from posting lists (the rest fell back to scans).
    pub fn index_hits(&self) -> u64 {
        self.probe_counters.hits.load(Ordering::Relaxed)
    }

    /// Is the indexed probe arm enabled? (Defaults to true.)
    pub fn index_enabled(&self) -> bool {
        self.index_enabled
    }

    /// Enables or disables the indexed probe arm. With the index off,
    /// every probe takes the fallback scan — the A/B lever the scaling
    /// bench uses to price the index against linear scans.
    pub fn set_index_enabled(&mut self, enabled: bool) {
        self.index_enabled = enabled;
    }

    /// Audits every posting list against a from-scratch scan: each
    /// (relation, join column, value) must list exactly the live tuples
    /// holding that value, ascending. Used by recovery verification and
    /// the churn tests; returns a description of the first divergence.
    pub fn verify_indexes(&self) -> std::result::Result<(), String> {
        for rel in &self.relations {
            let r = rel.id().index();
            for (slot, &(attr, col)) in self.indexed_attrs[r].iter().enumerate() {
                let mut expected: FxHashMap<Value, Vec<u32>> = FxHashMap::default();
                for t in self.tuples_of(rel.id()) {
                    let (_, row) = self.locate(t);
                    let v = &rel.row(row)[col as usize];
                    if !v.is_null() {
                        expected.entry(v.clone()).or_default().push(t.0);
                    }
                }
                let actual = &self.postings[r][slot];
                if actual.len() != expected.len() {
                    return Err(format!(
                        "index {}.{}: {} posting keys, scan finds {}",
                        rel.name(),
                        self.attr_names[attr.index()],
                        actual.len(),
                        expected.len()
                    ));
                }
                for (v, ids) in &expected {
                    if actual.get(v).map(Vec::as_slice) != Some(ids.as_slice()) {
                        return Err(format!(
                            "index {}.{}: postings for {v} diverge from scan",
                            rel.name(),
                            self.attr_names[attr.index()],
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Is the whole set of relations connected, in the paper's sense of the
    /// relation graph forming one connected component?
    pub fn is_connected(&self) -> bool {
        let n = self.relations.len();
        if n <= 1 {
            return true;
        }
        self.component_of(RelId(0)).len() == n
    }

    /// The connected component of the relation graph containing `start`.
    pub fn component_of(&self, start: RelId) -> Vec<RelId> {
        let n = self.relations.len();
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        let mut out = Vec::new();
        seen[start.index()] = true;
        while let Some(r) = stack.pop() {
            out.push(r);
            for &nb in self.neighbors(r) {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    stack.push(nb);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Checks whether a *subset* of relations is connected via shared
    /// attributes **within the subset**. Used for tuple-set connectivity:
    /// a tuple set is connected iff the relations of its members are.
    ///
    /// Runs in `O(n²)` like the auxiliary-graph search in Theorem 4.8.
    pub fn subset_connected(&self, rels: &[RelId]) -> bool {
        match rels.len() {
            0 | 1 => true,
            _ => {
                let mut seen = vec![false; rels.len()];
                let mut stack = vec![0usize];
                seen[0] = true;
                let mut count = 1;
                while let Some(i) = stack.pop() {
                    for (j, &rj) in rels.iter().enumerate() {
                        if !seen[j] && self.rels_connected(rels[i], rj) {
                            seen[j] = true;
                            count += 1;
                            stack.push(j);
                        }
                    }
                }
                count == rels.len()
            }
        }
    }

    /// The members of `rels` in the same connected component as `anchor`,
    /// where connectivity only uses edges between members of `rels`
    /// (plus `anchor`). This is the second step of the paper's footnote-3
    /// procedure for computing the maximal subset `T′`.
    pub fn subset_component(&self, rels: &[RelId], anchor: RelId) -> Vec<RelId> {
        let mut all: Vec<RelId> = Vec::with_capacity(rels.len() + 1);
        all.extend_from_slice(rels);
        if !all.contains(&anchor) {
            all.push(anchor);
        }
        let mut seen = vec![false; all.len()];
        let anchor_idx = all
            .iter()
            .position(|&r| r == anchor)
            .expect("anchor present");
        seen[anchor_idx] = true;
        let mut stack = vec![anchor_idx];
        let mut out = vec![anchor];
        while let Some(i) = stack.pop() {
            for (j, &rj) in all.iter().enumerate() {
                if !seen[j] && self.rels_connected(all[i], rj) {
                    seen[j] = true;
                    stack.push(j);
                    out.push(rj);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Fluent builder for [`Database`].
///
/// ```
/// use fd_relational::{DatabaseBuilder, Value};
///
/// let mut b = DatabaseBuilder::new();
/// b.relation("Climates", &["Country", "Climate"])
///     .row(["Canada", "diverse"])
///     .row(["UK", "temperate"]);
/// b.relation("Sites", &["Country", "Site"])
///     .row(["Canada", "Air Show"]);
/// let db = b.build().unwrap();
/// assert_eq!(db.num_relations(), 2);
/// assert_eq!(db.num_tuples(), 3);
/// assert!(db.is_connected());
/// ```
#[derive(Debug, Default)]
pub struct DatabaseBuilder {
    attr_names: Vec<String>,
    attr_ids: HashMap<String, AttrId>,
    relations: Vec<PendingRelation>,
    errors: Vec<RelationalError>,
}

#[derive(Debug)]
struct PendingRelation {
    name: String,
    attrs: Vec<AttrId>,
    rows: Vec<Vec<Value>>,
}

/// Handle for appending rows to a relation under construction.
#[derive(Debug)]
pub struct RelationBuilder<'a> {
    builder: &'a mut DatabaseBuilder,
    rel: usize,
}

impl DatabaseBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.attr_ids.get(name) {
            return id;
        }
        let id = AttrId(self.attr_names.len() as u32);
        self.attr_names.push(name.to_owned());
        self.attr_ids.insert(name.to_owned(), id);
        id
    }

    /// Declares a relation with the given attribute names and returns a
    /// handle for adding its rows. Duplicate attribute or relation names
    /// are reported when [`build`](Self::build) runs.
    pub fn relation(&mut self, name: &str, attrs: &[&str]) -> RelationBuilder<'_> {
        if self.relations.iter().any(|r| r.name == name) {
            self.errors.push(RelationalError::DuplicateRelation {
                relation: name.to_owned(),
            });
        }
        let mut ids = Vec::with_capacity(attrs.len());
        for &a in attrs {
            let id = self.intern(a);
            if ids.contains(&id) {
                self.errors.push(RelationalError::DuplicateAttribute {
                    relation: name.to_owned(),
                    attribute: a.to_owned(),
                });
            }
            ids.push(id);
        }
        self.relations.push(PendingRelation {
            name: name.to_owned(),
            attrs: ids,
            rows: Vec::new(),
        });
        let rel = self.relations.len() - 1;
        RelationBuilder { builder: self, rel }
    }

    /// Finishes construction, computing the relation graph and indexes.
    pub fn build(self) -> Result<Database> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        if self.relations.len() > u16::MAX as usize {
            return Err(RelationalError::CapacityExceeded { what: "relations" });
        }

        let mut relations = Vec::with_capacity(self.relations.len());
        let mut rel_ids = HashMap::new();
        let mut tuple_start = Vec::with_capacity(self.relations.len() + 1);
        let mut next_tuple: u64 = 0;
        for (i, pending) in self.relations.into_iter().enumerate() {
            let id = RelId(i as u16);
            rel_ids.insert(pending.name.clone(), id);
            tuple_start.push(next_tuple as u32);
            next_tuple += pending.rows.len() as u64;
            if next_tuple > u32::MAX as u64 {
                return Err(RelationalError::CapacityExceeded { what: "tuples" });
            }
            let mut rel = Relation::new(pending.name, id, Schema::new(pending.attrs));
            for row in pending.rows {
                rel.push_row(row)?;
            }
            relations.push(rel);
        }
        tuple_start.push(next_tuple as u32);

        let n = relations.len();
        let mut shared = vec![Vec::new(); n * n];
        let mut adjacency = vec![Vec::new(); n];
        for a in 0..n {
            for b in (a + 1)..n {
                let s = relations[a].schema().shared_attrs(relations[b].schema());
                if !s.is_empty() {
                    adjacency[a].push(RelId(b as u16));
                    adjacency[b].push(RelId(a as u16));
                }
                shared[a * n + b] = s.clone();
                shared[b * n + a] = s;
            }
        }

        let mut attr_rels: Vec<Vec<RelId>> = vec![Vec::new(); self.attr_names.len()];
        for rel in &relations {
            for &a in rel.schema().attrs() {
                attr_rels[a.index()].push(rel.id());
            }
        }
        for v in &mut attr_rels {
            v.sort_unstable();
            v.dedup();
        }

        // Join-column indexes: one posting map per (relation, shared
        // attribute). Base rows are dense and ascending, so pushing in
        // row order yields sorted posting lists directly.
        let mut indexed_attrs: Vec<Vec<(AttrId, u16)>> = Vec::with_capacity(n);
        for rel in &relations {
            indexed_attrs.push(
                rel.schema()
                    .columns_by_attr()
                    .iter()
                    .filter(|&&(a, _)| attr_rels[a.index()].len() >= 2)
                    .copied()
                    .collect(),
            );
        }
        let mut postings: Vec<Vec<FxHashMap<Value, Vec<u32>>>> = indexed_attrs
            .iter()
            .map(|slots| vec![FxHashMap::default(); slots.len()])
            .collect();
        for (r, rel) in relations.iter().enumerate() {
            let start = tuple_start[r];
            for (slot, &(_, col)) in indexed_attrs[r].iter().enumerate() {
                for (row, values) in rel.rows().enumerate() {
                    let v = &values[col as usize];
                    if !v.is_null() {
                        postings[r][slot]
                            .entry(v.clone())
                            .or_default()
                            .push(start + row as u32);
                    }
                }
            }
        }

        Ok(Database {
            attr_names: self.attr_names,
            attr_ids: self.attr_ids,
            relations,
            rel_ids,
            alive: vec![true; next_tuple as usize],
            live: next_tuple as usize,
            overflow: Vec::new(),
            overflow_by_rel: vec![Vec::new(); n],
            tuple_start,
            adjacency,
            shared,
            attr_rels,
            indexed_attrs,
            postings,
            index_enabled: true,
            probe_counters: ProbeCounters::default(),
        })
    }
}

impl RelationBuilder<'_> {
    /// Appends a row given anything convertible to [`Value`]s.
    pub fn row<V, I>(&mut self, values: I) -> &mut Self
    where
        V: Into<Value>,
        I: IntoIterator<Item = V>,
    {
        let row: Vec<Value> = values.into_iter().map(Into::into).collect();
        self.builder.relations[self.rel].rows.push(row);
        self
    }

    /// Appends a row of explicit [`Value`]s (convenient when mixing nulls
    /// with typed values).
    pub fn row_values(&mut self, values: Vec<Value>) -> &mut Self {
        self.builder.relations[self.rel].rows.push(values);
        self
    }
}

/// Returns the canonical map `attribute → index` over the union of all
/// schemas, in ascending attribute order. This is the universal schema used
/// for the padded-tuple view of results (Table 2's last columns).
pub fn universal_schema(db: &Database) -> Vec<AttrId> {
    let mut attrs: Vec<AttrId> = db.attrs().collect();
    attrs.retain(|&a| !db.relations_with_attr(a).is_empty());
    attrs
}

/// Maps each attribute to its position in [`universal_schema`].
pub fn universal_positions(db: &Database) -> FxHashMap<AttrId, usize> {
    universal_schema(db)
        .into_iter()
        .enumerate()
        .map(|(i, a)| (a, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::NULL;

    /// Table 1 of the paper.
    pub(crate) fn tourist_db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.relation("Climates", &["Country", "Climate"])
            .row(["Canada", "diverse"])
            .row(["UK", "temperate"])
            .row(["Bahamas", "tropical"]);
        b.relation("Accommodations", &["Country", "City", "Hotel", "Stars"])
            .row_values(vec![
                "Canada".into(),
                "Toronto".into(),
                "Plaza".into(),
                4.into(),
            ])
            .row_values(vec![
                "Canada".into(),
                "London".into(),
                "Ramada".into(),
                3.into(),
            ])
            .row_values(vec![
                "Bahamas".into(),
                "Nassau".into(),
                "Hilton".into(),
                NULL,
            ]);
        b.relation("Sites", &["Country", "City", "Site"])
            .row_values(vec!["Canada".into(), "London".into(), "Air Show".into()])
            .row_values(vec!["Canada".into(), NULL, "Mount Logan".into()])
            .row_values(vec!["UK".into(), "London".into(), "Buckingham".into()])
            .row_values(vec!["UK".into(), "London".into(), "Hyde Park".into()]);
        b.build().unwrap()
    }

    #[test]
    fn tourist_catalog_shape() {
        let db = tourist_db();
        assert_eq!(db.num_relations(), 3);
        assert_eq!(db.num_tuples(), 10);
        assert_eq!(db.num_attrs(), 6); // Country City Climate Hotel Stars Site
        assert!(db.is_connected());
        // s = 3*2 + 3*4 + 4*3 = 30 entries
        assert_eq!(db.total_size(), 30);
    }

    #[test]
    fn tuple_id_mapping_is_dense_and_invertible() {
        let db = tourist_db();
        assert_eq!(
            db.tuples_of(RelId(0)).map(|t| t.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(
            db.tuples_of(RelId(1)).map(|t| t.0).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(
            db.tuples_of(RelId(2)).map(|t| t.0).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        for t in db.all_tuples() {
            let (rel, row) = db.locate(t);
            assert_eq!(db.base_tuples(rel).start + row as u32, t.0);
        }
    }

    #[test]
    fn insert_allocates_above_the_base_id_space() {
        let mut db = tourist_db();
        assert!(!db.has_mutations());
        let t = db
            .insert_tuple(RelId(0), vec!["Chile".into(), "arid".into()])
            .unwrap();
        assert_eq!(t, TupleId(10));
        assert!(db.has_mutations());
        assert_eq!(db.num_tuples(), 11);
        assert_eq!(db.rel_of(t), RelId(0));
        assert_eq!(db.row_of(t), 3);
        assert_eq!(db.tuple_label(t), "c4");
        let country = db.attr_id("Country").unwrap();
        assert_eq!(db.tuple_value(t, country), Some(&Value::str("Chile")));
        // The relation's live scan sees base tuples first, then the insert.
        assert_eq!(
            db.tuples_of(RelId(0)).map(|t| t.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 10]
        );
        // Other relations are untouched.
        assert_eq!(
            db.tuples_of(RelId(1)).map(|t| t.0).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
    }

    #[test]
    fn remove_tombstones_in_place() {
        let mut db = tourist_db();
        db.remove_tuple(TupleId(1)).unwrap();
        assert_eq!(db.num_tuples(), 9);
        assert!(!db.is_live(TupleId(1)));
        assert_eq!(
            db.tuples_of(RelId(0)).map(|t| t.0).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert!(db.all_tuples().all(|t| t != TupleId(1)));
        // Ids and labels of survivors never move.
        assert_eq!(db.tuple_label(TupleId(2)), "c3");
        // Double deletion and unknown ids are rejected.
        assert!(matches!(
            db.remove_tuple(TupleId(1)),
            Err(RelationalError::NoSuchTuple { id: 1 })
        ));
        assert!(db.remove_tuple(TupleId(99)).is_err());
    }

    #[test]
    fn insert_validates_relation_and_arity() {
        let mut db = tourist_db();
        assert!(matches!(
            db.insert_tuple(RelId(9), vec![1.into()]),
            Err(RelationalError::UnknownRelation { .. })
        ));
        assert!(matches!(
            db.insert_tuple(RelId(0), vec![1.into()]),
            Err(RelationalError::ArityMismatch { .. })
        ));
        // A failed insert leaves the database untouched.
        assert_eq!(db.num_tuples(), 10);
        assert!(!db.has_mutations());
    }

    #[test]
    fn insert_after_remove_keeps_ids_stable() {
        let mut db = tourist_db();
        db.remove_tuple(TupleId(4)).unwrap();
        let t = db
            .insert_tuple(
                RelId(1),
                vec!["UK".into(), "London".into(), "Savoy".into(), 5.into()],
            )
            .unwrap();
        assert_eq!(t, TupleId(10));
        assert_eq!(
            db.tuples_of(RelId(1)).map(|t| t.0).collect::<Vec<_>>(),
            vec![3, 5, 10]
        );
        assert_eq!(db.num_tuples(), 10);
        // The tombstoned row's data is retained for rendering history.
        let hotel = db.attr_id("Hotel").unwrap();
        assert_eq!(
            db.tuple_value(TupleId(4), hotel),
            Some(&Value::str("Ramada"))
        );
    }

    #[test]
    fn tuple_labels_match_paper() {
        let db = tourist_db();
        assert_eq!(db.tuple_label(TupleId(0)), "c1");
        assert_eq!(db.tuple_label(TupleId(4)), "a2");
        assert_eq!(db.tuple_label(TupleId(7)), "s2");
    }

    #[test]
    fn tuple_value_access() {
        let db = tourist_db();
        let country = db.attr_id("Country").unwrap();
        let stars = db.attr_id("Stars").unwrap();
        assert_eq!(
            db.tuple_value(TupleId(0), country),
            Some(&Value::str("Canada"))
        );
        assert_eq!(db.tuple_value(TupleId(5), stars), Some(&NULL)); // Hilton's missing rating
        assert_eq!(db.tuple_value(TupleId(0), stars), None); // Climates has no Stars
    }

    #[test]
    fn relation_graph_edges() {
        let db = tourist_db();
        let (c, a, s) = (RelId(0), RelId(1), RelId(2));
        assert!(db.rels_connected(c, a)); // share Country
        assert!(db.rels_connected(a, s)); // share Country, City
        assert_eq!(db.shared_attrs(a, s).len(), 2);
        assert_eq!(db.neighbors(c), &[a, s]);
    }

    #[test]
    fn subset_connectivity() {
        let mut b = DatabaseBuilder::new();
        b.relation("A", &["x"]).row([1]);
        b.relation("B", &["x", "y"]).row([1, 2]);
        b.relation("C", &["y"]).row([2]);
        b.relation("D", &["z"]).row([3]);
        let db = b.build().unwrap();
        assert!(!db.is_connected());
        assert!(db.subset_connected(&[RelId(0), RelId(1), RelId(2)]));
        assert!(!db.subset_connected(&[RelId(0), RelId(2)])); // A–C only via B
        assert!(!db.subset_connected(&[RelId(0), RelId(3)]));
        assert_eq!(db.component_of(RelId(3)), vec![RelId(3)]);
        assert_eq!(
            db.component_of(RelId(0)),
            vec![RelId(0), RelId(1), RelId(2)]
        );
    }

    #[test]
    fn subset_component_anchored() {
        let mut b = DatabaseBuilder::new();
        b.relation("A", &["x"]).row([1]);
        b.relation("B", &["x", "y"]).row([1, 2]);
        b.relation("C", &["y"]).row([2]);
        b.relation("D", &["z"]).row([3]);
        let db = b.build().unwrap();
        // Among {A, C, D} anchored at A: only A (C not directly connected).
        assert_eq!(
            db.subset_component(&[RelId(0), RelId(2), RelId(3)], RelId(0)),
            vec![RelId(0)]
        );
        // Among {A, B, C} anchored at C: all three.
        assert_eq!(
            db.subset_component(&[RelId(0), RelId(1), RelId(2)], RelId(2)),
            vec![RelId(0), RelId(1), RelId(2)]
        );
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = DatabaseBuilder::new();
        b.relation("A", &["x", "x"]);
        assert!(matches!(
            b.build(),
            Err(RelationalError::DuplicateAttribute { .. })
        ));

        let mut b = DatabaseBuilder::new();
        b.relation("A", &["x"]);
        b.relation("A", &["y"]);
        assert!(matches!(
            b.build(),
            Err(RelationalError::DuplicateRelation { .. })
        ));
    }

    #[test]
    fn join_columns_are_the_shared_attrs() {
        let db = tourist_db();
        let country = db.attr_id("Country").unwrap();
        let city = db.attr_id("City").unwrap();
        // Climates: only Country is shared; Climate is private.
        assert_eq!(db.join_columns(RelId(0)).collect::<Vec<_>>(), vec![country]);
        // Accommodations shares Country and City, not Hotel/Stars.
        let mut acc: Vec<AttrId> = db.join_columns(RelId(1)).collect();
        acc.sort_unstable();
        let mut want = vec![country, city];
        want.sort_unstable();
        assert_eq!(acc, want);
    }

    #[test]
    fn probe_matches_the_scan_it_replaces() {
        let db = tourist_db();
        let country = db.attr_id("Country").unwrap();
        let canada = (country, Value::str("Canada"), TupleId(0));
        // Sites tuples bound to Country=Canada: s1 (t6), s2 (t7).
        assert_eq!(
            db.probe(RelId(2), std::slice::from_ref(&canada)),
            vec![TupleId(6), TupleId(7)]
        );
        // An unbound probe falls back to the full live scan.
        assert_eq!(
            db.probe(RelId(2), &[]),
            db.tuples_of(RelId(2)).collect::<Vec<_>>()
        );
        // A null binding on a shared attribute joins nothing.
        assert_eq!(
            db.probe(RelId(2), &[(country, Value::Null, TupleId(0))]),
            Vec::<TupleId>::new()
        );
        // One probe hit the index (fallback + null-binding also count
        // as probes; only index-answered ones are hits).
        assert_eq!(db.index_probes(), 3);
        assert_eq!(db.index_hits(), 2);
    }

    #[test]
    fn probe_multi_attr_intersection() {
        let db = tourist_db();
        let country = db.attr_id("Country").unwrap();
        let city = db.attr_id("City").unwrap();
        let mut bindings = vec![
            (country, Value::str("Canada"), TupleId(0)),
            (city, Value::str("London"), TupleId(0)),
        ];
        bindings.sort_by_key(|b| b.0);
        // Sites with Country=Canada ∧ City=London: only s1 (t6).
        assert_eq!(db.probe(RelId(2), &bindings), vec![TupleId(6)]);
    }

    #[test]
    fn indexes_track_inserts_and_tombstones() {
        let mut db = tourist_db();
        let country = db.attr_id("Country").unwrap();
        let canada = (country, Value::str("Canada"), TupleId(0));
        let t = db
            .insert_tuple(RelId(0), vec!["Canada".into(), "arctic".into()])
            .unwrap();
        assert_eq!(
            db.probe(RelId(0), std::slice::from_ref(&canada)),
            vec![TupleId(0), t]
        );
        db.remove_tuple(TupleId(0)).unwrap();
        assert_eq!(db.probe(RelId(0), std::slice::from_ref(&canada)), vec![t]);
        db.remove_tuple(t).unwrap();
        assert_eq!(
            db.probe(RelId(0), std::slice::from_ref(&canada)),
            Vec::<TupleId>::new()
        );
        db.verify_indexes().unwrap();
    }

    #[test]
    fn disabling_the_index_forces_the_scan_path() {
        let mut db = tourist_db();
        db.set_index_enabled(false);
        assert!(!db.index_enabled());
        let country = db.attr_id("Country").unwrap();
        let uk = (country, Value::str("UK"), TupleId(1));
        // Scan fallback over-approximates (every live tuple of the
        // relation); the caller's JCC check filters, so enumeration
        // stays correct — just slower.
        assert_eq!(
            db.probe(RelId(2), std::slice::from_ref(&uk)),
            db.tuples_of(RelId(2)).collect::<Vec<_>>()
        );
        assert_eq!(db.index_hits(), 0);
        assert_eq!(db.index_probes(), 1);
    }

    #[test]
    fn verify_indexes_accepts_a_fresh_build() {
        tourist_db().verify_indexes().unwrap();
    }

    #[test]
    fn universal_schema_covers_all_attrs() {
        let db = tourist_db();
        let uni = universal_schema(&db);
        assert_eq!(uni.len(), 6);
        let pos = universal_positions(&db);
        assert_eq!(pos.len(), 6);
        for (i, a) in uni.iter().enumerate() {
            assert_eq!(pos[a], i);
        }
    }
}
