//! Hypergraph acyclicity tests for database schemas.
//!
//! Rajaraman–Ullman (1996) showed that full disjunctions can be computed by
//! a sequence of binary outerjoins **exactly** for γ-acyclic schemas — the
//! restriction the paper's algorithm removes. The baseline crate gates the
//! outerjoin algorithm on the γ-acyclicity test implemented here. The
//! classical GYO test for α-acyclicity is included as well: α-acyclicity is
//! strictly weaker (γ-acyclic ⊆ β-acyclic ⊆ α-acyclic), and the contrast
//! features in tests and documentation.

use crate::database::Database;
use crate::ids::{AttrId, RelId};

/// A schema hypergraph: one hyperedge (attribute set) per relation.
#[derive(Debug, Clone)]
pub struct Hypergraph {
    /// Sorted attribute sets; parallel to the originating relation list
    /// when built from a database.
    pub edges: Vec<Vec<AttrId>>,
}

impl Hypergraph {
    /// The schema hypergraph of a database.
    pub fn of_database(db: &Database) -> Self {
        let edges = db
            .relations()
            .iter()
            .map(|r| {
                r.schema()
                    .columns_by_attr()
                    .iter()
                    .map(|&(a, _)| a)
                    .collect()
            })
            .collect();
        Hypergraph { edges }
    }

    /// Builds from raw attribute sets (deduplicated and sorted).
    pub fn new(mut edges: Vec<Vec<AttrId>>) -> Self {
        for e in &mut edges {
            e.sort_unstable();
            e.dedup();
        }
        Hypergraph { edges }
    }

    /// All vertices, ascending.
    pub fn vertices(&self) -> Vec<AttrId> {
        let mut v: Vec<AttrId> = self.edges.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// GYO reduction: is the hypergraph **α-acyclic**?
    ///
    /// Repeatedly (1) delete vertices occurring in exactly one edge ("ear
    /// tips") and (2) delete edges contained in other edges; α-acyclic iff
    /// everything vanishes.
    pub fn is_alpha_acyclic(&self) -> bool {
        let mut edges: Vec<Vec<AttrId>> = self.edges.clone();
        loop {
            let mut changed = false;

            // (1) Remove vertices that occur in at most one edge.
            let mut counts = std::collections::BTreeMap::new();
            for e in &edges {
                for &v in e {
                    *counts.entry(v).or_insert(0usize) += 1;
                }
            }
            for e in &mut edges {
                let before = e.len();
                e.retain(|v| counts[v] > 1);
                changed |= e.len() != before;
            }

            // (2) Remove empty edges and edges contained in another edge.
            let before = edges.len();
            edges.sort_by_key(|e| e.len());
            let mut kept: Vec<Vec<AttrId>> = Vec::with_capacity(edges.len());
            for e in edges.drain(..) {
                // An edge survives only if no other (kept or pending) edge
                // contains it; since we process by ascending size, compare
                // against all others via a fresh containment check below.
                kept.push(e);
            }
            let mut remove = vec![false; kept.len()];
            for i in 0..kept.len() {
                if kept[i].is_empty() {
                    remove[i] = true;
                    continue;
                }
                for j in 0..kept.len() {
                    if i != j
                        && !remove[j]
                        && is_subset(&kept[i], &kept[j])
                        && (kept[i].len() < kept[j].len() || i > j)
                    {
                        remove[i] = true;
                        break;
                    }
                }
            }
            let mut it = remove.iter();
            kept.retain(|_| !*it.next().expect("flag per edge"));
            edges = kept;
            changed |= edges.len() != before;

            if edges.is_empty() {
                return true;
            }
            if !changed {
                return false;
            }
        }
    }

    /// D'Atri–Moscarini reduction: is the hypergraph **γ-acyclic**?
    ///
    /// Repeatedly apply, until fixpoint:
    /// 1. delete a vertex that belongs to at most one edge;
    /// 2. delete an edge that contains at most one vertex;
    /// 3. merge two vertices that belong to exactly the same edges;
    /// 4. merge two edges that contain exactly the same vertices.
    ///
    /// γ-acyclic iff the hypergraph reduces to nothing.
    pub fn is_gamma_acyclic(&self) -> bool {
        // Represent as incidence sets both ways.
        let verts = self.vertices();
        let vid: std::collections::BTreeMap<AttrId, usize> =
            verts.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        // edge -> vertex ids
        let mut e2v: Vec<Vec<usize>> = self
            .edges
            .iter()
            .map(|e| e.iter().map(|v| vid[v]).collect())
            .collect();
        let mut alive_e: Vec<bool> = vec![true; e2v.len()];
        let mut alive_v: Vec<bool> = vec![true; verts.len()];

        loop {
            let mut changed = false;

            // vertex -> edges incidence (alive only).
            let mut v2e: Vec<Vec<usize>> = vec![Vec::new(); verts.len()];
            for (ei, e) in e2v.iter().enumerate() {
                if alive_e[ei] {
                    for &v in e {
                        if alive_v[v] {
                            v2e[v].push(ei);
                        }
                    }
                }
            }

            // Rule 1: vertex in at most one edge.
            for v in 0..verts.len() {
                if alive_v[v] && v2e[v].len() <= 1 {
                    alive_v[v] = false;
                    changed = true;
                }
            }

            // Rule 3: equivalent vertices (same incident edge set).
            let mut sig: Vec<(Vec<usize>, usize)> = (0..verts.len())
                .filter(|&v| alive_v[v] && !v2e[v].is_empty())
                .map(|v| (v2e[v].clone(), v))
                .collect();
            sig.sort();
            for w in sig.windows(2) {
                if w[0].0 == w[1].0 && alive_v[w[1].1] && alive_v[w[0].1] {
                    alive_v[w[1].1] = false;
                    changed = true;
                }
            }

            // Recompute edge contents over alive vertices.
            let contents: Vec<Vec<usize>> = e2v
                .iter()
                .enumerate()
                .map(|(ei, e)| {
                    if alive_e[ei] {
                        let mut c: Vec<usize> = e.iter().copied().filter(|&v| alive_v[v]).collect();
                        c.sort_unstable();
                        c
                    } else {
                        Vec::new()
                    }
                })
                .collect();

            // Rule 2: edge with at most one vertex.
            for ei in 0..e2v.len() {
                if alive_e[ei] && contents[ei].len() <= 1 {
                    alive_e[ei] = false;
                    changed = true;
                }
            }

            // Rule 4: duplicate edges.
            let mut esig: Vec<(Vec<usize>, usize)> = (0..e2v.len())
                .filter(|&ei| alive_e[ei])
                .map(|ei| (contents[ei].clone(), ei))
                .collect();
            esig.sort();
            for w in esig.windows(2) {
                if w[0].0 == w[1].0 && alive_e[w[1].1] && alive_e[w[0].1] {
                    alive_e[w[1].1] = false;
                    changed = true;
                }
            }

            // Keep pruned contents for the next round.
            for (ei, c) in contents.into_iter().enumerate() {
                if alive_e[ei] {
                    e2v[ei] = c;
                }
            }

            let done = !alive_e.iter().any(|&a| a) && !alive_v.iter().any(|&a| a);
            if done {
                return true;
            }
            if !changed {
                return false;
            }
        }
    }
}

fn is_subset(a: &[AttrId], b: &[AttrId]) -> bool {
    let mut j = 0;
    for &x in a {
        loop {
            if j >= b.len() {
                return false;
            }
            match b[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    break;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

/// A join tree for an α-acyclic schema: one node per relation, edges
/// labeled with the shared attributes, satisfying the *running
/// intersection property* — for any two relations, their common
/// attributes appear on every edge of the tree path between them.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// `(child, parent, shared attributes)` per non-root relation; the
    /// root has no entry. Indices are relation indices.
    pub edges: Vec<(usize, usize, Vec<AttrId>)>,
    /// The root relation index.
    pub root: usize,
}

impl JoinTree {
    /// A bottom-up traversal order (leaves before parents), ending at the
    /// root — the order semijoin/outerjoin programs process acyclic
    /// schemas in.
    pub fn bottom_up(&self) -> Vec<usize> {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.edges.len() + 1];
        for &(c, p, _) in &self.edges {
            children.resize(children.len().max(c.max(p) + 1), Vec::new());
            children[p].push(c);
        }
        let mut order = Vec::new();
        let mut stack = vec![(self.root, false)];
        while let Some((node, visited)) = stack.pop() {
            if visited {
                order.push(node);
            } else {
                stack.push((node, true));
                for &c in children.get(node).map(Vec::as_slice).unwrap_or(&[]) {
                    stack.push((c, false));
                }
            }
        }
        order
    }
}

/// Builds a join tree for an α-acyclic database via GYO ear decomposition:
/// repeatedly find an *ear* — a relation whose attributes are covered by
/// a single other relation once exclusive attributes are ignored — attach
/// it to its witness, and remove it. Returns `None` when the schema is
/// not α-acyclic (no ear exists before all relations are consumed).
pub fn join_tree(db: &Database) -> Option<JoinTree> {
    let n = db.num_relations();
    if n == 0 {
        return None;
    }
    let mut alive: Vec<bool> = vec![true; n];
    let mut attr_sets: Vec<Vec<AttrId>> = db
        .relations()
        .iter()
        .map(|r| {
            r.schema()
                .columns_by_attr()
                .iter()
                .map(|&(a, _)| a)
                .collect()
        })
        .collect();
    let mut edges = Vec::new();
    let mut remaining = n;
    while remaining > 1 {
        // Find an ear: attrs(e) ∩ attrs(others) ⊆ attrs(w) for some w.
        let mut found = None;
        'ears: for e in 0..n {
            if !alive[e] {
                continue;
            }
            // Attributes of e shared with any other alive relation.
            let shared: Vec<AttrId> = attr_sets[e]
                .iter()
                .copied()
                .filter(|&a| (0..n).any(|o| o != e && alive[o] && attr_sets[o].contains(&a)))
                .collect();
            for w in 0..n {
                if w != e && alive[w] && shared.iter().all(|a| attr_sets[w].contains(a)) {
                    found = Some((e, w, shared));
                    break 'ears;
                }
            }
        }
        let (ear, witness, shared) = found?;
        edges.push((ear, witness, shared));
        alive[ear] = false;
        attr_sets[ear].clear();
        remaining -= 1;
    }
    let root = (0..n).find(|&i| alive[i]).expect("one relation remains");
    Some(JoinTree { edges, root })
}

/// A *connected ordering* of a database's relations: every prefix of the
/// returned permutation is connected in the relation graph. Returns `None`
/// when the database is not connected. Used to sequence the outerjoin
/// baseline.
pub fn connected_ordering(db: &Database) -> Option<Vec<RelId>> {
    let n = db.num_relations();
    if n == 0 {
        return Some(Vec::new());
    }
    let mut order = vec![RelId(0)];
    let mut used = vec![false; n];
    used[0] = true;
    while order.len() < n {
        let next = (0..n).map(|i| RelId(i as u16)).find(|&cand| {
            !used[cand.index()] && order.iter().any(|&o| db.rels_connected(o, cand))
        })?;
        used[next.index()] = true;
        order.push(next);
    }
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;

    fn hg(edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::new(
            edges
                .iter()
                .map(|e| e.iter().map(|&v| AttrId(v)).collect())
                .collect(),
        )
    }

    #[test]
    fn chain_is_gamma_acyclic() {
        // AB - BC - CD: Berge-acyclic, hence γ-acyclic.
        let h = hg(&[&[0, 1], &[1, 2], &[2, 3]]);
        assert!(h.is_gamma_acyclic());
        assert!(h.is_alpha_acyclic());
    }

    #[test]
    fn star_is_gamma_acyclic() {
        let h = hg(&[&[0, 1], &[0, 2], &[0, 3]]);
        assert!(h.is_gamma_acyclic());
        assert!(h.is_alpha_acyclic());
    }

    #[test]
    fn triangle_is_fully_cyclic() {
        let h = hg(&[&[0, 1], &[1, 2], &[2, 0]]);
        assert!(!h.is_gamma_acyclic());
        assert!(!h.is_alpha_acyclic());
    }

    #[test]
    fn covered_triangle_is_alpha_but_not_gamma_acyclic() {
        // {AB, BC, ABC}: Fagin's classic separator of the hierarchy —
        // α-acyclic (ABC is an ear cover) yet γ-cyclic (its Bachman
        // diagram has the 4-cycle ABC–AB–B–BC).
        let h = hg(&[&[0, 1], &[1, 2], &[0, 1, 2]]);
        assert!(h.is_alpha_acyclic());
        assert!(!h.is_gamma_acyclic());
    }

    #[test]
    fn nested_edge_is_gamma_acyclic() {
        // {AB, ABC}: Bachman diagram is the single edge ABC–AB.
        let h = hg(&[&[0, 1], &[0, 1, 2]]);
        assert!(h.is_gamma_acyclic());
    }

    #[test]
    fn four_cycle_is_gamma_cyclic() {
        let h = hg(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        assert!(!h.is_gamma_acyclic());
        assert!(!h.is_alpha_acyclic());
    }

    #[test]
    fn single_edge_and_empty_are_acyclic() {
        assert!(hg(&[&[0, 1, 2]]).is_gamma_acyclic());
        assert!(hg(&[]).is_gamma_acyclic());
        assert!(hg(&[&[0, 1, 2]]).is_alpha_acyclic());
        assert!(hg(&[]).is_alpha_acyclic());
    }

    #[test]
    fn tourist_schema_is_gamma_acyclic() {
        // {Country,Climate}, {Country,City,Hotel,Stars}, {Country,City,Site}
        // Sites ⊆-related to Accommodations via {Country, City}: check γ.
        let db = {
            let mut b = DatabaseBuilder::new();
            b.relation("Climates", &["Country", "Climate"]);
            b.relation("Accommodations", &["Country", "City", "Hotel", "Stars"]);
            b.relation("Sites", &["Country", "City", "Site"]);
            b.build().unwrap()
        };
        let h = Hypergraph::of_database(&db);
        assert!(h.is_gamma_acyclic());
    }

    #[test]
    fn connected_ordering_covers_connected_databases() {
        let mut b = DatabaseBuilder::new();
        b.relation("A", &["x"]);
        b.relation("C", &["y"]); // only reachable via B
        b.relation("B", &["x", "y"]);
        let db = b.build().unwrap();
        let order = connected_ordering(&db).unwrap();
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], RelId(0));
        // Every prefix connected: B must precede C.
        let pos = |r: RelId| order.iter().position(|&o| o == r).unwrap();
        assert!(pos(RelId(2)) < pos(RelId(1)));
    }

    #[test]
    fn connected_ordering_fails_on_disconnected_databases() {
        let mut b = DatabaseBuilder::new();
        b.relation("A", &["x"]);
        b.relation("B", &["y"]);
        let db = b.build().unwrap();
        assert!(connected_ordering(&db).is_none());
    }

    fn chain_db() -> crate::Database {
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A", "B"]);
        b.relation("S", &["B", "C"]);
        b.relation("T", &["C", "D"]);
        b.build().unwrap()
    }

    #[test]
    fn join_tree_of_chain_has_running_intersection() {
        let db = chain_db();
        let jt = join_tree(&db).expect("chain is α-acyclic");
        assert_eq!(jt.edges.len(), 2);
        // Every edge label is exactly the shared attributes of its pair.
        for &(c, p, ref shared) in &jt.edges {
            let expect = db
                .relation(crate::RelId(c as u16))
                .schema()
                .shared_attrs(db.relation(crate::RelId(p as u16)).schema());
            assert_eq!(shared, &expect, "edge {c}->{p}");
        }
        // Bottom-up order ends at the root and covers everything.
        let order = jt.bottom_up();
        assert_eq!(order.len(), 3);
        assert_eq!(*order.last().unwrap(), jt.root);
    }

    #[test]
    fn join_tree_refuses_cyclic_schemas() {
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A", "B"]);
        b.relation("S", &["B", "C"]);
        b.relation("U", &["C", "A"]);
        let db = b.build().unwrap();
        assert!(join_tree(&db).is_none());
    }

    #[test]
    fn join_tree_accepts_alpha_acyclic_gamma_cyclic_schemas() {
        // {AB, BC, ABC}: α-acyclic (join tree exists) though γ-cyclic.
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A", "B"]);
        b.relation("S", &["B", "C"]);
        b.relation("U", &["A", "B", "C"]);
        let db = b.build().unwrap();
        let jt = join_tree(&db).expect("α-acyclic");
        assert_eq!(jt.edges.len(), 2);
        assert!(!Hypergraph::of_database(&db).is_gamma_acyclic());
    }

    #[test]
    fn join_tree_of_single_relation_is_trivial() {
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A"]);
        let db = b.build().unwrap();
        let jt = join_tree(&db).unwrap();
        assert!(jt.edges.is_empty());
        assert_eq!(jt.root, 0);
        assert_eq!(jt.bottom_up(), vec![0]);
    }
}
