//! # fd-relational
//!
//! The in-memory relational substrate underneath the full-disjunction
//! algorithms of Cohen & Sagiv (PODS 2005 / JCSS 2007):
//!
//! * [`Value`] — atomic values with the null `⊥` and the paper's
//!   join-consistency semantics (shared attributes must be equal **and**
//!   non-null); strings are interned ([`interner`]) so the check is a
//!   word-sized symbol comparison;
//! * [`Database`] / [`DatabaseBuilder`] — interned catalogs with a global
//!   tuple id space and the relation connectivity graph;
//! * [`join`] / [`outerjoin`] — null-aware natural joins, binary full
//!   outerjoins, and subsumption removal (the Rajaraman–Ullman baseline's
//!   operators);
//! * [`hypergraph`] — α- (GYO) and γ- (D'Atri–Moscarini) acyclicity tests
//!   gating the outerjoin baseline;
//! * [`storage`] — simulated paged access with I/O accounting for the
//!   paper's Section 7 block-based execution;
//! * [`textio`] — a tiny textual table format for examples and docs;
//! * [`lockcheck`] — named `Mutex`/`RwLock` wrappers that detect
//!   lock-order inversions at runtime (on under `debug_assertions` or
//!   the `lockcheck` feature; transparent in release);
//! * [`changelog`] — [`Delta`]/[`Change`]/[`ChangeLog`]: the mutation
//!   vocabulary of the dynamic-maintenance layer
//!   ([`Database::insert_tuple`] / [`Database::remove_tuple`]).
//!
//! The crate is dependency-free; schemas are immutable after build (so
//! algorithm crates can share `&Database` across threads) while the data
//! layer accepts tombstone-based inserts and deletes with stable ids.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod database;
mod error;
mod ids;
mod relation;
mod schema;
mod value;

pub mod changelog;
pub mod fxhash;
pub mod hypergraph;
pub mod interner;
pub mod join;
pub mod lockcheck;
pub mod outerjoin;
pub mod stats;
pub mod storage;
pub mod textio;

pub use changelog::{
    apply_batch, apply_delta, validate_batch, Change, ChangeLog, Delta, DeltaBatch,
};
pub use database::{
    universal_positions, universal_schema, Database, DatabaseBuilder, RelationBuilder,
};
pub use error::{RelationalError, Result};
pub use ids::{AttrId, RelId, TupleId};
pub use interner::IStr;
pub use relation::Relation;
pub use schema::Schema;
pub use value::{Value, NULL};

/// Builds the paper's running example: Table 1 (Climates, Accommodations,
/// Sites), including its null values. Exposed here because nearly every
/// test, example and benchmark anchors on it.
pub fn tourist_database() -> Database {
    let mut b = DatabaseBuilder::new();
    b.relation("Climates", &["Country", "Climate"])
        .row(["Canada", "diverse"])
        .row(["UK", "temperate"])
        .row(["Bahamas", "tropical"]);
    b.relation("Accommodations", &["Country", "City", "Hotel", "Stars"])
        .row_values(vec![
            "Canada".into(),
            "Toronto".into(),
            "Plaza".into(),
            4.into(),
        ])
        .row_values(vec![
            "Canada".into(),
            "London".into(),
            "Ramada".into(),
            3.into(),
        ])
        .row_values(vec![
            "Bahamas".into(),
            "Nassau".into(),
            "Hilton".into(),
            NULL,
        ]);
    b.relation("Sites", &["Country", "City", "Site"])
        .row_values(vec!["Canada".into(), "London".into(), "Air Show".into()])
        .row_values(vec!["Canada".into(), NULL, "Mount Logan".into()])
        .row_values(vec!["UK".into(), "London".into(), "Buckingham".into()])
        .row_values(vec!["UK".into(), "London".into(), "Hyde Park".into()]);
    b.build().expect("tourist database is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tourist_database_matches_table_1() {
        let db = tourist_database();
        assert_eq!(db.num_relations(), 3);
        assert_eq!(db.num_tuples(), 10);
        assert_eq!(db.tuple_label(TupleId(5)), "a3");
        let stars = db.attr_id("Stars").unwrap();
        assert!(db.tuple_value(TupleId(5), stars).unwrap().is_null());
    }
}
