//! A small FxHash-style hasher for integer-keyed maps on hot paths.
//!
//! The default SipHash is collision-resistant but slow for short integer
//! keys (Rust perf-book, "Hashing"). The algorithm below is the well-known
//! Firefox/rustc "Fx" multiply-rotate mix, reimplemented locally so the
//! workspace does not need an extra dependency. Use it only for keys an
//! adversary cannot choose (tuple ids, interned attribute ids).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher. Not HashDoS-resistant; internal use only.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently_in_practice() {
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // A weak hash would collapse many keys; Fx should keep them distinct.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn byte_stream_hashing_covers_remainders() {
        let mut h1 = FxHasher::default();
        h1.write(b"abcdefghi"); // 8-byte chunk + 1 remainder byte
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefgh");
        h2.write(b"i");
        // Not required to be equal (different chunking), just both defined.
        let _ = (h1.finish(), h2.finish());
    }
}
