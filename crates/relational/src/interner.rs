//! Process-wide string interning for [`Value::Str`](crate::Value).
//!
//! Join consistency (`t1[A] = t2[A] ≠ ⊥`) is evaluated millions of times
//! in the paper's inner loops, and before this module every string
//! comparison was a byte-wise `Arc<str>` walk. Interning maps each
//! distinct string to a dense `u32` *symbol* exactly once, so equality
//! and hashing of [`IStr`] are single word-sized integer operations.
//!
//! The interner is **process-global** (a lazily initialized, append-only
//! table behind an `RwLock`) rather than per-`Database` on purpose:
//! `Value`s constructed outside any database — literals in tests, wire
//! input being parsed, rows in a [`DeltaBatch`](crate::DeltaBatch) not
//! yet applied — must compare equal to the same strings stored inside a
//! database, which a per-database symbol space cannot guarantee. Symbols
//! are never freed; the catalog only grows, which keeps `IStr` handles
//! valid for the life of the process and makes the table safe to share
//! across threads.
//!
//! Each [`IStr`] carries both its symbol and an `Arc` of its text, so
//! resolving a symbol for display never takes the lock.

use crate::fxhash::FxHashMap;
use crate::lockcheck::{TrackedReadGuard, TrackedRwLock, TrackedWriteGuard};
use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, OnceLock, PoisonError};

/// An interned string: a dense symbol plus a shared copy of the text.
///
/// Equality and hashing use only the symbol (word-sized); ordering
/// falls back to lexicographic comparison of the text so `Value`'s
/// total order is unchanged by interning.
#[derive(Clone)]
pub struct IStr {
    sym: u32,
    text: Arc<str>,
}

impl IStr {
    /// The dense symbol the global interner assigned to this text.
    #[inline]
    pub fn sym(&self) -> u32 {
        self.sym
    }

    /// The interned text.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The shared text allocation (cheap to clone).
    #[inline]
    pub fn arc(&self) -> &Arc<str> {
        &self.text
    }
}

impl PartialEq for IStr {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // One global symbol space: equal symbols ⇔ equal text.
        self.sym == other.sym
    }
}

impl Eq for IStr {}

impl Hash for IStr {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u32(self.sym);
    }
}

impl Ord for IStr {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        if self.sym == other.sym {
            Ordering::Equal
        } else {
            self.text.cmp(&other.text)
        }
    }
}

impl PartialOrd for IStr {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Deref for IStr {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        &self.text
    }
}

impl AsRef<str> for IStr {
    #[inline]
    fn as_ref(&self) -> &str {
        &self.text
    }
}

impl Borrow<str> for IStr {
    #[inline]
    fn borrow(&self) -> &str {
        &self.text
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.text, f)
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// The append-only symbol table.
#[derive(Default)]
struct Table {
    by_text: FxHashMap<Arc<str>, u32>,
    catalog: Vec<Arc<str>>,
}

/// The name under which the table participates in lock-order detection
/// (see `LOCK_ORDER.md` at the repo root: the interner ranks *below*
/// the serve session lock — commit paths intern under the session).
const LOCK_NAME: &str = "relational.interner";

fn table() -> &'static TrackedRwLock<Table> {
    static TABLE: OnceLock<TrackedRwLock<Table>> = OnceLock::new();
    TABLE.get_or_init(|| TrackedRwLock::new(LOCK_NAME, Table::default()))
}

/// Shared access to the table. Poisoning is recovered rather than
/// propagated: the two-step append in [`intern`] has no unwind point
/// between its writes (plain `Vec`/map pushes), so a poisoned table is
/// still internally consistent and read-only users must not panic over
/// a writer's unrelated death.
fn read_table() -> TrackedReadGuard<'static, Table> {
    table().read().unwrap_or_else(PoisonError::into_inner)
}

/// Exclusive access to the table, with the same poison recovery.
fn write_table() -> TrackedWriteGuard<'static, Table> {
    table().write().unwrap_or_else(PoisonError::into_inner)
}

/// Interns `text`, returning its [`IStr`]. The same text always yields
/// the same symbol for the life of the process.
pub fn intern(text: &str) -> IStr {
    {
        let t = read_table();
        if let Some(&sym) = t.by_text.get(text) {
            return IStr {
                sym,
                text: Arc::clone(&t.catalog[sym as usize]),
            };
        }
    }
    let mut t = write_table();
    // Double-check: another thread may have interned between the locks.
    if let Some(&sym) = t.by_text.get(text) {
        return IStr {
            sym,
            text: Arc::clone(&t.catalog[sym as usize]),
        };
    }
    let sym = t.catalog.len() as u32;
    let arc: Arc<str> = Arc::from(text);
    t.catalog.push(Arc::clone(&arc));
    t.by_text.insert(Arc::clone(&arc), sym);
    IStr { sym, text: arc }
}

/// Resolves a symbol back to its interned string, or `None` if the
/// symbol was never allocated.
pub fn resolve(sym: u32) -> Option<IStr> {
    let t = read_table();
    t.catalog.get(sym as usize).map(|text| IStr {
        sym,
        text: Arc::clone(text),
    })
}

/// Number of distinct symbols interned so far (process-wide).
pub fn symbol_count() -> usize {
    read_table().catalog.len()
}

/// A point-in-time copy of the whole catalog, ascending by symbol id.
/// Snapshot encoding persists this so a fresh process re-interns the
/// same texts to the same symbols before replaying any data rows.
pub fn catalog() -> Vec<IStr> {
    let t = read_table();
    t.catalog
        .iter()
        .enumerate()
        .map(|(i, text)| IStr {
            sym: i as u32,
            text: Arc::clone(text),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_text_same_symbol() {
        let a = intern("interner-test-alpha");
        let b = intern("interner-test-alpha");
        assert_eq!(a.sym(), b.sym());
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "interner-test-alpha");
    }

    #[test]
    fn distinct_text_distinct_symbols_and_lexicographic_order() {
        let a = intern("interner-test-aa");
        let b = intern("interner-test-bb");
        assert_ne!(a.sym(), b.sym());
        assert_ne!(a, b);
        assert!(a < b);
        assert!(b > a);
    }

    #[test]
    fn resolve_round_trips() {
        let a = intern("interner-test-resolve");
        let back = resolve(a.sym()).expect("allocated symbol");
        assert_eq!(back, a);
        assert_eq!(back.as_str(), "interner-test-resolve");
        assert!(resolve(u32::MAX).is_none());
    }

    #[test]
    fn symbol_count_grows_monotonically() {
        let before = symbol_count();
        intern("interner-test-count-probe");
        let after = symbol_count();
        assert!(after >= before);
        // Re-interning allocates nothing.
        intern("interner-test-count-probe");
        assert_eq!(symbol_count(), after);
    }
}
