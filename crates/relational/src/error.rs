//! Error types for building and loading databases.

use std::fmt;

/// Errors raised while constructing relations and databases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A row's arity differs from its relation's schema arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Number of attributes the schema declares.
        expected: usize,
        /// Number of values the offending row carries.
        got: usize,
    },
    /// The same attribute appears twice in one schema.
    DuplicateAttribute {
        /// Relation name.
        relation: String,
        /// Attribute name.
        attribute: String,
    },
    /// Two relations with the same name were added to one database.
    DuplicateRelation {
        /// Relation name.
        relation: String,
    },
    /// A lookup referenced a relation name that does not exist.
    UnknownRelation {
        /// Relation name.
        relation: String,
    },
    /// A lookup referenced an attribute name that does not exist.
    UnknownAttribute {
        /// Attribute name.
        attribute: String,
    },
    /// A textual table could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The database exceeds an id-space limit (u16 relations / u32 tuples).
    CapacityExceeded {
        /// What overflowed.
        what: &'static str,
    },
    /// A mutation referenced a tuple id that was never allocated or has
    /// already been removed.
    NoSuchTuple {
        /// The raw tuple id.
        id: u32,
    },
    /// A NaN reached a value constructor ([`Value::try_float`]): NaN has
    /// no consistent equality, so it cannot be an attribute value.
    ///
    /// [`Value::try_float`]: crate::Value::try_float
    NanValue,
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation '{relation}': row has {got} values but schema has {expected} attributes"
            ),
            RelationalError::DuplicateAttribute {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "relation '{relation}': duplicate attribute '{attribute}'"
                )
            }
            RelationalError::DuplicateRelation { relation } => {
                write!(f, "duplicate relation '{relation}'")
            }
            RelationalError::UnknownRelation { relation } => {
                write!(f, "unknown relation '{relation}'")
            }
            RelationalError::UnknownAttribute { attribute } => {
                write!(f, "unknown attribute '{attribute}'")
            }
            RelationalError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            RelationalError::CapacityExceeded { what } => {
                write!(f, "capacity exceeded: too many {what}")
            }
            RelationalError::NoSuchTuple { id } => {
                write!(f, "no live tuple with id t{id}")
            }
            RelationalError::NanValue => {
                write!(f, "NaN is not a valid attribute value")
            }
        }
    }
}

impl std::error::Error for RelationalError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, RelationalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = RelationalError::ArityMismatch {
            relation: "Sites".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("Sites"));
        assert!(e.to_string().contains('3'));
    }
}
