//! The attribute value domain, including the null value `⊥`.
//!
//! The paper's relations range over atomic values and allow nulls in the
//! *source* relations (an extension over Rajaraman–Ullman 1996). Join
//! consistency requires shared attributes to be **equal and non-null**, so
//! `Value` needs total equality, ordering and hashing — including for
//! floating-point values, which we canonicalize at construction time.
//!
//! Strings are interned ([`interner`](crate::interner)): `Value::Str`
//! carries an [`IStr`] whose equality and hash are a single word-sized
//! symbol comparison, which is what makes `join_consistent_with` cheap in
//! the maximal-extension inner loops.

use crate::error::RelationalError;
use crate::interner::{self, IStr};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// An atomic attribute value.
///
/// `Null` is the paper's `⊥`. Strings are interned so that equality,
/// hashing and join-consistency checks are word-sized integer operations,
/// and tuples, tuple sets and padded output rows share one text
/// allocation per distinct string.
#[derive(Debug, Clone)]
pub enum Value {
    /// The null value `⊥`: missing or unknown information.
    Null,
    /// A 64-bit signed integer.
    Int(i64),
    /// A finite 64-bit float. NaN is rejected at construction; `-0.0` is
    /// canonicalized to `0.0` so `Eq`/`Hash` are consistent.
    Float(f64),
    /// An interned UTF-8 string.
    Str(IStr),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Builds a string value, interning the text.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(interner::intern(s.as_ref()))
    }

    /// Builds a float value, canonicalizing `-0.0` and rejecting NaN.
    ///
    /// # Panics
    /// Panics if `f` is NaN — NaN has no consistent equality and would break
    /// join semantics. Parse and wire paths must use
    /// [`try_float`](Self::try_float) instead, which reports the rejection
    /// as an error.
    pub fn float(f: f64) -> Self {
        assert!(!f.is_nan(), "NaN is not a valid attribute value");
        Value::Float(if f == 0.0 { 0.0 } else { f })
    }

    /// Fallible [`float`](Self::float): returns
    /// [`RelationalError::NanValue`] instead of panicking, so parse and
    /// serve-protocol paths can reject NaN without aborting the process.
    pub fn try_float(f: f64) -> Result<Self, RelationalError> {
        if f.is_nan() {
            return Err(RelationalError::NanValue);
        }
        Ok(Value::Float(if f == 0.0 { 0.0 } else { f }))
    }

    /// Is this the null value `⊥`?
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The paper's join-consistency test on a single shared attribute:
    /// both values must be equal **and** non-null (`t1[A] = t2[A] ≠ ⊥`).
    /// With interned strings this is a tag plus one word comparison.
    #[inline]
    pub fn join_consistent_with(&self, other: &Value) -> bool {
        !self.is_null() && !other.is_null() && self == other
    }

    /// A small integer tag used for cross-variant ordering.
    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Renders the value the way the paper prints it (`⊥` for null).
    pub fn display(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed("⊥"),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Float(f) => Cow::Owned(format!("{f}")),
            Value::Str(s) => Cow::Borrowed(s.as_str()),
            Value::Bool(b) => Cow::Borrowed(if *b { "true" } else { "false" }),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            // Interned: one symbol comparison, no byte walk.
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.tag());
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
        }
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            // Floats are finite by construction, so partial_cmp never fails.
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b).expect("finite floats"),
            // Equal symbols short-circuit; otherwise lexicographic.
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

/// Shorthand for `Value::Null`, mirroring the paper's `⊥` notation.
pub const NULL: Value = Value::Null;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_is_not_join_consistent_with_anything() {
        assert!(!NULL.join_consistent_with(&NULL));
        assert!(!NULL.join_consistent_with(&Value::Int(1)));
        assert!(!Value::Int(1).join_consistent_with(&NULL));
    }

    #[test]
    fn equal_non_null_values_are_join_consistent() {
        assert!(Value::Int(3).join_consistent_with(&Value::Int(3)));
        assert!(Value::str("x").join_consistent_with(&Value::str("x")));
        assert!(!Value::Int(3).join_consistent_with(&Value::Int(4)));
        assert!(!Value::str("x").join_consistent_with(&Value::str("y")));
    }

    #[test]
    fn interned_strings_compare_by_symbol() {
        let (a, b) = (Value::str("Toronto"), Value::str("Toronto"));
        match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => assert_eq!(x.sym(), y.sym()),
            _ => unreachable!(),
        }
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        // Independently constructed values still order lexicographically.
        assert!(Value::str("Nassau") < Value::str("Toronto"));
    }

    #[test]
    fn cross_type_values_are_unequal_but_ordered() {
        assert_ne!(Value::Int(1), Value::str("1"));
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Int(5) < Value::str(""));
    }

    #[test]
    fn negative_zero_is_canonicalized() {
        assert_eq!(Value::float(-0.0), Value::float(0.0));
        assert_eq!(hash_of(&Value::float(-0.0)), hash_of(&Value::float(0.0)));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = Value::float(f64::NAN);
    }

    #[test]
    fn try_float_reports_nan_as_an_error() {
        assert_eq!(Value::try_float(f64::NAN), Err(RelationalError::NanValue));
        assert_eq!(Value::try_float(1.5), Ok(Value::float(1.5)));
        assert_eq!(Value::try_float(-0.0), Ok(Value::float(0.0)));
    }

    #[test]
    fn float_ordering_is_total_over_finite_values() {
        assert!(Value::float(-1.5) < Value::float(0.0));
        assert!(Value::float(0.0) < Value::float(2.25));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(NULL.to_string(), "⊥");
        assert_eq!(Value::Int(4).to_string(), "4");
        assert_eq!(Value::str("Plaza").to_string(), "Plaza");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("a"), Value::str("a"));
        assert_eq!(Value::from(String::from("a")), Value::str("a"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(1.5f64), Value::float(1.5));
    }
}
