//! Runtime lock-order checking: named wrappers over [`std::sync::Mutex`]
//! and [`std::sync::RwLock`] that learn the process's inter-lock
//! acquisition order and panic — naming both locks, with both
//! back-traces — the moment any thread acquires in the reverse order.
//!
//! The workspace has four concurrency-heavy subsystems (the serve
//! daemon, the session, the WAL/store, and the global interner) whose
//! deadlock freedom rests on a *convention*: locks are always taken in
//! the order declared in the repo-root `LOCK_ORDER.md`. Conventions rot;
//! this module mechanizes the check. Every [`TrackedMutex`]/
//! [`TrackedRwLock`] acquisition pushes its lock name onto a per-thread
//! stack and, for each lock already held, records the ordered pair
//! *held → acquiring* in a process-global order graph. Recording a pair
//! whose reverse is already in the graph means two code paths disagree
//! about the order — the classic recipe for an AB/BA deadlock — and the
//! checker panics immediately with the back-trace of **both**
//! acquisition orders, even if the interleaving never actually
//! deadlocked in this run. Every existing concurrency test therefore
//! doubles as a deadlock detector.
//!
//! ## Cost model
//!
//! Tracking is compiled in only under `debug_assertions` (so plain
//! `cargo test` checks by default) or the `lockcheck` cargo feature (so
//! CI can run the suite in any profile with the detector pinned on). In
//! release builds without the feature the wrappers are transparent:
//! [`TrackedMutex::lock`] is an `#[inline]` delegation to the inner
//! `std` primitive and the per-lock cost is one `&'static str` field.
//! With tracking on, the fast path for an already-known pair is a
//! thread-local hash probe — the global graph mutex is touched only the
//! first time a thread sees a new pair.
//!
//! ## What it does not catch
//!
//! Self-deadlock (re-acquiring the same non-reentrant lock) and
//! condition-variable waits are out of scope; the checker reasons only
//! about *order* between distinct named locks. Two locks sharing a name
//! are treated as one, so name locks by role (`"serve.session"`), not
//! by instance.

use std::fmt;
use std::sync::{
    LockResult, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Is order tracking compiled into this build?
pub const ENABLED: bool = cfg!(any(debug_assertions, feature = "lockcheck"));

/// A [`Mutex`] with a stable role name, participating in lock-order
/// detection when [`ENABLED`]. API-compatible with the `std` type for
/// the operations the workspace uses; poison behavior is unchanged
/// (the guard travels inside the [`PoisonError`]).
pub struct TrackedMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Wraps `value`. `name` identifies the lock's *role* in panic
    /// messages and in `LOCK_ORDER.md` — use one name per role, shared
    /// by every instance that plays it.
    pub const fn new(name: &'static str, value: T) -> Self {
        TrackedMutex {
            name,
            inner: Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value (poison surfaces as in
    /// `std`).
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T> TrackedMutex<T> {
    /// The role name this lock was created with.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the mutex, recording the acquisition against every lock
    /// this thread already holds. Panics on a detected order inversion
    /// (see the module docs); otherwise blocks and poisons exactly as
    /// [`Mutex::lock`] does.
    #[inline]
    pub fn lock(&self) -> LockResult<TrackedMutexGuard<'_, T>> {
        let held = order::acquire(self.name);
        match self.inner.lock() {
            Ok(inner) => Ok(TrackedMutexGuard { inner, _held: held }),
            Err(poisoned) => Err(PoisonError::new(TrackedMutexGuard {
                inner: poisoned.into_inner(),
                _held: held,
            })),
        }
    }

    /// Mutable access without locking (the borrow checker proves
    /// exclusivity), as [`Mutex::get_mut`].
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// The guard returned by [`TrackedMutex::lock`]; releases the mutex —
/// and pops the lock from the thread's held stack — on drop.
pub struct TrackedMutexGuard<'a, T: ?Sized> {
    inner: MutexGuard<'a, T>,
    _held: order::Held,
}

impl<T> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.inner, f)
    }
}

/// An [`RwLock`] with a stable role name, participating in lock-order
/// detection when [`ENABLED`]. Read and write acquisitions are tracked
/// identically — a read-after-write inversion deadlocks just as hard
/// once a writer queues between the two readers.
pub struct TrackedRwLock<T> {
    name: &'static str,
    inner: RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// Wraps `value` under the role `name` (see [`TrackedMutex::new`]).
    pub const fn new(name: &'static str, value: T) -> Self {
        TrackedRwLock {
            name,
            inner: RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T> TrackedRwLock<T> {
    /// The role name this lock was created with.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires shared access, with order tracking as
    /// [`TrackedMutex::lock`].
    #[inline]
    pub fn read(&self) -> LockResult<TrackedReadGuard<'_, T>> {
        let held = order::acquire(self.name);
        match self.inner.read() {
            Ok(inner) => Ok(TrackedReadGuard { inner, _held: held }),
            Err(poisoned) => Err(PoisonError::new(TrackedReadGuard {
                inner: poisoned.into_inner(),
                _held: held,
            })),
        }
    }

    /// Acquires exclusive access, with order tracking as
    /// [`TrackedMutex::lock`].
    #[inline]
    pub fn write(&self) -> LockResult<TrackedWriteGuard<'_, T>> {
        let held = order::acquire(self.name);
        match self.inner.write() {
            Ok(inner) => Ok(TrackedWriteGuard { inner, _held: held }),
            Err(poisoned) => Err(PoisonError::new(TrackedWriteGuard {
                inner: poisoned.into_inner(),
                _held: held,
            })),
        }
    }

    /// Mutable access without locking, as [`RwLock::get_mut`].
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedRwLock")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared-access guard from [`TrackedRwLock::read`].
pub struct TrackedReadGuard<'a, T: ?Sized> {
    inner: RwLockReadGuard<'a, T>,
    _held: order::Held,
}

impl<T> std::ops::Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.inner, f)
    }
}

/// Exclusive-access guard from [`TrackedRwLock::write`].
pub struct TrackedWriteGuard<'a, T: ?Sized> {
    inner: RwLockWriteGuard<'a, T>,
    _held: order::Held,
}

impl<T> std::ops::Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.inner, f)
    }
}

/// Every *held → acquiring* pair recorded so far, for tests and
/// diagnostics. Always available; empty when tracking is compiled out.
pub fn recorded_edges() -> Vec<(&'static str, &'static str)> {
    order::edges()
}

#[cfg(any(debug_assertions, feature = "lockcheck"))]
mod order {
    use std::backtrace::Backtrace;
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::sync::{Mutex, OnceLock};

    thread_local! {
        /// Role names of the locks this thread currently holds, in
        /// acquisition order (duplicates allowed: many readers, or
        /// distinct instances sharing a role).
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        /// Pairs this thread has already pushed to the global graph —
        /// the fast path that keeps the graph mutex off hot loops.
        static KNOWN: RefCell<HashSet<(&'static str, &'static str)>> =
            RefCell::new(HashSet::new());
    }

    /// The process-global order graph: each ordered pair maps to the
    /// back-trace of the acquisition that first established it. (This
    /// mutex is itself a leaf — nothing is acquired while holding it —
    /// so it cannot participate in the cycles it detects.)
    fn graph() -> &'static Mutex<HashMap<(&'static str, &'static str), String>> {
        static GRAPH: OnceLock<Mutex<HashMap<(&'static str, &'static str), String>>> =
            OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// A held-stack entry; popping happens on drop, i.e. when the
    /// tracked guard releases.
    pub(super) struct Held {
        name: &'static str,
    }

    pub(super) fn acquire(name: &'static str) -> Held {
        HELD.with(|h| {
            for &prev in h.borrow().iter() {
                if prev != name {
                    record(prev, name);
                }
            }
            h.borrow_mut().push(name);
        });
        Held { name }
    }

    fn record(before: &'static str, after: &'static str) {
        let fresh = KNOWN.with(|k| k.borrow_mut().insert((before, after)));
        if !fresh {
            return;
        }
        let mut graph = graph().lock().unwrap_or_else(|p| p.into_inner());
        if let Some(reverse) = graph.get(&(after, before)) {
            let here = Backtrace::force_capture();
            panic!(
                "lock-order inversion: acquiring '{after}' while holding '{before}', but another \
                 code path acquires '{before}' while holding '{after}'. Fix one side to follow \
                 LOCK_ORDER.md.\n\
                 --- '{after}' before '{before}' was first recorded here:\n{reverse}\n\
                 --- '{before}' before '{after}' (this thread) recorded here:\n{here}"
            );
        }
        graph
            .entry((before, after))
            .or_insert_with(|| Backtrace::force_capture().to_string());
    }

    pub(super) fn edges() -> Vec<(&'static str, &'static str)> {
        let graph = graph().lock().unwrap_or_else(|p| p.into_inner());
        graph.keys().copied().collect()
    }

    impl Drop for Held {
        fn drop(&mut self) {
            // `rposition`: release the most recent acquisition of this
            // role (guards usually drop LIFO, but nothing forces it).
            let _ = HELD.try_with(|h| {
                let mut held = h.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&n| n == self.name) {
                    held.remove(pos);
                }
            });
        }
    }
}

#[cfg(not(any(debug_assertions, feature = "lockcheck")))]
mod order {
    /// Zero-sized stand-in: no tracking state, no drop glue.
    pub(super) struct Held;

    #[inline(always)]
    pub(super) fn acquire(_name: &'static str) -> Held {
        Held
    }

    pub(super) fn edges() -> Vec<(&'static str, &'static str)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn tracked_mutex_behaves_like_a_mutex() {
        let m = TrackedMutex::new("test.lockcheck.plain", 41);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 42);
        assert_eq!(m.name(), "test.lockcheck.plain");
        assert_eq!(m.into_inner().unwrap(), 42);
    }

    #[test]
    fn tracked_rwlock_behaves_like_a_rwlock() {
        let l = TrackedRwLock::new("test.lockcheck.rw", String::from("a"));
        l.write().unwrap().push('b');
        assert_eq!(&*l.read().unwrap(), "ab");
        // Shared access really is shared.
        let g1 = l.read().unwrap();
        let g2 = l.read().unwrap();
        assert_eq!(&*g1, &*g2);
    }

    #[test]
    fn poison_carries_the_guard() {
        let m = Arc::new(TrackedMutex::new("test.lockcheck.poison", 7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        let v = *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert_eq!(v, 7);
    }

    #[cfg(any(debug_assertions, feature = "lockcheck"))]
    #[test]
    fn consistent_order_records_edges_without_panicking() {
        let a = TrackedMutex::new("test.lockcheck.order.a", ());
        let b = TrackedMutex::new("test.lockcheck.order.b", ());
        for _ in 0..3 {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        assert!(recorded_edges().contains(&("test.lockcheck.order.a", "test.lockcheck.order.b")));
    }

    #[cfg(any(debug_assertions, feature = "lockcheck"))]
    #[test]
    fn inversion_panics_naming_both_locks() {
        let a = Arc::new(TrackedMutex::new("test.lockcheck.inv.alpha", ()));
        let b = Arc::new(TrackedMutex::new("test.lockcheck.inv.beta", ()));
        // Establish alpha -> beta on one thread…
        {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            })
            .join()
            .unwrap();
        }
        // …then acquire beta -> alpha on another: must panic even
        // though no deadlock actually occurs.
        let err = std::thread::spawn(move || {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        })
        .join()
        .expect_err("the inversion must be detected");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".into());
        assert!(msg.contains("lock-order inversion"), "{msg}");
        assert!(msg.contains("test.lockcheck.inv.alpha"), "{msg}");
        assert!(msg.contains("test.lockcheck.inv.beta"), "{msg}");
    }

    #[cfg(any(debug_assertions, feature = "lockcheck"))]
    #[test]
    fn same_role_reacquisition_is_not_an_inversion() {
        // Two instances sharing a role (e.g. per-connection writers)
        // must not trip the detector when nested.
        let outer = TrackedMutex::new("test.lockcheck.samerole", 1);
        let inner = TrackedMutex::new("test.lockcheck.samerole", 2);
        let _go = outer.lock().unwrap();
        let _gi = inner.lock().unwrap();
    }
}
