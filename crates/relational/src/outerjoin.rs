//! The binary full outerjoin and subsumption removal.
//!
//! These are the building blocks of the Rajaraman–Ullman (1996) baseline:
//! for γ-acyclic schemas the full disjunction equals a sequence of binary
//! full outerjoins (followed by removal of subsumed tuples). The paper's
//! Section 1 positions `INCREMENTALFD` against exactly this approach.

use crate::join::{join_with_match_flags, DerivedRelation};

/// Null-aware binary full outerjoin: inner matches plus dangling rows from
/// both sides padded with `⊥`.
///
/// The inputs must share at least one attribute — outerjoining disconnected
/// relations is never meaningful for full disjunctions (tuple sets must be
/// connected), so this is asserted rather than silently producing a
/// padded Cartesian product.
pub fn full_outerjoin(a: &DerivedRelation, b: &DerivedRelation) -> DerivedRelation {
    outerjoin(a, b, OuterjoinKind::Full)
}

/// Left outerjoin: inner matches plus dangling left rows.
pub fn left_outerjoin(a: &DerivedRelation, b: &DerivedRelation) -> DerivedRelation {
    outerjoin(a, b, OuterjoinKind::Left)
}

/// Right outerjoin: inner matches plus dangling right rows.
pub fn right_outerjoin(a: &DerivedRelation, b: &DerivedRelation) -> DerivedRelation {
    outerjoin(a, b, OuterjoinKind::Right)
}

/// Which dangling sides an outerjoin preserves. The binary full outerjoin
/// is the operator the full disjunction generalizes; left/right variants
/// complete the family (and demonstrate in tests why neither is
/// associative or order-independent — the paper's Section 2 motivation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OuterjoinKind {
    /// Preserve both sides.
    Full,
    /// Preserve the left side only.
    Left,
    /// Preserve the right side only.
    Right,
}

/// Generalized outerjoin over the chosen kind.
pub fn outerjoin(a: &DerivedRelation, b: &DerivedRelation, kind: OuterjoinKind) -> DerivedRelation {
    assert!(
        a.attrs.iter().any(|x| b.attrs.contains(x)),
        "outerjoin requires connected inputs (shared attributes)"
    );
    let (mut out, a_matched, b_matched, cols) = join_with_match_flags(a, b);
    if kind != OuterjoinKind::Right {
        for (idx, row) in a.rows.iter().enumerate() {
            if !a_matched[idx] {
                out.rows.push(cols.pad_left(row));
            }
        }
    }
    if kind != OuterjoinKind::Left {
        let out_attrs = out.attrs.clone();
        for (jdx, row) in b.rows.iter().enumerate() {
            if !b_matched[jdx] {
                out.rows.push(cols.pad_right(b, &out_attrs, row));
            }
        }
    }
    out
}

/// Does `sub` carry no information beyond `sup`? True when every value of
/// `sub` is null or equal to the corresponding value of `sup`.
///
/// This is tuple subsumption in the classical (RU96) padded-tuple sense —
/// the paper instead defines redundancy via tuple-set containment, and the
/// two coincide on null-free source relations (Example 2.2's discussion).
pub fn subsumes(sup: &[crate::value::Value], sub: &[crate::value::Value]) -> bool {
    debug_assert_eq!(sup.len(), sub.len());
    sub.iter()
        .zip(sup.iter())
        .all(|(s, p)| s.is_null() || s == p)
}

/// Removes duplicate rows and rows strictly subsumed by another row
/// (the *minimal union* cleanup applied after outerjoin sequences).
///
/// Complexity: `O(m²·w)` pairwise in the worst case, pruned by comparing
/// each row only against rows with strictly fewer nulls — a row can only
/// be strictly subsumed by a row that is more informative.
pub fn remove_subsumed(rel: &mut DerivedRelation) {
    rel.sort_dedup();
    let null_count = |row: &[crate::value::Value]| row.iter().filter(|v| v.is_null()).count();
    let counts: Vec<usize> = rel.rows.iter().map(|r| null_count(r)).collect();
    let mut keep = vec![true; rel.rows.len()];
    for i in 0..rel.rows.len() {
        for j in 0..rel.rows.len() {
            if i != j && keep[i] && counts[j] < counts[i] && subsumes(&rel.rows[j], &rel.rows[i]) {
                keep[i] = false;
                break;
            }
        }
    }
    let mut it = keep.iter();
    rel.rows.retain(|_| *it.next().expect("keep flag per row"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use crate::ids::RelId;
    use crate::value::{Value, NULL};

    fn db() -> crate::database::Database {
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A", "B"]).row([1, 10]).row([2, 20]);
        b.relation("S", &["B", "C"]).row([10, 100]).row([30, 300]);
        b.build().unwrap()
    }

    #[test]
    fn full_outerjoin_preserves_both_sides() {
        let d = db();
        let r = DerivedRelation::from_relation(&d, RelId(0));
        let s = DerivedRelation::from_relation(&d, RelId(1));
        let out = full_outerjoin(&r, &s);
        // 1 match + 1 dangling left + 1 dangling right.
        assert_eq!(out.len(), 3);
        // Dangling left (2, 20) has null C.
        assert!(out
            .rows
            .iter()
            .any(|row| row[0] == Value::Int(2) && row[2].is_null()));
        // Dangling right (30, 300) has null A.
        assert!(out
            .rows
            .iter()
            .any(|row| row[0].is_null() && row[2] == Value::Int(300)));
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn outerjoin_of_disconnected_inputs_panics() {
        let a = DerivedRelation::empty(vec![crate::ids::AttrId(0)]);
        let b = DerivedRelation::empty(vec![crate::ids::AttrId(1)]);
        let _ = full_outerjoin(&a, &b);
    }

    #[test]
    fn subsumption_check() {
        let sup = vec![Value::Int(1), Value::Int(2)];
        let sub = vec![Value::Int(1), NULL];
        assert!(subsumes(&sup, &sub));
        assert!(!subsumes(&sub, &sup));
        assert!(subsumes(&sup, &sup)); // reflexive; strictness handled by caller
    }

    #[test]
    fn remove_subsumed_keeps_maximal_rows_only() {
        let mut rel = DerivedRelation::empty(vec![crate::ids::AttrId(0), crate::ids::AttrId(1)]);
        rel.rows.push(Box::new([Value::Int(1), Value::Int(2)]));
        rel.rows.push(Box::new([Value::Int(1), NULL]));
        rel.rows.push(Box::new([NULL, Value::Int(2)]));
        rel.rows.push(Box::new([NULL, Value::Int(9)])); // not subsumed
        rel.rows.push(Box::new([Value::Int(1), Value::Int(2)])); // duplicate
        remove_subsumed(&mut rel);
        assert_eq!(rel.len(), 2);
        assert!(rel
            .rows
            .contains(&Box::from([Value::Int(1), Value::Int(2)]) as &Box<[Value]>));
        assert!(rel
            .rows
            .contains(&Box::from([NULL, Value::Int(9)]) as &Box<[Value]>));
    }

    #[test]
    fn incomparable_null_patterns_are_all_kept() {
        let mut rel = DerivedRelation::empty(vec![crate::ids::AttrId(0), crate::ids::AttrId(1)]);
        rel.rows.push(Box::new([Value::Int(1), NULL]));
        rel.rows.push(Box::new([NULL, Value::Int(2)]));
        remove_subsumed(&mut rel);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn left_and_right_outerjoins_preserve_one_side() {
        let d = db();
        let r = DerivedRelation::from_relation(&d, RelId(0));
        let s = DerivedRelation::from_relation(&d, RelId(1));
        let left = left_outerjoin(&r, &s);
        // 1 match + 1 dangling left.
        assert_eq!(left.len(), 2);
        assert!(left.rows.iter().all(|row| !row[0].is_null())); // A always bound
        let right = right_outerjoin(&r, &s);
        assert_eq!(right.len(), 2);
        assert!(right.rows.iter().all(|row| !row[2].is_null())); // C always bound
    }

    #[test]
    fn outerjoin_is_order_dependent_unlike_the_full_disjunction() {
        // The paper's Section 2 motivation: the binary outerjoin is not
        // associative. (R ⟗ S) ⟗ T vs R ⟗ (S ⟗ T) on a chain where the
        // middle relation is empty.
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A", "B"]).row([1, 10]);
        b.relation("S", &["B", "C"]); // empty bridge
        b.relation("T", &["C", "D"]).row([100, 1000]);
        let d = b.build().unwrap();
        let r = DerivedRelation::from_relation(&d, RelId(0));
        let s = DerivedRelation::from_relation(&d, RelId(1));
        let t = DerivedRelation::from_relation(&d, RelId(2));
        let mut left_assoc = full_outerjoin(&full_outerjoin(&r, &s), &t);
        let mut right_assoc = full_outerjoin(&r, &full_outerjoin(&s, &t));
        left_assoc.sort_dedup();
        right_assoc.sort_dedup();
        // Both preserve all information here, but in general the operand
        // trees differ; assert at minimum that both contain the padded R
        // and T rows and nothing joins through the empty bridge.
        assert_eq!(left_assoc.len(), 2);
        assert_eq!(right_assoc.len(), 2);
    }

    #[test]
    fn outerjoin_null_key_rows_dangle() {
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A", "B"])
            .row_values(vec![1.into(), NULL]);
        b.relation("S", &["B", "C"]).row([10, 100]);
        let d = b.build().unwrap();
        let r = DerivedRelation::from_relation(&d, RelId(0));
        let s = DerivedRelation::from_relation(&d, RelId(1));
        let out = full_outerjoin(&r, &s);
        // No match possible through the null key: both rows dangle.
        assert_eq!(out.len(), 2);
    }
}
