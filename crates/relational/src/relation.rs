//! Relations: a named schema plus a bag of rows.

use crate::error::{RelationalError, Result};
use crate::ids::{AttrId, RelId};
use crate::schema::Schema;
use crate::value::Value;

/// One source relation `Ri`.
///
/// Rows are stored row-major (`Box<[Value]>` per row); the paper's
/// algorithms scan whole relations tuple by tuple, which row storage serves
/// directly. Rows may contain nulls — the paper explicitly allows null
/// values in source relations.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    id: RelId,
    schema: Schema,
    rows: Vec<Box<[Value]>>,
}

impl Relation {
    /// Creates a relation. Called by the database builder, which has
    /// already interned the attribute names.
    pub(crate) fn new(name: String, id: RelId, schema: Schema) -> Self {
        Relation {
            name,
            id,
            schema,
            rows: Vec::new(),
        }
    }

    /// Appends a row, validating arity.
    pub(crate) fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.name.clone(),
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.rows.push(row.into_boxed_slice());
        Ok(())
    }

    /// The relation's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's id (its index in the database's relation list).
    #[inline]
    pub fn id(&self) -> RelId {
        self.id
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The `row`-th tuple's values, in column order.
    #[inline]
    pub fn row(&self, row: usize) -> &[Value] {
        &self.rows[row]
    }

    /// All rows.
    #[inline]
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[Value]> {
        self.rows.iter().map(|r| r.as_ref())
    }

    /// Value of `attr` in the `row`-th tuple (`t[A]` in the paper), or
    /// `None` if the attribute is not in this schema.
    #[inline]
    pub fn value(&self, row: usize, attr: AttrId) -> Option<&Value> {
        self.schema.column_of(attr).map(|c| &self.rows[row][c])
    }

    /// Total size of the relation measured the way the paper measures `s`:
    /// number of (tuple, attribute, value) entries.
    pub fn total_size(&self) -> usize {
        self.len() * self.schema.arity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_relation() -> Relation {
        let schema = Schema::new(vec![AttrId(0), AttrId(1)]);
        let mut r = Relation::new("T".into(), RelId(0), schema);
        r.push_row(vec![Value::Int(1), Value::str("a")]).unwrap();
        r.push_row(vec![Value::Int(2), Value::Null]).unwrap();
        r
    }

    #[test]
    fn rows_round_trip() {
        let r = test_relation();
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0)[0], Value::Int(1));
        assert_eq!(r.value(1, AttrId(1)), Some(&Value::Null));
        assert_eq!(r.value(0, AttrId(7)), None);
        assert_eq!(r.total_size(), 4);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let schema = Schema::new(vec![AttrId(0), AttrId(1)]);
        let mut r = Relation::new("T".into(), RelId(0), schema);
        let err = r.push_row(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::ArityMismatch {
                got: 1,
                expected: 2,
                ..
            }
        ));
    }
}
