//! Plain-text loading and pretty-printing of databases.
//!
//! A tiny self-contained format (no external parser dependencies) used by
//! the examples:
//!
//! ```text
//! relation Climates(Country, Climate)
//! Canada   | diverse
//! UK       | temperate
//!
//! relation Sites(Country, City, Site)
//! Canada   | London | Air Show
//! Canada   | ⊥      | Mount Logan
//! ```
//!
//! Values: `⊥`, `null`, `NULL` or `_` parse as the null value; otherwise a
//! value is tried as integer, float, boolean, and finally kept as a string.
//! Comment lines start with `#`.

use crate::database::{Database, DatabaseBuilder};
use crate::error::{RelationalError, Result};
use crate::ids::RelId;
use crate::value::Value;
use std::fmt::Write as _;

/// Parses a value token.
pub fn parse_value(tok: &str) -> Value {
    let t = tok.trim();
    match t {
        "⊥" | "null" | "NULL" | "_" => Value::Null,
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => {
            if let Ok(i) = t.parse::<i64>() {
                Value::Int(i)
            } else if let Ok(f) = t.parse::<f64>() {
                if f.is_nan() {
                    Value::str(t)
                } else {
                    Value::float(f)
                }
            } else {
                Value::str(t)
            }
        }
    }
}

/// Parses a whole database from the textual format above.
pub fn parse_database(text: &str) -> Result<Database> {
    let mut builder = DatabaseBuilder::new();
    let mut current: Option<(String, Vec<String>)> = None;
    let mut pending_rows: Vec<Vec<Value>> = Vec::new();

    fn flush(
        builder: &mut DatabaseBuilder,
        current: &mut Option<(String, Vec<String>)>,
        rows: &mut Vec<Vec<Value>>,
    ) {
        if let Some((name, attrs)) = current.take() {
            let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            let mut rb = builder.relation(&name, &attr_refs);
            for row in rows.drain(..) {
                rb.row_values(row);
            }
        }
    }

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("relation ") {
            flush(&mut builder, &mut current, &mut pending_rows);
            let open = rest.find('(').ok_or_else(|| RelationalError::Parse {
                line: lineno + 1,
                message: "expected '(' after relation name".into(),
            })?;
            let close = rest.rfind(')').ok_or_else(|| RelationalError::Parse {
                line: lineno + 1,
                message: "expected closing ')'".into(),
            })?;
            let name = rest[..open].trim().to_owned();
            if name.is_empty() {
                return Err(RelationalError::Parse {
                    line: lineno + 1,
                    message: "empty relation name".into(),
                });
            }
            let attrs: Vec<String> = rest[open + 1..close]
                .split(',')
                .map(|a| a.trim().to_owned())
                .filter(|a| !a.is_empty())
                .collect();
            if attrs.is_empty() {
                return Err(RelationalError::Parse {
                    line: lineno + 1,
                    message: "relation needs at least one attribute".into(),
                });
            }
            current = Some((name, attrs));
        } else {
            let Some((_, attrs)) = &current else {
                return Err(RelationalError::Parse {
                    line: lineno + 1,
                    message: "row before any 'relation' header".into(),
                });
            };
            let values: Vec<Value> = line.split('|').map(parse_value).collect();
            if values.len() != attrs.len() {
                return Err(RelationalError::Parse {
                    line: lineno + 1,
                    message: format!(
                        "row has {} values, schema has {} attributes",
                        values.len(),
                        attrs.len()
                    ),
                });
            }
            pending_rows.push(values);
        }
    }
    flush(&mut builder, &mut current, &mut pending_rows);
    builder.build()
}

/// Pretty-prints one relation as an aligned text table (paper Table 1
/// style).
pub fn format_relation(db: &Database, rel: RelId) -> String {
    let r = db.relation(rel);
    let headers: Vec<&str> = r
        .schema()
        .attrs()
        .iter()
        .map(|&a| db.attr_name(a))
        .collect();
    let rows: Vec<Vec<String>> = r
        .rows()
        .map(|row| row.iter().map(|v| v.display().into_owned()).collect())
        .collect();
    format_table(r.name(), &headers, &rows)
}

/// Pretty-prints an aligned table with a title row.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:<w$}  ");
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let dash: String = widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("  ");
    let _ = writeln!(out, "{dash}");
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            let pad = w.saturating_sub(c.chars().count());
            let _ = write!(line, "{c}{}  ", " ".repeat(pad));
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\n\
        # tourist subset\n\
        relation Climates(Country, Climate)\n\
        Canada | diverse\n\
        UK | temperate\n\
        \n\
        relation Sites(Country, City, Site)\n\
        Canada | London | Air Show\n\
        Canada | ⊥ | Mount Logan\n";

    #[test]
    fn parse_round_trip() {
        let db = parse_database(SAMPLE).unwrap();
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.num_tuples(), 4);
        let sites = db.relation_by_name("Sites").unwrap();
        assert_eq!(sites.len(), 2);
        assert!(sites.row(1)[1].is_null());
        assert_eq!(sites.row(0)[2], Value::str("Air Show"));
    }

    #[test]
    fn value_parsing_types() {
        assert_eq!(parse_value("42"), Value::Int(42));
        assert_eq!(parse_value("4.5"), Value::float(4.5));
        assert_eq!(parse_value("true"), Value::Bool(true));
        assert_eq!(parse_value("⊥"), Value::Null);
        assert_eq!(parse_value("_"), Value::Null);
        assert_eq!(parse_value("Plaza"), Value::str("Plaza"));
        assert_eq!(parse_value(" padded "), Value::str("padded"));
    }

    #[test]
    fn arity_errors_are_reported_with_line_numbers() {
        let bad = "relation R(A, B)\n1 | 2 | 3\n";
        let err = parse_database(bad).unwrap_err();
        assert!(matches!(err, RelationalError::Parse { line: 2, .. }));
    }

    #[test]
    fn row_before_header_is_an_error() {
        let bad = "1 | 2\n";
        assert!(matches!(
            parse_database(bad),
            Err(RelationalError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn missing_paren_is_an_error() {
        assert!(parse_database("relation R A, B)\n").is_err());
        assert!(parse_database("relation R(A, B\n").is_err());
    }

    #[test]
    fn format_relation_aligns_columns() {
        let db = parse_database(SAMPLE).unwrap();
        let txt = format_relation(&db, RelId(0));
        assert!(txt.contains("Climates"));
        assert!(txt.contains("Country"));
        assert!(txt.lines().count() >= 4);
    }
}
