//! Plain-text loading and pretty-printing of databases.
//!
//! A tiny self-contained format (no external parser dependencies) used by
//! the examples:
//!
//! ```text
//! relation Climates(Country, Climate)
//! Canada   | diverse
//! UK       | temperate
//!
//! relation Sites(Country, City, Site)
//! Canada   | London | Air Show
//! Canada   | ⊥      | Mount Logan
//! ```
//!
//! Values: `⊥`, `null`, `NULL` or `_` parse as the null value; otherwise a
//! value is tried as integer, float, boolean, and finally kept as a string.
//! Comment lines start with `#`. Strings that would be ambiguous as bare
//! tokens — containing `|`, quotes, leading/trailing whitespace, or
//! spelled like another value type — are written `"quoted"` with
//! `\"`/`\\`/`\n`/`\r`/`\t` escapes, and the cell splitter honors quotes,
//! so [`parse_database`]∘[`format_database`] is the identity.

use crate::database::{Database, DatabaseBuilder};
use crate::error::{RelationalError, Result};
use crate::ids::RelId;
use crate::value::Value;
use std::fmt::Write as _;

/// Parses a value token.
pub fn parse_value(tok: &str) -> Value {
    let t = tok.trim();
    if t.len() >= 2 && t.starts_with('"') && t.ends_with('"') {
        return Value::str(unescape(&t[1..t.len() - 1]));
    }
    match t {
        "⊥" | "null" | "NULL" | "_" => Value::Null,
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => {
            if let Ok(i) = t.parse::<i64>() {
                Value::Int(i)
            } else if let Ok(f) = t.parse::<f64>() {
                // NaN spellings ("nan", "-NaN", …) are kept as strings:
                // NaN is not a valid attribute value, and the fallible
                // constructor keeps wire input from aborting the process.
                Value::try_float(f).unwrap_or_else(|_| Value::str(t))
            } else {
                Value::str(t)
            }
        }
    }
}

/// Renders one value as a token that [`parse_value`] maps back to it.
///
/// Most values print as they display; strings are quoted whenever the
/// bare spelling would be lost or misread (pipes, quotes, surrounding
/// whitespace, spellings of other types, the `relation` keyword, …).
pub fn format_value(v: &Value) -> String {
    match v {
        Value::Null => "⊥".to_owned(),
        Value::Int(i) => i.to_string(),
        // `{:?}` keeps a `.0`/exponent so the token re-parses as a float
        // (plain `{}` renders 1.0 as "1", which would come back an Int).
        Value::Float(f) => format!("{f:?}"),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => {
            if is_safe_bare(s) {
                s.to_string()
            } else {
                format!("\"{}\"", escape(s))
            }
        }
    }
}

/// May this string be written without quotes and still round-trip?
/// Safe tokens carry no separators, no whitespace, cannot be mistaken
/// for another value type, and cannot collide with the line grammar
/// (`relation` headers, `#` comments).
fn is_safe_bare(s: &str) -> bool {
    !s.is_empty()
        && s != "relation"
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
        && matches!(parse_value(s), Value::Str(ref back) if back.as_ref() == s)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(other) => out.push(other), // covers \" and \\
            None => out.push('\\'),
        }
    }
    out
}

/// Parses one `|`-separated row of values, honoring quoted cells — the
/// row grammar of [`parse_database`], exposed for interactive front ends
/// like `fd watch`.
pub fn parse_row(line: &str) -> Vec<Value> {
    split_cells(line).iter().map(|c| parse_value(c)).collect()
}

/// Renders one row of values as a single `|`-separated line that
/// [`parse_row`] maps back to it — the inverse of the row grammar, and
/// the framing guarantee line-oriented wire protocols rely on: every
/// value (including strings with embedded newlines, pipes or quotes)
/// formats onto ONE line, via [`format_value`]'s quoting and escapes.
/// `fd serve`/`fd connect` compose `insert REL | …` commands with it.
pub fn format_row(values: &[Value]) -> String {
    values
        .iter()
        .map(format_value)
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Splits a row line on `|`, leaving quoted sections (and their escapes)
/// intact for [`parse_value`] to decode.
fn split_cells(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                cur.push(c);
            }
            '\\' if in_quotes => {
                cur.push(c);
                if let Some(next) = chars.next() {
                    cur.push(next);
                }
            }
            '|' if !in_quotes => cells.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    cells.push(cur);
    cells
}

/// Parses a whole database from the textual format above.
pub fn parse_database(text: &str) -> Result<Database> {
    let mut builder = DatabaseBuilder::new();
    let mut current: Option<(String, Vec<String>)> = None;
    let mut pending_rows: Vec<Vec<Value>> = Vec::new();

    fn flush(
        builder: &mut DatabaseBuilder,
        current: &mut Option<(String, Vec<String>)>,
        rows: &mut Vec<Vec<Value>>,
    ) {
        if let Some((name, attrs)) = current.take() {
            let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            let mut rb = builder.relation(&name, &attr_refs);
            for row in rows.drain(..) {
                rb.row_values(row);
            }
        }
    }

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("relation ") {
            flush(&mut builder, &mut current, &mut pending_rows);
            let open = rest.find('(').ok_or_else(|| RelationalError::Parse {
                line: lineno + 1,
                message: "expected '(' after relation name".into(),
            })?;
            let close = rest.rfind(')').ok_or_else(|| RelationalError::Parse {
                line: lineno + 1,
                message: "expected closing ')'".into(),
            })?;
            let name = rest[..open].trim().to_owned();
            if name.is_empty() {
                return Err(RelationalError::Parse {
                    line: lineno + 1,
                    message: "empty relation name".into(),
                });
            }
            let attrs: Vec<String> = rest[open + 1..close]
                .split(',')
                .map(|a| a.trim().to_owned())
                .filter(|a| !a.is_empty())
                .collect();
            if attrs.is_empty() {
                return Err(RelationalError::Parse {
                    line: lineno + 1,
                    message: "relation needs at least one attribute".into(),
                });
            }
            current = Some((name, attrs));
        } else {
            let Some((_, attrs)) = &current else {
                return Err(RelationalError::Parse {
                    line: lineno + 1,
                    message: "row before any 'relation' header".into(),
                });
            };
            let values = parse_row(line);
            if values.len() != attrs.len() {
                return Err(RelationalError::Parse {
                    line: lineno + 1,
                    message: format!(
                        "row has {} values, schema has {} attributes",
                        values.len(),
                        attrs.len()
                    ),
                });
            }
            pending_rows.push(values);
        }
    }
    flush(&mut builder, &mut current, &mut pending_rows);
    builder.build()
}

/// Prints one relation in the textual format this module parses: a
/// `relation Name(Attrs…)` header followed by one aligned row per *live*
/// tuple (tombstoned rows are skipped). The output is both human-readable
/// and machine-parseable — `parse_database(format_relation(…))` rebuilds
/// the relation, values included.
pub fn format_relation(db: &Database, rel: RelId) -> String {
    let r = db.relation(rel);
    let headers: Vec<&str> = r
        .schema()
        .attrs()
        .iter()
        .map(|&a| db.attr_name(a))
        .collect();
    let rows: Vec<Vec<String>> = db
        .tuples_of(rel)
        .map(|t| db.tuple_values(t).iter().map(format_value).collect())
        .collect();

    let mut widths: Vec<usize> = vec![0; headers.len()];
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "relation {}({})", r.name(), headers.join(", "));
    for row in rows {
        let mut line = String::new();
        for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("| ");
            }
            let pad = w.saturating_sub(cell.chars().count());
            let _ = write!(line, "{cell}{} ", " ".repeat(pad));
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Prints a whole database in the parseable textual format:
/// `parse_database(&format_database(db))` reconstructs `db` exactly
/// (relations, schemas and live rows — tuple ids are re-densified).
pub fn format_database(db: &Database) -> String {
    let mut out = String::new();
    for rel in db.relations() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format_relation(db, rel.id()));
    }
    out
}

/// Pretty-prints an aligned table with a title row.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:<w$}  ");
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let dash: String = widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("  ");
    let _ = writeln!(out, "{dash}");
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            let pad = w.saturating_sub(c.chars().count());
            let _ = write!(line, "{c}{}  ", " ".repeat(pad));
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\n\
        # tourist subset\n\
        relation Climates(Country, Climate)\n\
        Canada | diverse\n\
        UK | temperate\n\
        \n\
        relation Sites(Country, City, Site)\n\
        Canada | London | Air Show\n\
        Canada | ⊥ | Mount Logan\n";

    #[test]
    fn format_row_round_trips_through_parse_row() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::Null, Value::str("Air Show")],
            vec![Value::float(4.5), Value::Bool(true), Value::str("42")],
            vec![
                Value::str("pipes | and \"quotes\""),
                Value::str("new\nline"),
                Value::str(" padded "),
            ],
        ];
        for row in rows {
            let line = format_row(&row);
            // Wire framing: one row, ONE line, whatever the values hold.
            assert!(!line.contains('\n'), "embedded newline leaked: {line:?}");
            assert_eq!(parse_row(&line), row, "row diverged through {line:?}");
        }
        assert_eq!(format_row(&[]), "");
    }

    #[test]
    fn parse_round_trip() {
        let db = parse_database(SAMPLE).unwrap();
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.num_tuples(), 4);
        let sites = db.relation_by_name("Sites").unwrap();
        assert_eq!(sites.len(), 2);
        assert!(sites.row(1)[1].is_null());
        assert_eq!(sites.row(0)[2], Value::str("Air Show"));
    }

    #[test]
    fn value_parsing_types() {
        assert_eq!(parse_value("42"), Value::Int(42));
        assert_eq!(parse_value("4.5"), Value::float(4.5));
        assert_eq!(parse_value("true"), Value::Bool(true));
        assert_eq!(parse_value("⊥"), Value::Null);
        assert_eq!(parse_value("_"), Value::Null);
        assert_eq!(parse_value("Plaza"), Value::str("Plaza"));
        assert_eq!(parse_value(" padded "), Value::str("padded"));
    }

    #[test]
    fn nan_tokens_become_strings_instead_of_panicking() {
        // "nan" parses as an f64 NaN, which `Value::try_float` rejects;
        // the token stays a string and the daemon's parse paths never
        // hit the panicking constructor.
        for s in ["nan", "NaN", "-nan", "+NaN"] {
            assert_eq!(parse_value(s), Value::str(s), "token {s:?}");
        }
        assert_eq!(parse_row("nan | 1"), vec![Value::str("nan"), Value::Int(1)]);
    }

    #[test]
    fn arity_errors_are_reported_with_line_numbers() {
        let bad = "relation R(A, B)\n1 | 2 | 3\n";
        let err = parse_database(bad).unwrap_err();
        assert!(matches!(err, RelationalError::Parse { line: 2, .. }));
    }

    #[test]
    fn row_before_header_is_an_error() {
        let bad = "1 | 2\n";
        assert!(matches!(
            parse_database(bad),
            Err(RelationalError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn missing_paren_is_an_error() {
        assert!(parse_database("relation R A, B)\n").is_err());
        assert!(parse_database("relation R(A, B\n").is_err());
    }

    #[test]
    fn format_relation_aligns_columns() {
        let db = parse_database(SAMPLE).unwrap();
        let txt = format_relation(&db, RelId(0));
        assert!(txt.starts_with("relation Climates(Country, Climate)"));
        assert!(txt.contains("Canada"));
        assert_eq!(txt.lines().count(), 3); // header + two rows
    }

    #[test]
    fn format_database_round_trips() {
        let db = parse_database(SAMPLE).unwrap();
        let txt = format_database(&db);
        let back = parse_database(&txt).unwrap();
        assert_eq!(db.num_relations(), back.num_relations());
        assert_eq!(db.num_tuples(), back.num_tuples());
        for (a, b) in db.relations().iter().zip(back.relations()) {
            assert_eq!(a.name(), b.name());
            let rows_a: Vec<_> = a.rows().collect();
            let rows_b: Vec<_> = b.rows().collect();
            assert_eq!(rows_a, rows_b);
        }
    }

    #[test]
    fn adversarial_strings_round_trip_through_tokens() {
        for s in [
            "",
            " ",
            "a|b",
            "he said \"hi\"",
            "back\\slash",
            "42",
            "4.5",
            "true",
            "null",
            "_",
            "⊥",
            "relation",
            "relation X(b)",
            "# not a comment",
            "line\nbreak",
            "tab\tsep",
            " padded ",
        ] {
            let v = Value::str(s);
            let tok = format_value(&v);
            assert_eq!(parse_value(&tok), v, "token {tok:?}");
        }
    }

    #[test]
    fn pipes_inside_quotes_do_not_split_cells() {
        let text = "relation R(A, B)\n\"a|b\" | 7\n";
        let db = parse_database(text).unwrap();
        let r = db.relation_by_name("R").unwrap();
        assert_eq!(r.row(0)[0], Value::str("a|b"));
        assert_eq!(r.row(0)[1], Value::Int(7));
    }

    #[test]
    fn floats_keep_their_type_through_round_trip() {
        assert_eq!(
            parse_value(&format_value(&Value::float(1.0))),
            Value::float(1.0)
        );
        assert_eq!(parse_value(&format_value(&Value::Int(1))), Value::Int(1));
        assert_eq!(
            parse_value(&format_value(&Value::float(0.5))),
            Value::float(0.5)
        );
    }
}
