//! Null-aware natural joins over derived (schema-carrying) relations.
//!
//! The paper's baselines need classical operators: the natural join (for
//! the NP-hardness reduction of Prop. 5.1 and the join-emptiness oracle)
//! and the binary full outerjoin (for the Rajaraman–Ullman 1996 baseline,
//! see [`crate::outerjoin`]). Matching follows the paper's null semantics:
//! a shared attribute matches only when both values are **equal and
//! non-null**.

use crate::database::Database;
use crate::fxhash::FxHashMap;
use crate::ids::{AttrId, RelId};
use crate::value::Value;

/// An intermediate relation whose schema is an explicit, ascending
/// attribute list. Source relations are converted into this form before
/// algebraic operators run over them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivedRelation {
    /// Attributes in ascending id order.
    pub attrs: Vec<AttrId>,
    /// Rows aligned with `attrs`.
    pub rows: Vec<Box<[Value]>>,
}

impl DerivedRelation {
    /// An empty relation over the given (ascending) attributes.
    pub fn empty(mut attrs: Vec<AttrId>) -> Self {
        attrs.sort_unstable();
        attrs.dedup();
        DerivedRelation {
            attrs,
            rows: Vec::new(),
        }
    }

    /// Converts a stored relation, reordering columns to ascending
    /// attribute order.
    pub fn from_relation(db: &Database, rel: RelId) -> Self {
        let r = db.relation(rel);
        let by_attr = r.schema().columns_by_attr();
        let attrs: Vec<AttrId> = by_attr.iter().map(|&(a, _)| a).collect();
        let rows = r
            .rows()
            .map(|row| {
                by_attr
                    .iter()
                    .map(|&(_, col)| row[col as usize].clone())
                    .collect::<Box<[Value]>>()
            })
            .collect();
        DerivedRelation { attrs, rows }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Position of `attr` in this relation's column list.
    #[inline]
    pub fn column_of(&self, attr: AttrId) -> Option<usize> {
        self.attrs.binary_search(&attr).ok()
    }

    /// Sorts rows lexicographically and removes exact duplicates.
    pub fn sort_dedup(&mut self) {
        self.rows.sort_unstable();
        self.rows.dedup();
    }
}

/// Column bookkeeping shared by join operators: which columns of `a`/`b`
/// are join columns, and how output columns map back to input columns.
struct JoinPlan {
    /// Output attribute list (sorted union).
    out_attrs: Vec<AttrId>,
    /// For each output column: `(from_b, input_column)`. Shared attributes
    /// read from side `a`.
    out_src: Vec<(bool, usize)>,
    /// Columns of `a` that are shared with `b`.
    a_key: Vec<usize>,
    /// Columns of `b` that are shared with `a`, aligned with `a_key`.
    b_key: Vec<usize>,
}

fn plan(a: &DerivedRelation, b: &DerivedRelation) -> JoinPlan {
    let mut out_attrs = Vec::with_capacity(a.attrs.len() + b.attrs.len());
    let mut out_src = Vec::with_capacity(a.attrs.len() + b.attrs.len());
    let mut a_key = Vec::new();
    let mut b_key = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.attrs.len() || j < b.attrs.len() {
        if j >= b.attrs.len() || (i < a.attrs.len() && a.attrs[i] < b.attrs[j]) {
            out_attrs.push(a.attrs[i]);
            out_src.push((false, i));
            i += 1;
        } else if i >= a.attrs.len() || b.attrs[j] < a.attrs[i] {
            out_attrs.push(b.attrs[j]);
            out_src.push((true, j));
            j += 1;
        } else {
            out_attrs.push(a.attrs[i]);
            out_src.push((false, i));
            a_key.push(i);
            b_key.push(j);
            i += 1;
            j += 1;
        }
    }
    JoinPlan {
        out_attrs,
        out_src,
        a_key,
        b_key,
    }
}

/// A hashable join key; `None` when any key column is null (null never
/// matches anything, per the paper's join-consistency semantics).
fn key_of(row: &[Value], cols: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(cols.len());
    for &c in cols {
        if row[c].is_null() {
            return None;
        }
        key.push(row[c].clone());
    }
    Some(key)
}

fn merge_rows(p: &JoinPlan, ra: &[Value], rb: &[Value]) -> Box<[Value]> {
    p.out_src
        .iter()
        .map(|&(from_b, c)| if from_b { rb[c].clone() } else { ra[c].clone() })
        .collect()
}

/// Null-aware natural join. With no shared attributes this degenerates to
/// the Cartesian product (standard natural-join semantics).
///
/// Hash join: builds on the smaller input, probes with the larger.
pub fn natural_join(a: &DerivedRelation, b: &DerivedRelation) -> DerivedRelation {
    // Build on the smaller side (perf-book: cheapest-side hash build).
    let (build, probe, swapped) = if a.len() <= b.len() {
        (a, b, false)
    } else {
        (b, a, true)
    };
    let p = plan(a, b);
    let (build_key, probe_key) = if swapped {
        (p.b_key.clone(), p.a_key.clone())
    } else {
        (p.a_key.clone(), p.b_key.clone())
    };

    let mut table: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
    for (idx, row) in build.rows.iter().enumerate() {
        if let Some(k) = key_of(row, &build_key) {
            table.entry(k).or_default().push(idx);
        }
    }

    let mut out = DerivedRelation {
        attrs: p.out_attrs.clone(),
        rows: Vec::new(),
    };
    if p.a_key.is_empty() {
        // Cartesian product.
        for ra in &a.rows {
            for rb in &b.rows {
                out.rows.push(merge_rows(&p, ra, rb));
            }
        }
        return out;
    }
    for prow in &probe.rows {
        let Some(k) = key_of(prow, &probe_key) else {
            continue;
        };
        if let Some(matches) = table.get(&k) {
            for &bidx in matches {
                let brow = &build.rows[bidx];
                let (ra, rb) = if swapped { (prow, brow) } else { (brow, prow) };
                out.rows.push(merge_rows(&p, &ra[..], &rb[..]));
            }
        }
    }
    out
}

/// Natural join of many relations, left to right.
pub fn natural_join_all(db: &Database, rels: &[RelId]) -> DerivedRelation {
    assert!(
        !rels.is_empty(),
        "natural_join_all needs at least one relation"
    );
    let mut acc = DerivedRelation::from_relation(db, rels[0]);
    for &r in &rels[1..] {
        acc = natural_join(&acc, &DerivedRelation::from_relation(db, r));
    }
    acc
}

/// Full outerjoin building blocks, shared with [`crate::outerjoin`]:
/// returns `(joined, a_matched, b_matched)` flags alongside the inner join.
pub(crate) fn join_with_match_flags(
    a: &DerivedRelation,
    b: &DerivedRelation,
) -> (DerivedRelation, Vec<bool>, Vec<bool>, JoinColumns) {
    let p = plan(a, b);
    let mut table: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
    for (idx, row) in a.rows.iter().enumerate() {
        if let Some(k) = key_of(row, &p.a_key) {
            table.entry(k).or_default().push(idx);
        }
    }
    let mut a_matched = vec![false; a.len()];
    let mut b_matched = vec![false; b.len()];
    let mut out = DerivedRelation {
        attrs: p.out_attrs.clone(),
        rows: Vec::new(),
    };
    for (jdx, brow) in b.rows.iter().enumerate() {
        let Some(k) = key_of(brow, &p.b_key) else {
            continue;
        };
        if let Some(matches) = table.get(&k) {
            for &idx in matches {
                a_matched[idx] = true;
                b_matched[jdx] = true;
                out.rows.push(merge_rows(&p, &a.rows[idx], brow));
            }
        }
    }
    let cols = JoinColumns {
        out_src: p.out_src,
        a_arity: a.attrs.len(),
    };
    (out, a_matched, b_matched, cols)
}

/// Output-column provenance needed to pad dangling rows.
pub(crate) struct JoinColumns {
    /// `(from_b, input_column)` per output column.
    pub out_src: Vec<(bool, usize)>,
    /// Arity of the left input.
    pub a_arity: usize,
}

impl JoinColumns {
    /// Pads a left-side row into the output schema (nulls for b-only
    /// columns).
    pub(crate) fn pad_left(&self, ra: &[Value]) -> Box<[Value]> {
        self.out_src
            .iter()
            .map(|&(from_b, c)| if from_b { Value::Null } else { ra[c].clone() })
            .collect()
    }

    /// Pads a right-side row into the output schema. Shared columns come
    /// from the left in `out_src`, so recover them from `b` via the fact
    /// that shared attrs exist in both: for a dangling `b` row the shared
    /// values are `b`'s own.
    pub(crate) fn pad_right(
        &self,
        b: &DerivedRelation,
        attrs: &[AttrId],
        rb: &[Value],
    ) -> Box<[Value]> {
        attrs
            .iter()
            .map(|a| match b.column_of(*a) {
                Some(c) => rb[c].clone(),
                None => Value::Null,
            })
            .collect()
    }

    /// Arity of the left input (used by tests).
    #[allow(dead_code)]
    pub(crate) fn left_arity(&self) -> usize {
        self.a_arity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use crate::value::NULL;

    fn two_rel_db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A", "B"])
            .row([1, 10])
            .row([2, 20])
            .row_values(vec![3.into(), NULL]);
        b.relation("S", &["B", "C"])
            .row([10, 100])
            .row([10, 101])
            .row([30, 300]);
        b.build().unwrap()
    }

    #[test]
    fn natural_join_matches_on_shared_attrs() {
        let db = two_rel_db();
        let out = natural_join_all(&db, &[RelId(0), RelId(1)]);
        // Only B=10 matches, twice.
        assert_eq!(out.len(), 2);
        assert_eq!(out.attrs.len(), 3);
        let mut cs: Vec<i64> = out
            .rows
            .iter()
            .map(|r| match &r[2] {
                Value::Int(i) => *i,
                v => panic!("unexpected {v:?}"),
            })
            .collect();
        cs.sort_unstable();
        assert_eq!(cs, vec![100, 101]);
    }

    #[test]
    fn null_join_keys_never_match() {
        let db = two_rel_db();
        let r = DerivedRelation::from_relation(&db, RelId(0));
        let s = DerivedRelation::from_relation(&db, RelId(1));
        let out = natural_join(&r, &s);
        // Row (3, ⊥) contributes nothing even though S has rows.
        assert!(out.rows.iter().all(|row| row[0] != Value::Int(3)));
    }

    #[test]
    fn disjoint_schemas_produce_cartesian_product() {
        let mut b = DatabaseBuilder::new();
        b.relation("X", &["A"]).row([1]).row([2]);
        b.relation("Y", &["B"]).row([7]).row([8]).row([9]);
        let db = b.build().unwrap();
        let out = natural_join_all(&db, &[RelId(0), RelId(1)]);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn join_result_column_order_is_ascending_attrs() {
        let db = two_rel_db();
        let out = natural_join_all(&db, &[RelId(0), RelId(1)]);
        let mut sorted = out.attrs.clone();
        sorted.sort_unstable();
        assert_eq!(out.attrs, sorted);
    }

    #[test]
    fn sort_dedup_removes_duplicates() {
        let mut r = DerivedRelation::empty(vec![AttrId(0)]);
        r.rows.push(Box::new([Value::Int(1)]));
        r.rows.push(Box::new([Value::Int(1)]));
        r.rows.push(Box::new([Value::Int(0)]));
        r.sort_dedup();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0], Value::Int(0));
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let a = DerivedRelation::empty(vec![AttrId(0), AttrId(1)]);
        let b = DerivedRelation::empty(vec![AttrId(1), AttrId(2)]);
        assert!(natural_join(&a, &b).is_empty());
    }

    #[test]
    fn build_side_swap_is_transparent() {
        // Larger left side forces the swapped code path.
        let mut a = DerivedRelation::empty(vec![AttrId(0)]);
        for i in 0..10 {
            a.rows.push(Box::new([Value::Int(i)]));
        }
        let mut b = DerivedRelation::empty(vec![AttrId(0)]);
        b.rows.push(Box::new([Value::Int(3)]));
        let out1 = natural_join(&a, &b);
        let out2 = natural_join(&b, &a);
        assert_eq!(out1.len(), 1);
        assert_eq!(out2.len(), 1);
        assert_eq!(out1.rows[0], out2.rows[0]);
    }
}
