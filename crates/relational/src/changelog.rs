//! Mutation descriptions and histories for dynamic databases.
//!
//! A [`Delta`] describes one *pending* mutation — the unit the live
//! maintenance engine applies; a [`Change`] records a mutation that
//! *happened* (with the tuple id the database assigned); a [`ChangeLog`]
//! accumulates the realized history so replicas, audits and tests can
//! replay it.

use crate::database::Database;
use crate::error::Result;
use crate::ids::{RelId, TupleId};
use crate::value::Value;

/// One pending mutation against a [`Database`].
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// Insert a tuple with the given values into a relation.
    Insert {
        /// Target relation.
        rel: RelId,
        /// Row values in the relation's column order.
        values: Vec<Value>,
    },
    /// Remove (tombstone) the tuple with this id.
    Delete {
        /// The tuple to remove.
        tuple: TupleId,
    },
}

/// A realized mutation: what a [`Delta`] became once applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Change {
    /// A tuple was inserted and received this id.
    Inserted {
        /// The relation inserted into.
        rel: RelId,
        /// The id the database allocated.
        tuple: TupleId,
    },
    /// A tuple was tombstoned.
    Removed {
        /// The relation the tuple belonged to.
        rel: RelId,
        /// The removed tuple's id.
        tuple: TupleId,
    },
}

impl Change {
    /// The tuple the change concerns.
    pub fn tuple(&self) -> TupleId {
        match *self {
            Change::Inserted { tuple, .. } | Change::Removed { tuple, .. } => tuple,
        }
    }
}

/// An append-only history of realized mutations.
#[derive(Debug, Clone, Default)]
pub struct ChangeLog {
    changes: Vec<Change>,
}

impl ChangeLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a realized change.
    pub fn record(&mut self, change: Change) {
        self.changes.push(change);
    }

    /// Number of recorded changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// The recorded changes, oldest first.
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }
}

/// Applies a delta to a database, returning the realized [`Change`].
pub fn apply_delta(db: &mut Database, delta: Delta) -> Result<Change> {
    match delta {
        Delta::Insert { rel, values } => {
            let tuple = db.insert_tuple(rel, values)?;
            Ok(Change::Inserted { rel, tuple })
        }
        Delta::Delete { tuple } => {
            if !db.is_live(tuple) {
                return Err(crate::error::RelationalError::NoSuchTuple { id: tuple.0 });
            }
            let rel = db.rel_of(tuple);
            db.remove_tuple(tuple)?;
            Ok(Change::Removed { rel, tuple })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tourist_database;

    #[test]
    fn deltas_apply_and_log() {
        let mut db = tourist_database();
        let mut log = ChangeLog::new();
        let c1 = apply_delta(
            &mut db,
            Delta::Insert {
                rel: RelId(0),
                values: vec!["Chile".into(), "arid".into()],
            },
        )
        .unwrap();
        log.record(c1);
        assert_eq!(c1.tuple(), TupleId(10));
        let c2 = apply_delta(&mut db, Delta::Delete { tuple: TupleId(0) }).unwrap();
        log.record(c2);
        assert_eq!(
            log.changes(),
            &[
                Change::Inserted {
                    rel: RelId(0),
                    tuple: TupleId(10)
                },
                Change::Removed {
                    rel: RelId(0),
                    tuple: TupleId(0)
                },
            ]
        );
        assert_eq!(db.num_tuples(), 10);
    }

    #[test]
    fn deleting_a_dead_tuple_is_an_error() {
        let mut db = tourist_database();
        apply_delta(&mut db, Delta::Delete { tuple: TupleId(3) }).unwrap();
        assert!(apply_delta(&mut db, Delta::Delete { tuple: TupleId(3) }).is_err());
    }
}
