//! Mutation descriptions and histories for dynamic databases.
//!
//! A [`Delta`] describes one *pending* mutation — the unit the live
//! maintenance engine applies; a [`DeltaBatch`] groups several pending
//! mutations into one transactional unit (what a session commits with a
//! single maintenance pass); a [`Change`] records a mutation that
//! *happened* (with the tuple id the database assigned); a [`ChangeLog`]
//! accumulates the realized history — grouped by commit — so replicas,
//! audits and tests can replay it batch by batch.

use crate::database::Database;
use crate::error::Result;
use crate::ids::{RelId, TupleId};
use crate::value::Value;

/// One pending mutation against a [`Database`].
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// Insert a tuple with the given values into a relation.
    Insert {
        /// Target relation.
        rel: RelId,
        /// Row values in the relation's column order.
        values: Vec<Value>,
    },
    /// Remove (tombstone) the tuple with this id.
    Delete {
        /// The tuple to remove.
        tuple: TupleId,
    },
}

/// An ordered group of pending mutations applied as one unit.
///
/// A batch is the argument of a transactional commit: every mutation is
/// validated up front, then all of them are applied to the [`Database`]
/// together ([`apply_batch`]) — either the whole batch lands or none of
/// it does — and downstream maintenance (the full-disjunction session)
/// runs **one** pass over the net change instead of one per mutation.
///
/// Deletes refer to tuple ids that are live *before* the batch; a tuple
/// inserted by the batch has no id until commit and cannot be deleted in
/// the same batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaBatch {
    deltas: Vec<Delta>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a tuple insertion.
    pub fn insert(&mut self, rel: RelId, values: Vec<Value>) -> &mut Self {
        self.deltas.push(Delta::Insert { rel, values });
        self
    }

    /// Queues a tuple deletion.
    pub fn delete(&mut self, tuple: TupleId) -> &mut Self {
        self.deltas.push(Delta::Delete { tuple });
        self
    }

    /// Queues an already-built [`Delta`].
    pub fn push(&mut self, delta: Delta) -> &mut Self {
        self.deltas.push(delta);
        self
    }

    /// Number of queued mutations.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// The queued mutations, in application order.
    pub fn deltas(&self) -> &[Delta] {
        &self.deltas
    }

    /// Consumes the batch, returning the queued mutations.
    pub fn into_deltas(self) -> Vec<Delta> {
        self.deltas
    }
}

impl From<Delta> for DeltaBatch {
    fn from(delta: Delta) -> Self {
        DeltaBatch {
            deltas: vec![delta],
        }
    }
}

impl FromIterator<Delta> for DeltaBatch {
    fn from_iter<I: IntoIterator<Item = Delta>>(iter: I) -> Self {
        DeltaBatch {
            deltas: iter.into_iter().collect(),
        }
    }
}

/// A realized mutation: what a [`Delta`] became once applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Change {
    /// A tuple was inserted and received this id.
    Inserted {
        /// The relation inserted into.
        rel: RelId,
        /// The id the database allocated.
        tuple: TupleId,
    },
    /// A tuple was tombstoned.
    Removed {
        /// The relation the tuple belonged to.
        rel: RelId,
        /// The removed tuple's id.
        tuple: TupleId,
    },
}

impl Change {
    /// The tuple the change concerns.
    pub fn tuple(&self) -> TupleId {
        match *self {
            Change::Inserted { tuple, .. } | Change::Removed { tuple, .. } => tuple,
        }
    }
}

/// An append-only history of realized mutations, grouped by commit.
///
/// Singleton mutations recorded through [`record`](Self::record) are
/// batches of one; a transactional commit records its whole group at
/// once through [`record_batch`](Self::record_batch), so replicas can
/// replay the history with the original commit boundaries intact.
#[derive(Debug, Clone, Default)]
pub struct ChangeLog {
    changes: Vec<Change>,
    /// End offset (exclusive) of each recorded batch, ascending.
    bounds: Vec<usize>,
}

impl ChangeLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a realized change as a batch of one.
    pub fn record(&mut self, change: Change) {
        self.changes.push(change);
        self.bounds.push(self.changes.len());
    }

    /// Records a group of realized changes as one batch. Empty groups
    /// are not recorded (an empty commit leaves no history).
    pub fn record_batch(&mut self, changes: impl IntoIterator<Item = Change>) {
        let before = self.changes.len();
        self.changes.extend(changes);
        if self.changes.len() > before {
            self.bounds.push(self.changes.len());
        }
    }

    /// Number of recorded changes (across all batches).
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of recorded batches (commits).
    pub fn num_batches(&self) -> usize {
        self.bounds.len()
    }

    /// The recorded changes, oldest first, flattened across batches.
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// The recorded batches, oldest first — each item is one commit's
    /// group of changes.
    pub fn batches(&self) -> impl Iterator<Item = &[Change]> {
        self.bounds.iter().scan(0usize, move |start, &end| {
            let batch = &self.changes[*start..end];
            *start = end;
            Some(batch)
        })
    }
}

/// Applies a delta to a database, returning the realized [`Change`].
pub fn apply_delta(db: &mut Database, delta: Delta) -> Result<Change> {
    match delta {
        Delta::Insert { rel, values } => {
            let tuple = db.insert_tuple(rel, values)?;
            Ok(Change::Inserted { rel, tuple })
        }
        Delta::Delete { tuple } => {
            if !db.is_live(tuple) {
                return Err(crate::error::RelationalError::NoSuchTuple { id: tuple.0 });
            }
            let rel = db.rel_of(tuple);
            db.remove_tuple(tuple)?;
            Ok(Change::Removed { rel, tuple })
        }
    }
}

/// Applies a whole batch to a database **atomically**: the batch is
/// validated up front without touching the database, so either every
/// mutation lands (returning the realized [`Change`]s, in order) or none
/// does and the database is untouched.
///
/// Validation covers everything [`Database::insert_tuple`] /
/// [`Database::remove_tuple`] can reject: unknown relations, arity
/// mismatches, id-space capacity, deletes of dead or unknown tuples —
/// including a tuple deleted *earlier in the same batch*.
pub fn apply_batch(db: &mut Database, batch: DeltaBatch) -> Result<Vec<Change>> {
    validate_batch(db, &batch)?;

    // Application pass: cannot fail after validation.
    let mut changes = Vec::with_capacity(batch.len());
    for delta in batch.into_deltas() {
        changes.push(apply_delta(db, delta).expect("validated batch mutations cannot fail"));
    }
    Ok(changes)
}

/// The validation pass of [`apply_batch`], as pure reads: succeeds iff
/// applying `batch` to `db` would succeed. Durable sessions call it
/// before appending the batch to a write-ahead log, so a batch that
/// would be rejected never reaches the log.
pub fn validate_batch(db: &Database, batch: &DeltaBatch) -> Result<()> {
    let mut pending_inserts: u64 = 0;
    let mut pending_deletes: Vec<TupleId> = Vec::new();
    for delta in batch.deltas() {
        match delta {
            Delta::Insert { rel, values } => {
                if rel.index() >= db.num_relations() {
                    return Err(crate::error::RelationalError::UnknownRelation {
                        relation: rel.to_string(),
                    });
                }
                let expected = db.relation(*rel).schema().arity();
                if values.len() != expected {
                    return Err(crate::error::RelationalError::ArityMismatch {
                        relation: db.relation(*rel).name().to_owned(),
                        expected,
                        got: values.len(),
                    });
                }
                pending_inserts += 1;
                if u64::from(db.tuple_id_bound()) + pending_inserts > u64::from(u32::MAX) {
                    return Err(crate::error::RelationalError::CapacityExceeded { what: "tuples" });
                }
            }
            Delta::Delete { tuple } => {
                if !db.is_live(*tuple) || pending_deletes.contains(tuple) {
                    return Err(crate::error::RelationalError::NoSuchTuple { id: tuple.0 });
                }
                pending_deletes.push(*tuple);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tourist_database;

    #[test]
    fn deltas_apply_and_log() {
        let mut db = tourist_database();
        let mut log = ChangeLog::new();
        let c1 = apply_delta(
            &mut db,
            Delta::Insert {
                rel: RelId(0),
                values: vec!["Chile".into(), "arid".into()],
            },
        )
        .unwrap();
        log.record(c1);
        assert_eq!(c1.tuple(), TupleId(10));
        let c2 = apply_delta(&mut db, Delta::Delete { tuple: TupleId(0) }).unwrap();
        log.record(c2);
        assert_eq!(
            log.changes(),
            &[
                Change::Inserted {
                    rel: RelId(0),
                    tuple: TupleId(10)
                },
                Change::Removed {
                    rel: RelId(0),
                    tuple: TupleId(0)
                },
            ]
        );
        assert_eq!(db.num_tuples(), 10);
    }

    #[test]
    fn deleting_a_dead_tuple_is_an_error() {
        let mut db = tourist_database();
        apply_delta(&mut db, Delta::Delete { tuple: TupleId(3) }).unwrap();
        assert!(apply_delta(&mut db, Delta::Delete { tuple: TupleId(3) }).is_err());
    }

    #[test]
    fn batches_apply_atomically() {
        let mut db = tourist_database();
        let mut batch = DeltaBatch::new();
        batch
            .insert(RelId(0), vec!["Chile".into(), "arid".into()])
            .delete(TupleId(0))
            .insert(RelId(0), vec!["Peru".into(), "arid".into()]);
        assert_eq!(batch.len(), 3);
        let changes = apply_batch(&mut db, batch).unwrap();
        assert_eq!(changes.len(), 3);
        assert_eq!(
            changes[0],
            Change::Inserted {
                rel: RelId(0),
                tuple: TupleId(10)
            }
        );
        assert_eq!(changes[2].tuple(), TupleId(11));
        assert!(!db.is_live(TupleId(0)));
        assert!(db.is_live(TupleId(11)));
    }

    #[test]
    fn invalid_batches_leave_the_database_untouched() {
        let mut db = tourist_database();
        let before_bound = db.tuple_id_bound();

        // A bad trailing mutation must roll back the whole batch.
        for bad in [
            Delta::Delete { tuple: TupleId(99) }, // unknown tuple
            Delta::Delete { tuple: TupleId(0) },  // duplicate delete (queued below)
            Delta::Insert {
                rel: RelId(7),
                values: vec![],
            }, // unknown relation
            Delta::Insert {
                rel: RelId(0),
                values: vec!["just-one".into()], // arity mismatch
            },
        ] {
            let mut batch = DeltaBatch::new();
            batch
                .insert(RelId(0), vec!["Chile".into(), "arid".into()])
                .delete(TupleId(0))
                .push(bad);
            assert!(apply_batch(&mut db, batch).is_err());
            assert_eq!(db.tuple_id_bound(), before_bound, "insert leaked");
            assert!(db.is_live(TupleId(0)), "delete leaked");
        }
    }

    #[test]
    fn changelog_groups_batches() {
        let mut db = tourist_database();
        let mut log = ChangeLog::new();
        log.record(apply_delta(&mut db, Delta::Delete { tuple: TupleId(3) }).unwrap());
        let mut batch = DeltaBatch::new();
        batch
            .insert(RelId(0), vec!["Chile".into(), "arid".into()])
            .delete(TupleId(0));
        log.record_batch(apply_batch(&mut db, batch).unwrap());
        log.record_batch(Vec::new()); // empty commits leave no history

        assert_eq!(log.len(), 3);
        assert_eq!(log.num_batches(), 2);
        let batches: Vec<&[Change]> = log.batches().collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 1);
        assert_eq!(batches[1].len(), 2);
        assert_eq!(batches[1][0].tuple(), TupleId(10));
    }
}
