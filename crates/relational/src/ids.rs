//! Interned identifiers for attributes, relations and tuples.
//!
//! The paper numbers relations `R1..Rn` and works with `Tuples(R)`, the set
//! of all tuples in the database, so tuples get a single global id space.
//! Small integer newtypes keep `TupleSet` compact (perf-book: smaller
//! integers at rest, widen to `usize` at use sites).

use std::fmt;

/// An interned attribute name. Attributes are global to a [`Database`]:
/// two relations are *connected* exactly when they share an `AttrId`.
///
/// [`Database`]: crate::Database
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u32);

/// An index into the database's relation list (the paper's subscript `i`
/// in `R1, …, Rn`, zero-based here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u16);

/// A global tuple identifier, unique across all relations of a database.
///
/// Ids are dense: relation `R0`'s tuples come first, then `R1`'s, and so
/// on, which lets the database map a `TupleId` back to its relation with a
/// binary search over range starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId(pub u32);

impl AttrId {
    /// Widens to an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelId {
    /// Widens to an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TupleId {
    /// Widens to an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_by_numeric_value() {
        assert!(TupleId(1) < TupleId(2));
        assert!(AttrId(0) < AttrId(10));
        assert!(RelId(3) > RelId(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(AttrId(1).to_string(), "a1");
        assert_eq!(RelId(2).to_string(), "R2");
        assert_eq!(TupleId(3).to_string(), "t3");
    }
}
