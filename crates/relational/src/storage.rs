//! Paged access paths with I/O accounting.
//!
//! Section 7 of the paper refines `INCREMENTALFD` from tuple-based to
//! *block-based* execution so it can live inside a real query processor.
//! Our substrate is in-memory, so we simulate the storage layer: relations
//! are viewed as sequences of fixed-capacity pages of tuples, and a
//! [`Pager`] counts page fetches. Benchmarks then report pages touched as
//! the I/O proxy, exactly the metric block-based execution improves.

use crate::database::Database;
use crate::ids::{RelId, TupleId};
use std::cell::Cell;
use std::ops::Range;

/// Simulated buffer-manager statistics.
#[derive(Debug, Default)]
pub struct IoStats {
    pages: Cell<u64>,
    tuples: Cell<u64>,
}

impl IoStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total pages fetched so far.
    pub fn pages_read(&self) -> u64 {
        self.pages.get()
    }

    /// Total tuples delivered so far.
    pub fn tuples_read(&self) -> u64 {
        self.tuples.get()
    }

    /// Resets both counters.
    pub fn reset(&self) {
        self.pages.set(0);
        self.tuples.set(0);
    }

    fn record(&self, tuples: u64) {
        self.pages.set(self.pages.get() + 1);
        self.tuples.set(self.tuples.get() + tuples);
    }
}

/// A page-granular view of a database. `page_size` is the number of tuples
/// per simulated page.
#[derive(Debug)]
pub struct Pager<'db> {
    db: &'db Database,
    page_size: usize,
    stats: IoStats,
}

impl<'db> Pager<'db> {
    /// Creates a pager with the given tuples-per-page capacity.
    ///
    /// # Panics
    /// Panics if `page_size` is zero.
    pub fn new(db: &'db Database, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Pager {
            db,
            page_size,
            stats: IoStats::new(),
        }
    }

    /// The underlying database.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// Tuples per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Number of pages a relation occupies.
    pub fn pages_of(&self, rel: RelId) -> usize {
        let n = self.db.tuples_of(rel).len();
        n.div_ceil(self.page_size)
    }

    /// Fetches one page of a relation: the global tuple-id range of page
    /// `page_no`, recording the fetch. Ranges may be shorter than
    /// `page_size` on the last page.
    pub fn fetch(&self, rel: RelId, page_no: usize) -> Range<u32> {
        let all = self.db.tuples_of(rel);
        let start = all.start + (page_no * self.page_size) as u32;
        let end = (start + self.page_size as u32).min(all.end);
        assert!(start < all.end, "page {page_no} out of range for {rel}");
        self.stats.record((end - start) as u64);
        start..end
    }

    /// Iterates all pages of a relation, recording each fetch lazily.
    pub fn scan<'p>(&'p self, rel: RelId) -> impl Iterator<Item = Vec<TupleId>> + 'p {
        (0..self.pages_of(rel)).map(move |p| self.fetch(rel, p).map(TupleId).collect())
    }

    /// Iterates pages of *all* relations in `R1..Rn` order — the access
    /// pattern of the paper's `foreach tuple tb` loops, block-wise.
    pub fn scan_all<'p>(&'p self) -> impl Iterator<Item = Vec<TupleId>> + 'p {
        (0..self.db.num_relations() as u16)
            .map(RelId)
            .flat_map(move |r| self.scan(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;

    fn db_with_rows(rows: usize) -> Database {
        let mut b = DatabaseBuilder::new();
        {
            let mut r = b.relation("R", &["A"]);
            for i in 0..rows {
                r.row([i as i64]);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn page_count_rounds_up() {
        let db = db_with_rows(10);
        let pager = Pager::new(&db, 4);
        assert_eq!(pager.pages_of(RelId(0)), 3);
    }

    #[test]
    fn fetch_records_io_and_partial_last_page() {
        let db = db_with_rows(10);
        let pager = Pager::new(&db, 4);
        assert_eq!(pager.fetch(RelId(0), 0), 0..4);
        assert_eq!(pager.fetch(RelId(0), 2), 8..10);
        assert_eq!(pager.stats().pages_read(), 2);
        assert_eq!(pager.stats().tuples_read(), 6);
        pager.stats().reset();
        assert_eq!(pager.stats().pages_read(), 0);
    }

    #[test]
    fn scan_visits_every_tuple_once() {
        let db = db_with_rows(10);
        let pager = Pager::new(&db, 3);
        let seen: Vec<u32> = pager.scan(RelId(0)).flatten().map(|t| t.0).collect();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(pager.stats().pages_read(), 4);
    }

    #[test]
    fn scan_all_covers_all_relations() {
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A"]).row([1]).row([2]);
        b.relation("S", &["A"]).row([3]);
        let db = b.build().unwrap();
        let pager = Pager::new(&db, 1);
        let seen: Vec<u32> = pager.scan_all().flatten().map(|t| t.0).collect();
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(pager.stats().pages_read(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fetch_past_end_panics() {
        let db = db_with_rows(4);
        let pager = Pager::new(&db, 4);
        let _ = pager.fetch(RelId(0), 1);
    }
}
