//! Paged access paths with I/O accounting.
//!
//! Section 7 of the paper refines `INCREMENTALFD` from tuple-based to
//! *block-based* execution so it can live inside a real query processor.
//! Our substrate is in-memory, so we simulate the storage layer: relations
//! are viewed as sequences of fixed-capacity pages of tuples, and a
//! [`Pager`] counts page fetches. Benchmarks then report pages touched as
//! the I/O proxy, exactly the metric block-based execution improves.

use crate::database::Database;
use crate::ids::{RelId, TupleId};
use std::cell::Cell;

/// Simulated buffer-manager statistics.
#[derive(Debug, Default)]
pub struct IoStats {
    pages: Cell<u64>,
    tuples: Cell<u64>,
}

impl IoStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total pages fetched so far.
    pub fn pages_read(&self) -> u64 {
        self.pages.get()
    }

    /// Total tuples delivered so far.
    pub fn tuples_read(&self) -> u64 {
        self.tuples.get()
    }

    /// Resets both counters.
    pub fn reset(&self) {
        self.pages.set(0);
        self.tuples.set(0);
    }

    fn record(&self, tuples: u64) {
        self.pages.set(self.pages.get() + 1);
        self.tuples.set(self.tuples.get() + tuples);
    }
}

/// A page-granular view of a database. `page_size` is the number of tuples
/// per simulated page.
///
/// Pages are laid out over the *live* tuples at construction time, so a
/// pager built against a mutated database neither resurrects tombstoned
/// tuples nor misses dynamic inserts. Algorithms construct a fresh pager
/// per run, which keeps the snapshot current.
#[derive(Debug)]
pub struct Pager<'db> {
    db: &'db Database,
    page_size: usize,
    /// Per-relation pages of live tuple ids.
    pages: Vec<Vec<Vec<TupleId>>>,
    stats: IoStats,
}

impl<'db> Pager<'db> {
    /// Creates a pager with the given tuples-per-page capacity.
    ///
    /// # Panics
    /// Panics if `page_size` is zero.
    pub fn new(db: &'db Database, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        let pages = (0..db.num_relations() as u16)
            .map(|r| {
                let live: Vec<TupleId> = db.tuples_of(RelId(r)).collect();
                live.chunks(page_size).map(<[TupleId]>::to_vec).collect()
            })
            .collect();
        Pager {
            db,
            page_size,
            pages,
            stats: IoStats::new(),
        }
    }

    /// The underlying database.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// Tuples per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Number of pages a relation occupies.
    pub fn pages_of(&self, rel: RelId) -> usize {
        self.pages[rel.index()].len()
    }

    /// Fetches one page of a relation: the live tuple ids of page
    /// `page_no`, recording the fetch. Pages may be shorter than
    /// `page_size` at the end of a relation.
    pub fn fetch(&self, rel: RelId, page_no: usize) -> &[TupleId] {
        let rel_pages = &self.pages[rel.index()];
        assert!(
            page_no < rel_pages.len(),
            "page {page_no} out of range for {rel}"
        );
        let page = &rel_pages[page_no];
        self.stats.record(page.len() as u64);
        page
    }

    /// Iterates all pages of a relation, recording each fetch lazily.
    pub fn scan<'p>(&'p self, rel: RelId) -> impl Iterator<Item = Vec<TupleId>> + 'p {
        (0..self.pages_of(rel)).map(move |p| self.fetch(rel, p).to_vec())
    }

    /// Iterates pages of *all* relations in `R1..Rn` order — the access
    /// pattern of the paper's `foreach tuple tb` loops, block-wise.
    pub fn scan_all<'p>(&'p self) -> impl Iterator<Item = Vec<TupleId>> + 'p {
        (0..self.db.num_relations() as u16)
            .map(RelId)
            .flat_map(move |r| self.scan(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;

    fn db_with_rows(rows: usize) -> Database {
        let mut b = DatabaseBuilder::new();
        {
            let mut r = b.relation("R", &["A"]);
            for i in 0..rows {
                r.row([i as i64]);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn page_count_rounds_up() {
        let db = db_with_rows(10);
        let pager = Pager::new(&db, 4);
        assert_eq!(pager.pages_of(RelId(0)), 3);
    }

    #[test]
    fn fetch_records_io_and_partial_last_page() {
        let db = db_with_rows(10);
        let pager = Pager::new(&db, 4);
        let ids = |page: &[TupleId]| page.iter().map(|t| t.0).collect::<Vec<_>>();
        assert_eq!(ids(pager.fetch(RelId(0), 0)), vec![0, 1, 2, 3]);
        assert_eq!(ids(pager.fetch(RelId(0), 2)), vec![8, 9]);
        assert_eq!(pager.stats().pages_read(), 2);
        assert_eq!(pager.stats().tuples_read(), 6);
        pager.stats().reset();
        assert_eq!(pager.stats().pages_read(), 0);
    }

    #[test]
    fn pages_skip_tombstones_and_include_inserts() {
        let mut db = db_with_rows(5);
        db.remove_tuple(TupleId(2)).unwrap();
        let t = db.insert_tuple(RelId(0), vec![99.into()]).unwrap();
        let pager = Pager::new(&db, 3);
        let seen: Vec<u32> = pager.scan(RelId(0)).flatten().map(|t| t.0).collect();
        assert_eq!(seen, vec![0, 1, 3, 4, t.0]);
        assert_eq!(pager.pages_of(RelId(0)), 2);
    }

    #[test]
    fn scan_visits_every_tuple_once() {
        let db = db_with_rows(10);
        let pager = Pager::new(&db, 3);
        let seen: Vec<u32> = pager.scan(RelId(0)).flatten().map(|t| t.0).collect();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(pager.stats().pages_read(), 4);
    }

    #[test]
    fn scan_all_covers_all_relations() {
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A"]).row([1]).row([2]);
        b.relation("S", &["A"]).row([3]);
        let db = b.build().unwrap();
        let pager = Pager::new(&db, 1);
        let seen: Vec<u32> = pager.scan_all().flatten().map(|t| t.0).collect();
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(pager.stats().pages_read(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fetch_past_end_panics() {
        let db = db_with_rows(4);
        let pager = Pager::new(&db, 4);
        let _ = pager.fetch(RelId(0), 1);
    }
}
