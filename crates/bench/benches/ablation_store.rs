//! E10 — Section 7 ablation: linked-list scans vs hash indexing of
//! `Complete`/`Incomplete` by the `Ri`-tuple. Expected shape: the
//! indexed engine's advantage grows with the output size (the scans are
//! the `f²` term of Theorem 4.8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_bench::{bench_chain, full_fd_with};
use fd_core::{FdConfig, StoreEngine};
use std::hint::black_box;

fn ablation_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_store_engine");
    group.sample_size(10);
    for rows in [10usize, 15, 20] {
        let db = bench_chain(4, rows);
        for engine in [StoreEngine::Scan, StoreEngine::Indexed] {
            let cfg = FdConfig {
                engine,
                ..FdConfig::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), rows),
                &db,
                |b, db| b.iter(|| black_box(full_fd_with(db, cfg))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, ablation_store);
criterion_main!(benches);
