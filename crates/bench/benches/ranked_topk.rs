//! E6 — ranked top-k (Theorem 5.5): `PRIORITYINCREMENTALFD` vs
//! materialize-everything-then-sort. Expected shape: the ranked
//! algorithm wins decisively for small k and converges toward the naive
//! cost as k approaches |FD|.
//!
//! The `query_builder` series runs the same computation through
//! `FdQuery` (one boxed vtable call per rank evaluation); its delta vs
//! `direct_iter` must stay within criterion noise — the builder is a
//! zero-overhead veneer over the direct iterator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_baselines::naive_top_k;
use fd_bench::bench_chain;
use fd_core::{top_k, FMax, FdQuery};
use fd_workloads::random_importance;
use std::hint::black_box;

fn ranked_topk(c: &mut Criterion) {
    let db = bench_chain(4, 24);
    let imp = random_importance(&db, 7);
    let f = FMax::new(&imp);
    let mut group = c.benchmark_group("e6_ranked_topk");
    group.sample_size(10);
    for k in [1usize, 10, 50] {
        group.bench_with_input(BenchmarkId::new("direct_iter", k), &k, |b, &k| {
            b.iter(|| black_box(top_k(&db, &f, k)))
        });
        group.bench_with_input(BenchmarkId::new("query_builder", k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    FdQuery::over(&db)
                        .ranked(&f)
                        .top_k(k)
                        .run()
                        .expect("valid ranked query")
                        .into_ranked()
                        .expect("ranked mode"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("full_then_sort", k), &k, |b, &k| {
            b.iter(|| black_box(naive_top_k(&db, &f, k)))
        });
    }
    group.finish();
}

criterion_group!(benches, ranked_topk);
criterion_main!(benches);
