//! E6 — ranked top-k (Theorem 5.5): `PRIORITYINCREMENTALFD` vs
//! materialize-everything-then-sort. Expected shape: the ranked
//! algorithm wins decisively for small k and converges toward the naive
//! cost as k approaches |FD|.
//!
//! The `query_builder` series runs the same computation through
//! `FdQuery`: one boxed vtable call per rank evaluation, plus the
//! deterministic-tie guarantee — the builder buffers one full tie group
//! ahead of the cursor, so on tie-heavy rankings a tiny k pays for the
//! first tie group where `direct_iter` (arbitrary tie order) stops at
//! exactly k. The `parallel_ranked` series is the sharded merge plan
//! (`.parallel(4)`): per-worker shard enumeration plus a k-way rank
//! merge, output-identical to the sequential builder plan; expect it to
//! trail for tiny k (no early exit inside a worker) and to approach the
//! naive full-enumeration cost divided by the useful core count as k
//! approaches |FD|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_baselines::naive_top_k;
use fd_bench::bench_chain;
use fd_core::{FMax, FdQuery, RankedFdIter};
use fd_workloads::random_importance;
use std::hint::black_box;

fn ranked_topk(c: &mut Criterion) {
    let db = bench_chain(4, 24);
    let imp = random_importance(&db, 7);
    let f = FMax::new(&imp);
    let mut group = c.benchmark_group("e6_ranked_topk");
    group.sample_size(10);
    for k in [1usize, 10, 50] {
        group.bench_with_input(BenchmarkId::new("direct_iter", k), &k, |b, &k| {
            b.iter(|| black_box(RankedFdIter::new(&db, &f).take(k).collect::<Vec<_>>()))
        });
        group.bench_with_input(BenchmarkId::new("query_builder", k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    FdQuery::over(&db)
                        .ranked(&f)
                        .top_k(k)
                        .run()
                        .expect("valid ranked query")
                        .into_ranked()
                        .expect("ranked mode"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel_ranked", k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    FdQuery::over(&db)
                        .ranked(&f)
                        .top_k(k)
                        .parallel(4)
                        .run()
                        .expect("valid parallel ranked query")
                        .into_ranked()
                        .expect("ranked mode"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("full_then_sort", k), &k, |b, &k| {
            b.iter(|| black_box(naive_top_k(&db, &f, k)))
        });
    }
    group.finish();
}

criterion_group!(benches, ranked_topk);
criterion_main!(benches);
