//! E11 — Section 7 ablation: the three `Incomplete` initialization
//! strategies for computing the full FD over all `i`. Expected shape:
//! the reuse strategies cut candidate scanning (restricted loops), with
//! trim-extend doing the most preprocessing per run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_bench::{bench_chain, full_fd_with};
use fd_core::{FdConfig, InitStrategy};
use std::hint::black_box;

fn ablation_init(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_init_strategy");
    group.sample_size(10);
    for rows in [16usize, 24] {
        let db = bench_chain(4, rows);
        for init in [
            InitStrategy::Singletons,
            InitStrategy::ReuseResults,
            InitStrategy::TrimExtend,
        ] {
            let cfg = FdConfig {
                init,
                ..FdConfig::default()
            };
            group.bench_with_input(BenchmarkId::new(format!("{init:?}"), rows), &db, |b, db| {
                b.iter(|| black_box(full_fd_with(db, cfg)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, ablation_init);
criterion_main!(benches);
