//! E7 — Proposition 5.1: the top-(1, f_sum) problem is NP-hard, so the
//! exact exhaustive search blows up exponentially with the number of
//! relations, while top-(1, f_max) — monotonically 1-determined — stays
//! polynomial. Expected shape: the f_sum series roughly multiplies per
//! added relation; the f_max series grows gently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_baselines::exhaustive_top1_fsum;
use fd_core::{FMax, ImpScores, RankedFdIter};
use fd_workloads::{chain, DataSpec};
use std::hint::black_box;

fn nphard(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_nphard_fsum");
    group.sample_size(10);
    for n in [2usize, 3, 4, 5] {
        let db = chain(n, &DataSpec::new(8, 2).seed(0xFD));
        let imp = ImpScores::uniform(&db, 1.0);
        group.bench_with_input(BenchmarkId::new("fsum_exhaustive", n), &db, |b, db| {
            b.iter(|| black_box(exhaustive_top1_fsum(db, &imp)))
        });
        let fmax = FMax::new(&imp);
        group.bench_with_input(BenchmarkId::new("fmax_ranked_top1", n), &db, |b, db| {
            b.iter(|| black_box(RankedFdIter::new(db, &fmax).take(1).collect::<Vec<_>>()))
        });
    }
    group.finish();
}

criterion_group!(benches, nphard);
criterion_main!(benches);
