//! E13 — parallel full disjunction: the `n` `INCREMENTALFD` runs are
//! independent (extension, Section 7 spirit). Expected shape: useful
//! speedup up to roughly `n` workers on schemas whose `FDi` runs have
//! comparable cost (stars), flattening beyond.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_bench::bench_star;
use fd_core::FdQuery;
use std::hint::black_box;

fn parallel(c: &mut Criterion) {
    let db = bench_star(5, 12);
    let mut group = c.benchmark_group("e13_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| black_box(FdQuery::over(&db).parallel(t).run().unwrap().into_sets()))
        });
    }
    group.finish();
}

criterion_group!(benches, parallel);
criterion_main!(benches);
