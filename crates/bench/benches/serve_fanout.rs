//! E15 — `fd serve` fan-out latency: commit-to-event delivery time.
//!
//! The daemon's pitch: a commit lands in one maintenance pass and its
//! net events are *pushed* to every subscribed client — no polling.
//! This harness measures that push path end to end over real sockets:
//! from just before the committing client sends its mutation line to
//! the instant each subscribed client reads the fanned-out `event`
//! line, at 1, 8 and 32 subscribers. Inserts use unique join values, so
//! every commit yields exactly one event and the numbers isolate the
//! serve/fan-out overhead rather than maintenance-pass cost (E14 covers
//! that axis).
//!
//! Run once and commit the output:
//!
//! ```sh
//! cargo bench --bench serve_fanout > BENCH_serve.json
//! ```

// A bench binary: progress notes go to stderr so stdout stays a clean,
// committable results table.
#![allow(clippy::print_stderr)]

use fd_core::serve::{Client, Server};
use fd_core::FdSession;
use fd_relational::tourist_database;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Commits measured per subscriber count (after warmup).
const COMMITS: usize = 100;

/// Commits discarded up front (thread spin-up, allocator warmup).
const WARMUP: usize = 5;

fn percentile(sorted_nanos: &[u128], p: f64) -> f64 {
    let idx = ((sorted_nanos.len() as f64 * p).ceil() as usize)
        .saturating_sub(1)
        .min(sorted_nanos.len() - 1);
    sorted_nanos[idx] as f64 / 1_000.0 // µs
}

/// One configuration: a fresh daemon, `clients` subscribed connections,
/// one committer issuing singleton inserts. Returns the sorted
/// commit-to-event latencies (nanoseconds), one sample per subscriber
/// per measured commit — the committer waits for every subscriber's
/// stamp before the next commit, so samples never cross commits.
fn fanout_latencies(clients: usize) -> Vec<u128> {
    let server = Server::start(FdSession::new(tourist_database()), "127.0.0.1:0")
        .expect("bind ephemeral port");
    let addr = server.addr();

    let (tx, rx) = mpsc::channel::<Instant>();
    let mut subscribers = Vec::with_capacity(clients);
    for _ in 0..clients {
        let mut client = Client::connect(addr).expect("connect");
        client.read_response().expect("greeting");
        client.request("subscribe").expect("subscribe");
        let tx = tx.clone();
        subscribers.push(std::thread::spawn(move || {
            // Stamp every pushed event line on receipt; EOF (daemon
            // shutdown) ends the loop.
            while let Ok(Some(line)) = client.read_line() {
                if line.starts_with("event ") {
                    let _ = tx.send(Instant::now());
                }
            }
        }));
    }
    drop(tx);

    let mut committer = Client::connect(addr).expect("connect");
    committer.read_response().expect("greeting");
    let mut latencies = Vec::with_capacity(COMMITS * clients);
    for i in 0..WARMUP + COMMITS {
        let sent = Instant::now();
        let reply = committer
            .request(&format!("insert Climates | Bench-{i} | arid"))
            .expect("insert");
        assert!(reply[0].starts_with("ok inserted"), "{reply:?}");
        for _ in 0..clients {
            let stamp = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("event delivery");
            if i >= WARMUP {
                latencies.push(stamp.saturating_duration_since(sent).as_nanos());
            }
        }
    }

    committer.request("shutdown").expect("shutdown");
    server.wait().expect("clean daemon exit");
    for sub in subscribers {
        sub.join().expect("subscriber thread");
    }
    latencies.sort_unstable();
    latencies
}

fn main() {
    // harness = false: cargo's --bench flag (and friends) need no parsing.
    let mut rows = Vec::new();
    for &clients in &[1usize, 8, 32] {
        let lat = fanout_latencies(clients);
        let p50 = percentile(&lat, 0.50);
        let p99 = percentile(&lat, 0.99);
        let max = *lat.last().expect("samples") as f64 / 1_000.0;
        eprintln!(
            "serve_fanout: {clients:>2} client(s)  p50 {p50:>8.1} µs  p99 {p99:>8.1} µs  \
             max {max:>8.1} µs  ({} samples)",
            lat.len()
        );
        rows.push(format!(
            "    {{ \"clients\": {clients}, \"samples\": {}, \"p50_us\": {p50:.1}, \
             \"p99_us\": {p99:.1}, \"max_us\": {max:.1} }}",
            lat.len()
        ));
    }
    println!("{{");
    println!("  \"bench\": \"serve_fanout\",");
    println!(
        "  \"description\": \"fd serve commit-to-event latency: from the committing client \
         sending a singleton insert to each subscribed client reading the pushed event line, \
         over loopback TCP\","
    );
    println!("  \"database\": \"tourist example + unique singleton inserts\",");
    println!("  \"warmup_commits\": {WARMUP},");
    println!("  \"measured_commits\": {COMMITS},");
    println!("  \"configs\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
