//! E14 — delta maintenance vs. full recomputation.
//!
//! The live-session pitch in one number: applying one tuple insert through
//! `delta_insert` (an `FDi` run seeded at `{t}`, Theorem 4.10) must beat
//! recomputing the entire full disjunction from scratch, and the gap must
//! widen with database size. Both sides see the identical post-insert
//! database; the delta side additionally gets the pre-insert results —
//! exactly what the live engine has on hand.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_bench::bench_chain;
use fd_core::delta::{delta_batch, delta_insert};
use fd_core::{FdConfig, TupleSet};
use fd_relational::{Database, RelId, TupleId, Value};
use std::hint::black_box;

/// A post-insert snapshot plus everything each contender needs.
struct Scenario {
    db: Database,
    inserted: TupleId,
    previous: Vec<fd_core::TupleSet>,
}

fn scenario(rows: usize) -> Scenario {
    let mut db = bench_chain(4, rows);
    let previous = fd_core::FdIter::with_config(&db, FdConfig::default()).collect();
    // A well-connected row: join values inside the generated domain.
    let inserted = db
        .insert_tuple(
            RelId(1),
            vec![Value::Int(0), Value::Int(1), Value::Int(9_999_999)],
        )
        .expect("insert");
    Scenario {
        db,
        inserted,
        previous,
    }
}

fn delta_vs_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_delta_maintenance");
    group.sample_size(10);
    for rows in [8usize, 16, 32] {
        let s = scenario(rows);
        group.bench_with_input(BenchmarkId::new("delta_insert", rows), &s, |b, s| {
            b.iter(|| {
                black_box(delta_insert(
                    &s.db,
                    s.inserted,
                    &s.previous,
                    FdConfig::default(),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("full_recompute", rows), &s, |b, s| {
            b.iter(|| {
                black_box(
                    fd_core::FdIter::with_config(&s.db, FdConfig::default()).collect::<Vec<_>>(),
                )
            })
        });
    }
    group.finish();
}

/// A pre-batch snapshot plus the 32 rows a batched commit will insert.
struct BatchScenario {
    db: Database,
    previous: Vec<TupleSet>,
    /// `(relation, values)` pairs, round-robin across the chain.
    rows: Vec<(RelId, Vec<Value>)>,
}

const BATCH_K: usize = 32;

fn batch_scenario(rows: usize) -> BatchScenario {
    let db = bench_chain(4, rows);
    let previous = fd_core::FdIter::with_config(&db, FdConfig::default()).collect();
    let domain = (rows / 4).max(2) as i64;
    // The overlapping-insert shape batched commits exist for: each group
    // of 4 rows spans the whole chain and joins *each other* through
    // fresh values (1000+g·10+r — unseen in the base data), anchored to
    // the existing rows through the group's first join column. A
    // singleton replay derives every growing prefix of a group and then
    // subsumes it one insert later; the batch's single multi-seed run
    // derives only each group's final sets.
    let rows = (0..BATCH_K)
        .map(|i| {
            let rel = (i % 4) as i64;
            let group = (i / 4) as i64;
            let left = if rel == 0 {
                group % domain // anchor to the base join domain
            } else {
                1_000 + group * 10 + rel
            };
            (
                RelId(rel as u16),
                vec![
                    Value::Int(left),
                    Value::Int(1_000 + group * 10 + rel + 1),
                    Value::Int(9_000_000 + i as i64),
                ],
            )
        })
        .collect();
    BatchScenario { db, previous, rows }
}

/// The session's `commit` arithmetic for one singleton insert delta,
/// applied to a materialized result list.
fn apply_insert_delta(previous: &mut Vec<TupleSet>, d: fd_core::InsertDelta) {
    previous.retain(|s| !d.subsumed.contains(s));
    previous.extend(d.added);
}

/// E14b — `batch_commit`: one 32-mutation commit (single maintenance
/// pass, multi-seed FDi run) vs 32 singleton applies vs recomputing the
/// full disjunction of the post-batch database.
fn batch_vs_singletons(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_batch_commit");
    group.sample_size(10);
    for rows in [16usize, 32, 64] {
        let s = batch_scenario(rows);
        group.bench_with_input(BenchmarkId::new("batch_commit", rows), &s, |b, s| {
            b.iter(|| {
                let mut db = s.db.clone();
                let inserted: Vec<TupleId> = s
                    .rows
                    .iter()
                    .map(|(rel, row)| db.insert_tuple(*rel, row.clone()).expect("insert"))
                    .collect();
                black_box(delta_batch(
                    &db,
                    &inserted,
                    &[],
                    &s.previous,
                    FdConfig::default(),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("singleton_applies", rows), &s, |b, s| {
            b.iter(|| {
                let mut db = s.db.clone();
                let mut previous = s.previous.clone();
                for (rel, row) in &s.rows {
                    let t = db.insert_tuple(*rel, row.clone()).expect("insert");
                    let d = delta_insert(&db, t, &previous, FdConfig::default());
                    apply_insert_delta(&mut previous, d);
                }
                black_box(previous)
            })
        });
        group.bench_with_input(BenchmarkId::new("full_recompute", rows), &s, |b, s| {
            b.iter(|| {
                let mut db = s.db.clone();
                for (rel, row) in &s.rows {
                    db.insert_tuple(*rel, row.clone()).expect("insert");
                }
                black_box(
                    fd_core::FdIter::with_config(&db, FdConfig::default()).collect::<Vec<_>>(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, delta_vs_recompute, batch_vs_singletons);
criterion_main!(benches);
