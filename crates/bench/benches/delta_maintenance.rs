//! E14 — delta maintenance vs. full recomputation.
//!
//! The `fd-live` pitch in one number: applying one tuple insert through
//! `delta_insert` (an `FDi` run seeded at `{t}`, Theorem 4.10) must beat
//! recomputing the entire full disjunction from scratch, and the gap must
//! widen with database size. Both sides see the identical post-insert
//! database; the delta side additionally gets the pre-insert results —
//! exactly what the live engine has on hand.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_bench::bench_chain;
use fd_core::delta::delta_insert;
use fd_core::FdConfig;
use fd_relational::{Database, RelId, TupleId, Value};
use std::hint::black_box;

/// A post-insert snapshot plus everything each contender needs.
struct Scenario {
    db: Database,
    inserted: TupleId,
    previous: Vec<fd_core::TupleSet>,
}

fn scenario(rows: usize) -> Scenario {
    let mut db = bench_chain(4, rows);
    let previous = fd_core::FdIter::with_config(&db, FdConfig::default()).collect();
    // A well-connected row: join values inside the generated domain.
    let inserted = db
        .insert_tuple(
            RelId(1),
            vec![Value::Int(0), Value::Int(1), Value::Int(9_999_999)],
        )
        .expect("insert");
    Scenario {
        db,
        inserted,
        previous,
    }
}

fn delta_vs_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_delta_maintenance");
    group.sample_size(10);
    for rows in [8usize, 16, 32] {
        let s = scenario(rows);
        group.bench_with_input(BenchmarkId::new("delta_insert", rows), &s, |b, s| {
            b.iter(|| {
                black_box(delta_insert(
                    &s.db,
                    s.inserted,
                    &s.previous,
                    FdConfig::default(),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("full_recompute", rows), &s, |b, s| {
            b.iter(|| {
                black_box(
                    fd_core::FdIter::with_config(&s.db, FdConfig::default()).collect::<Vec<_>>(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, delta_vs_recompute);
criterion_main!(benches);
