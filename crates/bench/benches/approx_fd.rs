//! E9 — approximate full disjunctions (Theorem 6.6): `A_min` over
//! edit-distance similarity across thresholds, `A_prod`, and the exact
//! algorithm as the reference point. Expected shape: cost grows as τ
//! drops (more acceptable sets to manage), with `A_min` comfortably
//! polynomial throughout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_bench::{approx_fd as afd, bench_noisy_chain, full_fd};
use fd_core::{AMin, AProd, EditDistanceSim, ProbScores};
use std::hint::black_box;

fn approx(c: &mut Criterion) {
    let db = bench_noisy_chain(3, 24, 0.3);
    let amin = AMin::new(EditDistanceSim, ProbScores::uniform(&db, 1.0));
    let aprod = AProd::new(EditDistanceSim);
    let mut group = c.benchmark_group("e9_approx_fd");
    group.sample_size(10);
    group.bench_function("exact_fd", |b| b.iter(|| black_box(full_fd(&db))));
    for tau in [0.95f64, 0.85, 0.75] {
        group.bench_with_input(
            BenchmarkId::new("amin", format!("tau{tau}")),
            &tau,
            |b, &tau| b.iter(|| black_box(afd(&db, &amin, tau))),
        );
    }
    group.bench_function("aprod/tau0.8", |b| {
        b.iter(|| black_box(afd(&db, &aprod, 0.8)))
    });
    group.finish();
}

criterion_group!(benches, approx);
criterion_main!(benches);
