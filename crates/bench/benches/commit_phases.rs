//! E16 — commit-phase latency under churn.
//!
//! The observability layer's pitch: every session commit is broken into
//! validate / maintain / window / fanout phases whose latencies land in
//! the session registry's log-bucketed histograms — the same numbers a
//! `metrics` scrape or the `--metrics-addr` endpoint reports. This
//! harness exercises a 64-row 4-relation chain under sustained churn
//! (insert a well-connected batch, commit, delete it, commit) with one
//! subscribed sink, then reads the per-phase summaries straight out of
//! the registry the instrumentation populated. It doubles as an
//! overhead proof: the numbers come from production counters, not an
//! external stopwatch.
//!
//! Run once and commit the output:
//!
//! ```sh
//! cargo bench --bench commit_phases > BENCH_commit_phases.json
//! ```

// A bench binary: progress notes go to stderr so stdout stays a clean,
// committable results table.
#![allow(clippy::print_stderr)]

use fd_bench::bench_chain;
use fd_core::session::{DeltaBatch, FdSession, VecSink};
use fd_relational::{RelId, TupleId, Value};

/// Measured insert+delete rounds (two commits per round).
const ROUNDS: usize = 100;

/// Rows per inserted batch.
const BATCH_K: usize = 8;

/// Chain relations / base rows per relation.
const CHAIN_N: usize = 4;
const CHAIN_ROWS: usize = 64;

/// The churn batch: well-connected rows round-robin across the chain,
/// the same shape E14's batch scenario commits (join values inside the
/// generated domain on relation 0, fresh chain links elsewhere).
fn churn_rows(round: usize) -> Vec<(RelId, Vec<Value>)> {
    let domain = (CHAIN_ROWS / CHAIN_N).max(2) as i64;
    (0..BATCH_K)
        .map(|i| {
            let rel = (i % CHAIN_N) as i64;
            let group = (round * BATCH_K + i / CHAIN_N) as i64;
            let left = if rel == 0 {
                group % domain
            } else {
                1_000 + group * 10 + rel
            };
            (
                RelId(rel as u16),
                vec![
                    Value::Int(left),
                    Value::Int(1_000 + group * 10 + rel + 1),
                    Value::Int(9_000_000 + (round * BATCH_K + i) as i64),
                ],
            )
        })
        .collect()
}

fn main() {
    // harness = false: cargo's --bench flag (and friends) need no parsing.
    let mut session = FdSession::new(bench_chain(CHAIN_N, CHAIN_ROWS));
    let sink = VecSink::new();
    session.subscribe(sink.clone());
    let base_results = session.len();

    let mut commits = 0usize;
    for round in 0..ROUNDS {
        let mut batch = DeltaBatch::new();
        for (rel, values) in churn_rows(round) {
            batch.insert(rel, values);
        }
        let commit = session.commit(batch).expect("insert commit");
        let inserted: Vec<TupleId> = commit.inserted().to_vec();
        assert_eq!(inserted.len(), BATCH_K);
        let mut batch = DeltaBatch::new();
        for tuple in inserted {
            batch.delete(tuple);
        }
        session.commit(batch).expect("delete commit");
        commits += 2;
    }
    assert_eq!(
        session.len(),
        base_results,
        "churn must round-trip to the base state"
    );

    // The instrumentation itself is the measurement: read the per-phase
    // summaries back out of the session registry. `histogram` is
    // get-or-create, so the empty help never overwrites the registered
    // one (first registration wins).
    let registry = session.registry().clone();
    let mut rows = Vec::new();
    for phase in ["validate", "maintain", "window", "fanout", "total"] {
        let name = match phase {
            "total" => "fd_commit_seconds".to_owned(),
            p => format!("fd_commit_{p}_seconds"),
        };
        let hist = registry.histogram(&name, "");
        let (p50, p99, max) = (
            hist.quantile(0.5) * 1e6,
            hist.quantile(0.99) * 1e6,
            hist.max_seconds() * 1e6,
        );
        assert_eq!(hist.count(), commits as u64, "{name} missed commits");
        eprintln!(
            "commit_phases: {phase:>8}  p50 {p50:>8.1} µs  p99 {p99:>8.1} µs  max {max:>8.1} µs"
        );
        rows.push(format!(
            "    {{ \"phase\": \"{phase}\", \"observations\": {commits}, \"p50_us\": {p50:.1}, \
             \"p99_us\": {p99:.1}, \"max_us\": {max:.1} }}"
        ));
    }

    println!("{{");
    println!("  \"bench\": \"commit_phases\",");
    println!(
        "  \"description\": \"per-phase FdSession commit latency under churn, read back from \
         the session's own metrics registry (validate/maintain/window/fanout/total summaries); \
         quantiles are log-bucket upper bounds, max is exact\","
    );
    println!(
        "  \"database\": \"chain({CHAIN_N}) x {CHAIN_ROWS} rows, {ROUNDS} rounds of \
         insert-{BATCH_K}/delete-{BATCH_K} commits, one subscribed sink\","
    );
    println!("  \"commits\": {commits},");
    println!("  \"phases\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
