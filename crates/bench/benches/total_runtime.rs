//! E3 — total runtime of the full disjunction (Corollary 4.9):
//! `INCREMENTALFD` vs the batch baseline \[3\] vs the outerjoin baseline
//! \[2\] on chain and star workloads of growing size. Expected shape:
//! incremental wins against the batch reconstruction at every size, with
//! the gap widening as the output grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_baselines::{outerjoin_fd, pio_fd};
use fd_bench::{bench_chain, bench_star, full_fd, full_fd_with};
use fd_core::{FdConfig, InitStrategy};
use std::hint::black_box;

fn total_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_total_runtime");
    group.sample_size(10);
    let sec7 = FdConfig {
        init: InitStrategy::TrimExtend,
        ..FdConfig::default()
    };
    for rows in [12usize, 20, 32] {
        let db = bench_chain(4, rows);
        group.bench_with_input(
            BenchmarkId::new("incremental/chain4", rows),
            &db,
            |b, db| b.iter(|| black_box(full_fd(db))),
        );
        group.bench_with_input(
            BenchmarkId::new("incremental_sec7/chain4", rows),
            &db,
            |b, db| b.iter(|| black_box(full_fd_with(db, sec7))),
        );
        group.bench_with_input(BenchmarkId::new("batch_ks03/chain4", rows), &db, |b, db| {
            b.iter(|| black_box(pio_fd(db)))
        });
        group.bench_with_input(
            BenchmarkId::new("outerjoin_ru96/chain4", rows),
            &db,
            |b, db| b.iter(|| black_box(outerjoin_fd(db).expect("chain is γ-acyclic"))),
        );
    }
    for rows in [12usize, 20] {
        let db = bench_star(4, rows);
        group.bench_with_input(BenchmarkId::new("incremental/star4", rows), &db, |b, db| {
            b.iter(|| black_box(full_fd(db)))
        });
        group.bench_with_input(
            BenchmarkId::new("incremental_sec7/star4", rows),
            &db,
            |b, db| b.iter(|| black_box(full_fd_with(db, sec7))),
        );
        group.bench_with_input(BenchmarkId::new("batch_ks03/star4", rows), &db, |b, db| {
            b.iter(|| black_box(pio_fd(db)))
        });
    }
    group.finish();
}

criterion_group!(benches, total_runtime);
criterion_main!(benches);
