//! E5 — runtime as a function of the output size f (Theorem 4.8's
//! `O(s·n²·f²)`): fixed input size, join domain shrinks ⇒ selectivity
//! and output grow. Expected shape: super-linear growth in f, bounded by
//! the quadratic envelope.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_core::FdQuery;
use fd_workloads::{chain, DataSpec};
use std::hint::black_box;

fn scaling(c: &mut Criterion) {
    let rows = 60usize;
    let mut group = c.benchmark_group("e5_scaling_output");
    group.sample_size(10);
    for domain in [60usize, 30, 15, 8] {
        let db = chain(3, &DataSpec::new(rows, domain).seed(0xFD));
        let f = FdQuery::over(&db).run().unwrap().len();
        group.bench_with_input(
            BenchmarkId::new("incremental", format!("domain{domain}_f{f}")),
            &db,
            |b, db| b.iter(|| black_box(FdQuery::over(db).run().unwrap().into_sets())),
        );
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
