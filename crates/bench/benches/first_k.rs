//! E4 — time to the first k answers (Theorem 4.10 / PINC). The
//! incremental iterator delivers k answers in time polynomial in the
//! input and k; the batch baseline's first answer costs the entire
//! computation regardless of k. Expected shape: near-flat small cost for
//! the iterator as k grows, one large constant for the batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_baselines::pio_fd;
use fd_bench::bench_chain;
use fd_core::FdIter;
use std::hint::black_box;

fn first_k(c: &mut Criterion) {
    let db = bench_chain(5, 16);
    let mut group = c.benchmark_group("e4_first_k");
    group.sample_size(10);
    for k in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::new("incremental_take", k), &k, |b, &k| {
            b.iter(|| black_box(FdIter::new(&db).take(k).count()))
        });
    }
    group.bench_function("batch_first_answer", |b| {
        b.iter(|| black_box(pio_fd(&db).0.len()))
    });
    group.finish();
}

criterion_group!(benches, first_k);
criterion_main!(benches);
