//! E17 — durability overhead and recovery time.
//!
//! Two questions the durability subsystem must answer with numbers:
//!
//! 1. **WAL-append overhead per commit.** The same churn workload as
//!    E16 (commit_phases) runs once in memory and once per fsync policy
//!    (`off` / `on-commit` / `always`), each durable run against a
//!    fresh data directory with compaction disabled so every commit
//!    pays exactly one append. The p50 commit latency comes from the
//!    session's own `fd_commit_seconds` histogram, the append+flush
//!    cost from `fd_wal_fsync_us` — production counters, not an
//!    external stopwatch.
//! 2. **Recovery time vs WAL length.** A durable session commits `n`
//!    batches without a checkpoint, drops, and reopening the directory
//!    is timed (snapshot load + `n` replayed maintenance passes) on
//!    chain and star workloads.
//!
//! Run once and commit the output:
//!
//! ```sh
//! cargo bench --bench persist > BENCH_persist.json
//! ```

// A bench binary: progress notes go to stderr so stdout stays a clean,
// committable results table.
#![allow(clippy::print_stderr)]

use fd_bench::{bench_chain, bench_star, fmt_duration, time_once};
use fd_core::session::{DeltaBatch, FdSession};
use fd_core::store::FsyncPolicy;
use fd_relational::{Database, RelId, TupleId, Value};
use std::path::PathBuf;

/// Measured insert+delete rounds (two commits per round).
const ROUNDS: usize = 50;

/// Rows per inserted batch.
const BATCH_K: usize = 8;

/// Chain relations / base rows per relation (E16's shape).
const CHAIN_N: usize = 4;
const CHAIN_ROWS: usize = 64;

/// WAL lengths the recovery scenario replays.
const REPLAY_BATCHES: [usize; 3] = [16, 64, 256];

fn fresh_dir(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("fd-bench-persist-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clearing stale bench dir");
    }
    dir
}

/// E16's churn batch: well-connected rows round-robin across the chain.
fn churn_rows(round: usize) -> Vec<(RelId, Vec<Value>)> {
    let domain = (CHAIN_ROWS / CHAIN_N).max(2) as i64;
    (0..BATCH_K)
        .map(|i| {
            let rel = (i % CHAIN_N) as i64;
            let group = (round * BATCH_K + i / CHAIN_N) as i64;
            let left = if rel == 0 {
                group % domain
            } else {
                1_000 + group * 10 + rel
            };
            (
                RelId(rel as u16),
                vec![
                    Value::Int(left),
                    Value::Int(1_000 + group * 10 + rel + 1),
                    Value::Int(9_000_000 + (round * BATCH_K + i) as i64),
                ],
            )
        })
        .collect()
}

/// Runs the churn workload on `session`, returning
/// (commits, commit p50 µs, commit p99 µs, wal-append p50 µs).
fn run_churn(session: &mut FdSession<'static>) -> (usize, f64, f64, f64) {
    let base_results = session.len();
    let mut commits = 0usize;
    for round in 0..ROUNDS {
        let mut batch = DeltaBatch::new();
        for (rel, values) in churn_rows(round) {
            batch.insert(rel, values);
        }
        let commit = session.commit(batch).expect("insert commit");
        let inserted: Vec<TupleId> = commit.inserted().to_vec();
        let mut batch = DeltaBatch::new();
        for tuple in inserted {
            batch.delete(tuple);
        }
        session.commit(batch).expect("delete commit");
        commits += 2;
    }
    assert_eq!(session.len(), base_results, "churn must round-trip");
    let registry = session.registry().clone();
    let commit_hist = registry.histogram("fd_commit_seconds", "");
    let wal_hist = registry.histogram("fd_wal_fsync_us", "");
    (
        commits,
        commit_hist.quantile(0.5) * 1e6,
        commit_hist.quantile(0.99) * 1e6,
        wal_hist.quantile(0.5) * 1e6,
    )
}

/// One durable churn run under `policy`; `None` is the in-memory
/// baseline. Returns a JSON row.
fn overhead_row(policy: Option<FsyncPolicy>) -> String {
    let mut session = FdSession::new(bench_chain(CHAIN_N, CHAIN_ROWS));
    let label = match policy {
        None => "in-memory".to_owned(),
        Some(p) => {
            let dir = fresh_dir(&format!("overhead-{p}"));
            session.persist_to(&dir, p).expect("persist");
            // Every commit must pay exactly one append: no compaction.
            session.set_wal_compaction_threshold(u64::MAX);
            p.to_string()
        }
    };
    let (commits, p50, p99, wal_p50) = run_churn(&mut session);
    let dir = session.data_dir().map(PathBuf::from);
    drop(session);
    if let Some(dir) = dir {
        std::fs::remove_dir_all(&dir).ok();
    }
    eprintln!(
        "persist: commit {label:>9}  p50 {p50:>8.1} µs  p99 {p99:>8.1} µs  \
         wal-append p50 {wal_p50:>8.1} µs"
    );
    format!(
        "    {{ \"mode\": \"{label}\", \"commits\": {commits}, \"commit_p50_us\": {p50:.1}, \
         \"commit_p99_us\": {p99:.1}, \"wal_append_p50_us\": {wal_p50:.1} }}"
    )
}

/// Times recovery of a directory whose WAL holds `batches` singleton
/// commits on `db`. Returns a JSON row.
fn recovery_row(workload: &str, db: Database, batches: usize) -> String {
    let dir = fresh_dir(&format!("recover-{workload}-{batches}"));
    {
        let mut session = FdSession::new(db);
        session.persist_to(&dir, FsyncPolicy::Off).expect("persist");
        session.set_wal_compaction_threshold(u64::MAX);
        let arity = session.db().relation(RelId(0)).schema().arity();
        for i in 0..batches {
            let mut batch = DeltaBatch::new();
            // First column joins a small shared domain; the rest are
            // fresh values, the last one a unique payload.
            let mut values = vec![Value::Int((i % 7) as i64)];
            values.extend((1..arity - 1).map(|c| Value::Int(5_000 + (i * 8 + c) as i64)));
            values.push(Value::Int(9_000_000 + i as i64));
            batch.insert(RelId(0), values);
            session.commit(batch).expect("commit");
        }
    }
    let (session, elapsed) = time_once(|| FdSession::open(&dir).expect("recovery"));
    assert_eq!(session.replayed_batches(), batches as u64);
    let results = session.len();
    drop(session);
    std::fs::remove_dir_all(&dir).ok();
    eprintln!(
        "persist: recover {workload:>5} x{batches:<4} {:>10}  ({results} results)",
        fmt_duration(elapsed)
    );
    format!(
        "    {{ \"workload\": \"{workload}\", \"replayed_batches\": {batches}, \
         \"recovery_us\": {:.1}, \"results\": {results} }}",
        elapsed.as_secs_f64() * 1e6
    )
}

fn main() {
    // harness = false: cargo's --bench flag (and friends) need no parsing.
    let overhead: Vec<String> = [
        None,
        Some(FsyncPolicy::Off),
        Some(FsyncPolicy::OnCommit),
        Some(FsyncPolicy::Always),
    ]
    .into_iter()
    .map(overhead_row)
    .collect();

    let mut recovery = Vec::new();
    for n in REPLAY_BATCHES {
        recovery.push(recovery_row("chain", bench_chain(CHAIN_N, CHAIN_ROWS), n));
        recovery.push(recovery_row("star", bench_star(CHAIN_N, CHAIN_ROWS), n));
    }

    println!("{{");
    println!("  \"bench\": \"persist\",");
    println!(
        "  \"description\": \"durability overhead per commit (in-memory baseline vs WAL append \
         under each fsync policy; latencies from the session's own fd_commit_seconds / \
         fd_wal_fsync_us histograms) and recovery wall time vs WAL length (snapshot load + \
         replay, no FD recomputation)\","
    );
    println!(
        "  \"database\": \"chain({CHAIN_N}) x {CHAIN_ROWS} rows, {ROUNDS} rounds of \
         insert-{BATCH_K}/delete-{BATCH_K} commits; recovery on chain/star with \
         {REPLAY_BATCHES:?} replayed singleton batches\","
    );
    println!("  \"commit_overhead\": [");
    println!("{}", overhead.join(",\n"));
    println!("  ],");
    println!("  \"recovery\": [");
    println!("{}", recovery.join(",\n"));
    println!("  ]");
    println!("}}");
}
