//! E17 — the indexed-access-path A/B: total batch full-disjunction
//! runtime under three configurations of the same enumeration:
//!
//! * **scan** — the paper-faithful baseline: linked-list `Complete`
//!   scans (`StoreEngine::Scan`) and the join-column indexes disabled,
//!   so every candidate lookup is a full liveness-aware relation scan;
//! * **store-indexed** — `StoreEngine::Indexed` membership structures
//!   but the join-column indexes still off (the pre-index default);
//! * **indexed** — the current default: indexed store *and* posting-list
//!   probes on the shared join attributes.
//!
//! All three enumerate byte-identical output (asserted before timing);
//! the reported `speedup` is indexed over scan — the gate is ≥2× at the
//! largest size — and `speedup_vs_store` isolates the join-index
//! increment on top of the indexed store.
//!
//! Run once and commit the output:
//!
//! ```sh
//! cargo bench --bench scaling_index > BENCH_scaling.json
//! ```

// A bench binary: progress notes go to stderr so stdout stays a clean,
// committable results table.
#![allow(clippy::print_stderr)]

use fd_core::{FdConfig, FdQuery};
use fd_workloads::{chain, DataSpec};
use std::time::Instant;

/// Chain length; sets reach this many members, so both the subset
/// computations and the extension loops have real work per candidate.
const CHAIN_N: usize = 5;

fn run_once(db: &fd_relational::Database, cfg: FdConfig) -> Vec<Vec<fd_relational::TupleId>> {
    FdQuery::over(db)
        .with_config(cfg)
        .run()
        .unwrap()
        .into_sets()
        .iter()
        .map(|s| s.tuples().to_vec())
        .collect()
}

/// Median of `runs` wall-clock measurements of one batch run, in ms.
fn median_ms(db: &fd_relational::Database, cfg: FdConfig, runs: usize) -> f64 {
    let mut times = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        let out = FdQuery::over(db)
            .with_config(cfg)
            .run()
            .unwrap()
            .into_sets();
        times.push(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(out);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn main() {
    let indexed_cfg = FdConfig::default();
    let scan_cfg = FdConfig::paper_faithful();
    let mut rows_out = Vec::new();
    for rows in [16usize, 32, 64, 128] {
        let db = chain(CHAIN_N, &DataSpec::new(rows, rows).seed(0xFD));
        let mut twin = db.clone();
        twin.set_index_enabled(false);

        // Outputs must be identical before timing means anything.
        let a = run_once(&db, indexed_cfg);
        let b = run_once(&twin, indexed_cfg);
        let c = run_once(&twin, scan_cfg);
        assert_eq!(a, b, "join-index A/B diverges at {rows} rows");
        assert_eq!(a, c, "store-engine A/B diverges at {rows} rows");
        let f = a.len();

        let runs = if rows >= 128 { 3 } else { 5 };
        let indexed_ms = median_ms(&db, indexed_cfg, runs);
        let store_ms = median_ms(&twin, indexed_cfg, runs);
        let scan_ms = median_ms(&twin, scan_cfg, runs);
        let speedup = scan_ms / indexed_ms;
        let vs_store = store_ms / indexed_ms;
        let probes = db.index_probes();
        let hits = db.index_hits();
        eprintln!(
            "scaling_index: chain({CHAIN_N}) rows={rows:>4} f={f:>5}  \
             scan {scan_ms:>9.2} ms  store {store_ms:>9.2} ms  indexed {indexed_ms:>9.2} ms  \
             {speedup:>6.2}x vs scan, {vs_store:>5.2}x vs store  ({hits}/{probes} probes hit)"
        );
        rows_out.push(format!(
            "    {{ \"rows\": {rows}, \"f\": {f}, \"scan_ms\": {scan_ms:.2}, \
             \"store_indexed_ms\": {store_ms:.2}, \"indexed_ms\": {indexed_ms:.2}, \
             \"speedup\": {speedup:.2}, \"speedup_vs_store\": {vs_store:.2} }}"
        ));
    }
    println!("{{");
    println!("  \"bench\": \"scaling_index\",");
    println!(
        "  \"description\": \"total batch full-disjunction runtime: paper-faithful scan \
         baseline vs indexed Complete store vs indexed store + join-column posting-list \
         probes (the default); identical output asserted, median wall time\","
    );
    println!("  \"database\": \"chain({CHAIN_N}) x rows, join domain = rows (sparse joins)\",");
    println!("  \"sizes\": [");
    println!("{}", rows_out.join(",\n"));
    println!("  ]");
    println!("}}");
}
