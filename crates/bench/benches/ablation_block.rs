//! E12 — Section 7: block-based execution. Wall-clock across block sizes
//! (page-fetch counts are reported by the `paper_tables` binary; in a
//! disk-backed system they, not CPU time, dominate). Expected shape:
//! identical results at every block size, page fetches shrinking
//! proportionally to the block size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_bench::{bench_chain, full_fd_with};
use fd_core::FdConfig;
use std::hint::black_box;

fn ablation_block(c: &mut Criterion) {
    let db = bench_chain(3, 60);
    let mut group = c.benchmark_group("e12_block_size");
    group.sample_size(10);
    group.bench_function("tuple_at_a_time", |b| {
        b.iter(|| black_box(full_fd_with(&db, FdConfig::default())))
    });
    for page_size in [1usize, 8, 64, 512] {
        let cfg = FdConfig {
            page_size: Some(page_size),
            ..FdConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("paged", page_size), &cfg, |b, cfg| {
            b.iter(|| black_box(full_fd_with(&db, *cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_block);
criterion_main!(benches);
