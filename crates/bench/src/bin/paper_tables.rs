//! Regenerates every table and figure of the paper plus the measured
//! experiment tables recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p fd-bench --bin paper_tables           # full
//! cargo run --release -p fd-bench --bin paper_tables -- --fast # small sizes
//! ```

use fd_baselines::{exhaustive_top1_fsum, naive_top_k, outerjoin_fd, pio_fd};
use fd_bench::{bench_chain, bench_noisy_chain, bench_star, fmt_duration, time_median};
use fd_core::sim::TableSim;
use fd_core::{
    canonicalize, format_results, AMin, AProd, ApproxJoin, ExactSim, FMax, FdConfig, FdIter,
    FdQuery, FdiIter, ImpScores, InitStrategy, ProbScores, StoreEngine, TupleSet,
};
use fd_relational::textio::{format_relation, format_table};
use fd_relational::{tourist_database, Database, RelId, TupleId};
use fd_workloads::{chain, random_importance, DataSpec};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let scale = if fast { 1 } else { 2 };

    table_1_and_2();
    table_3();
    figure_4_examples();
    e3_total_runtime(scale);
    e4_first_k(scale);
    e5_scaling(scale);
    e6_ranked_topk(scale);
    e7_nphard(fast);
    e8_e9_approx(scale);
    e10_store_ablation(scale);
    e11_init_ablation(scale);
    e12_block_ablation(scale);
    e13_parallel(scale);
}

fn header(title: &str) {
    println!("\n══════════════════════════════════════════════════════════════");
    println!("{title}");
    println!("══════════════════════════════════════════════════════════════");
}

/// E1: Table 1 (the source relations) and Table 2 (their full
/// disjunction).
fn table_1_and_2() {
    header("E1 — Table 1 (sources) and Table 2 (full disjunction)");
    let db = tourist_database();
    for rel in db.relations() {
        println!("{}", format_relation(&db, rel.id()));
    }
    let fd = canonicalize(FdQuery::over(&db).run().unwrap().into_sets());
    println!(
        "{}",
        format_results(&db, "Table 2: FD(Climates, Accommodations, Sites)", &fd)
    );
}

/// E2: Table 3 — the Incomplete/Complete trace of
/// `INCREMENTALFD({Climates, Accommodations, Sites}, 1)`.
fn table_3() {
    header("E2 — Table 3: the execution trace of INCREMENTALFD(R, 1)");
    let db = tourist_database();
    let mut it = FdiIter::with_config(&db, RelId(0), FdConfig::paper_faithful());
    let mut columns: Vec<(String, Vec<String>, Vec<String>)> = Vec::new();
    let (inc, comp) = it.snapshot();
    columns.push(("Initialization".into(), inc, comp));
    let mut iteration = 0;
    while it.next().is_some() {
        iteration += 1;
        let (inc, comp) = it.snapshot();
        columns.push((format!("Iteration {iteration}"), inc, comp));
    }
    for (name, inc, comp) in &columns {
        println!("{name}:");
        println!(
            "  Incomplete: {}",
            if inc.is_empty() {
                "∅".into()
            } else {
                inc.join("  ")
            }
        );
        println!(
            "  Complete:   {}",
            if comp.is_empty() {
                "∅".into()
            } else {
                comp.join("  ")
            }
        );
    }
}

/// E8 (part 1): Fig. 4 with Examples 6.1 and 6.3.
fn figure_4_examples() {
    header("E8 — Fig. 4 / Examples 6.1 and 6.3");
    let db = tourist_database();
    let (c1, a2, s1, s2) = (TupleId(0), TupleId(4), TupleId(6), TupleId(7));
    let mut sim = TableSim::new(ExactSim);
    sim.set(c1, a2, 0.8);
    sim.set(c1, s1, 0.8);
    sim.set(c1, s2, 0.8);
    sim.set(a2, s1, 1.0);
    sim.set(a2, s2, 0.5);
    let prob = ProbScores::from_fn(&db, |t| match t.0 {
        0 => 0.9,
        4 => 1.0,
        6 => 0.9,
        7 => 0.7,
        _ => 1.0,
    });
    let amin = AMin::new(sim.clone(), prob);
    let aprod = AProd::new(sim);
    println!(
        "A_min({{c1,a2,s2}})  = {}   (paper: 0.5)",
        amin.score(&db, &[c1, a2, s2])
    );
    println!(
        "A_prod({{c1,a2,s2}}) = {}  (paper: 0.32)",
        aprod.score(&db, &[c1, a2, s2])
    );
    let t = fd_core::jcc::rebuild(&db, vec![c1, a2, s1]);
    let mut stats = fd_core::Stats::new();
    let m_min = amin.maximal_subsets(&db, &t, s2, 0.4, &mut stats);
    let m_prod = aprod.maximal_subsets(&db, &t, s2, 0.4, &mut stats);
    println!(
        "Example 6.3 (τ=0.4): A_min maximal subsets: {}",
        m_min
            .iter()
            .map(|s| s.label(&db))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "Example 6.3 (τ=0.4): A_prod maximal subsets: {}",
        m_prod
            .iter()
            .map(|s| s.label(&db))
            .collect::<Vec<_>>()
            .join(", ")
    );
}

/// E3: total-runtime comparison (Cor. 4.9 vs reference \[3\] and \[2\]).
/// "Incremental" is the plain n-run algorithm; "Sec.7" adds the paper's
/// repeated-work optimization (TrimExtend initialization) — the
/// configuration the paper positions against \[3\].
fn e3_total_runtime(scale: usize) {
    header("E3 — total runtime: INCREMENTALFD vs batch [3] vs outerjoin [2]");
    let trim = FdConfig {
        init: InitStrategy::TrimExtend,
        ..FdConfig::default()
    };
    let mut rows_out = Vec::new();
    for (shape, db) in [
        ("chain n=3", bench_chain(3, 50 * scale)),
        ("chain n=4", bench_chain(4, 16 * scale)),
        ("star  n=4", bench_star(4, 16 * scale)),
    ] {
        let (fd, t_naive) = time_median(3, || FdQuery::over(&db).run().unwrap().into_sets());
        let (fd7, t_sec7) = time_median(3, || {
            FdQuery::over(&db)
                .with_config(trim)
                .run()
                .unwrap()
                .into_sets()
        });
        let ((batch, _), t_batch) = time_median(3, || pio_fd(&db));
        assert_eq!(canonicalize(fd.clone()), batch);
        assert_eq!(canonicalize(fd7), batch);
        let t_oj = match time_median(3, || outerjoin_fd(&db)) {
            (Ok(_), t) => fmt_duration(t),
            (Err(e), _) => format!("refused ({e})"),
        };
        rows_out.push(vec![
            shape.to_string(),
            db.num_tuples().to_string(),
            fd.len().to_string(),
            fmt_duration(t_naive),
            fmt_duration(t_sec7),
            fmt_duration(t_batch),
            t_oj,
            format!("{:.1}x", t_batch.as_secs_f64() / t_sec7.as_secs_f64()),
        ]);
    }
    println!(
        "{}",
        format_table(
            "total runtime (median of 3)",
            &[
                "workload",
                "tuples",
                "|FD|",
                "incremental",
                "incr. + Sec.7",
                "batch [3]",
                "outerjoin [2]",
                "Sec.7 vs [3]",
            ],
            &rows_out
        )
    );
}

/// E4: time to the first k answers (Thm 4.10 / PINC).
fn e4_first_k(scale: usize) {
    header("E4 — time to first k answers (incremental vs batch)");
    let db = bench_chain(5, 12 * scale);
    let (_, t_batch) = time_median(1, || pio_fd(&db));
    let mut rows_out = Vec::new();
    for k in [1usize, 10, 100] {
        let (got, t_k) = time_median(3, || FdIter::new(&db).take(k).count());
        rows_out.push(vec![
            k.to_string(),
            got.to_string(),
            fmt_duration(t_k),
            fmt_duration(t_batch),
            format!(
                "{:.0}x",
                t_batch.as_secs_f64() / t_k.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    println!(
        "{}",
        format_table(
            "first-k delivery (batch returns nothing until done)",
            &[
                "k",
                "delivered",
                "incremental",
                "batch first answer",
                "advantage"
            ],
            &rows_out
        )
    );
}

/// E5: runtime vs output size (the f² shape of Thm 4.8).
fn e5_scaling(scale: usize) {
    header("E5 — runtime vs output size f (Thm 4.8: quadratic-in-f family)");
    let rows = 40 * scale;
    let mut rows_out = Vec::new();
    for domain in [rows, rows / 2, rows / 4, rows / 8] {
        let db = chain(3, &DataSpec::new(rows, domain.max(1)).seed(0xFD));
        let (fd, t) = time_median(3, || FdQuery::over(&db).run().unwrap().into_sets());
        let f: usize = fd.iter().map(TupleSet::total_size).sum();
        rows_out.push(vec![
            domain.to_string(),
            fd.len().to_string(),
            f.to_string(),
            fmt_duration(t),
        ]);
    }
    println!(
        "{}",
        format_table(
            "fixed input, shrinking join domain ⇒ growing output",
            &["join domain", "|FD| sets", "f (total size)", "runtime"],
            &rows_out
        )
    );
}

/// E6: ranked top-k vs full-then-sort (Thm 5.5).
fn e6_ranked_topk(scale: usize) {
    header("E6 — top-k in ranking order vs materialize-and-sort");
    let db = bench_chain(4, 40 * scale);
    let imp = random_importance(&db, 7);
    let f = FMax::new(&imp);
    let mut rows_out = Vec::new();
    for k in [1usize, 10, 50] {
        let (ranked, t_ranked) = time_median(3, || {
            FdQuery::over(&db)
                .ranked(&f)
                .top_k(k)
                .run()
                .unwrap()
                .into_ranked()
                .unwrap()
        });
        let (naive, t_naive) = time_median(3, || naive_top_k(&db, &f, k));
        assert_eq!(
            ranked.iter().map(|x| x.1).collect::<Vec<_>>(),
            naive.iter().map(|x| x.1).collect::<Vec<_>>()
        );
        rows_out.push(vec![
            k.to_string(),
            fmt_duration(t_ranked),
            fmt_duration(t_naive),
            format!(
                "{:.1}x",
                t_naive.as_secs_f64() / t_ranked.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    println!(
        "{}",
        format_table(
            "top-k with f_max (monotonically 1-determined)",
            &["k", "PriorityIncrementalFD", "full + sort", "speedup"],
            &rows_out
        )
    );
}

/// E7: the NP-hard f_sum vs the tractable f_max (Prop. 5.1).
fn e7_nphard(fast: bool) {
    header("E7 — Prop 5.1: exhaustive top-(1, f_sum) blows up; f_max stays flat");
    let max_n = if fast { 5 } else { 6 };
    let mut rows_out = Vec::new();
    for n in 2..=max_n {
        // domain 2 with several rows ⇒ the number of maximal sets grows
        // exponentially with n.
        let db = chain(n, &DataSpec::new(8, 2).seed(0xFD));
        let imp = ImpScores::uniform(&db, 1.0);
        let (_, t_sum) = time_median(1, || exhaustive_top1_fsum(&db, &imp));
        let fmax = FMax::new(&imp);
        let (_, t_max) = time_median(1, || {
            FdQuery::over(&db)
                .ranked(&fmax)
                .top_k(1)
                .run()
                .unwrap()
                .into_ranked()
                .unwrap()
        });
        rows_out.push(vec![
            n.to_string(),
            fmt_duration(t_sum),
            fmt_duration(t_max),
        ]);
    }
    println!(
        "{}",
        format_table(
            "top-1 under f_sum (exhaustive) vs f_max (ranked algorithm)",
            &["n relations", "f_sum exhaustive", "f_max ranked"],
            &rows_out
        )
    );
}

/// E8/E9: approximate full disjunctions across thresholds.
fn e8_e9_approx(scale: usize) {
    header("E9 — APPROXINCREMENTALFD across thresholds (A_min, edit distance)");
    let db = bench_noisy_chain(3, 20 * scale, 0.3);
    let exact = FdQuery::over(&db).run().unwrap().into_sets();
    let a = AMin::new(fd_core::EditDistanceSim, ProbScores::uniform(&db, 1.0));
    let mut rows_out = vec![vec![
        "exact FD".to_string(),
        exact.len().to_string(),
        exact.iter().filter(|s| s.len() >= 2).count().to_string(),
        "-".into(),
    ]];
    for tau in [0.95, 0.85, 0.75] {
        let (afd, t) = time_median(3, || {
            FdQuery::over(&db)
                .approx(&a, tau)
                .run()
                .unwrap()
                .into_sets()
        });
        rows_out.push(vec![
            format!("AFD τ={tau}"),
            afd.len().to_string(),
            afd.iter().filter(|s| s.len() >= 2).count().to_string(),
            fmt_duration(t),
        ]);
    }
    println!(
        "{}",
        format_table(
            "typo'd chain: lower τ recovers more joins",
            &["variant", "results", "combined (≥2 tuples)", "runtime"],
            &rows_out
        )
    );
}

/// E10: store-engine ablation (Section 7 indexing).
fn e10_store_ablation(scale: usize) {
    header("E10 — Section 7 ablation: list scans vs hash index by Ri-tuple");
    let mut rows_out = Vec::new();
    for rows in [10 * scale, 15 * scale, 20 * scale] {
        let db = bench_chain(4, rows);
        let mut line = vec![rows.to_string()];
        for engine in [StoreEngine::Scan, StoreEngine::Indexed] {
            let cfg = FdConfig {
                engine,
                ..FdConfig::default()
            };
            let (scans, t) = time_median(3, || {
                let mut it = FdIter::with_config(&db, cfg);
                for _ in it.by_ref() {}
                it.stats_total().total_store_scans()
            });
            line.push(scans.to_string());
            line.push(fmt_duration(t));
        }
        rows_out.push(line);
    }
    println!(
        "{}",
        format_table(
            "chain n=4",
            &[
                "rows/rel",
                "Scan: store scans",
                "Scan: time",
                "Indexed: store scans",
                "Indexed: time"
            ],
            &rows_out
        )
    );
}

/// E11: initialization-strategy ablation (Section 7).
fn e11_init_ablation(scale: usize) {
    header("E11 — Section 7 ablation: Incomplete initialization strategies");
    let db = bench_chain(4, 20 * scale);
    let mut rows_out = Vec::new();
    for init in [
        InitStrategy::Singletons,
        InitStrategy::ReuseResults,
        InitStrategy::TrimExtend,
    ] {
        let cfg = FdConfig {
            init,
            ..FdConfig::default()
        };
        let ((count, stats), t) = time_median(3, || {
            let mut it = FdIter::with_config(&db, cfg);
            let mut n = 0usize;
            for _ in it.by_ref() {
                n += 1;
            }
            (n, it.stats_total())
        });
        rows_out.push(vec![
            format!("{init:?}"),
            count.to_string(),
            stats.candidate_scans.to_string(),
            stats.jcc_checks.to_string(),
            fmt_duration(t),
        ]);
    }
    println!(
        "{}",
        format_table(
            "full FD over all i (chain n=4)",
            &[
                "strategy",
                "results",
                "candidate scans",
                "jcc checks",
                "runtime"
            ],
            &rows_out
        )
    );
}

/// E12: block-based execution (Section 7) — simulated page fetches.
fn e12_block_ablation(scale: usize) {
    header("E12 — Section 7: block-based execution (simulated pages touched)");
    let db = bench_chain(3, 40 * scale);
    let mut rows_out = Vec::new();
    for page_size in [1usize, 8, 64, 512] {
        let cfg = FdConfig {
            page_size: Some(page_size),
            ..FdConfig::default()
        };
        let ((results, pages), t) = time_median(3, || {
            let mut total_pages = 0u64;
            let mut results = 0usize;
            for rel_idx in 0..db.num_relations() {
                let ri = RelId(rel_idx as u16);
                let mut it = FdiIter::with_config(&db, ri, cfg);
                for set in it.by_ref() {
                    if !set.has_tuple_before(&db, ri) {
                        results += 1;
                    }
                }
                total_pages += it.pages_read();
            }
            (results, total_pages)
        });
        rows_out.push(vec![
            page_size.to_string(),
            results.to_string(),
            pages.to_string(),
            fmt_duration(t),
        ]);
    }
    println!(
        "{}",
        format_table(
            "chain n=3; identical results at every block size",
            &["tuples/page", "results", "pages fetched", "runtime"],
            &rows_out
        )
    );
}

/// E13: parallel full disjunction across the n independent runs.
fn e13_parallel(scale: usize) {
    header("E13 — parallel full disjunction (one FDi run per worker)");
    let db = bench_star(5, 8 * scale);
    let mut baseline = None;
    let mut rows_out = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (out, t) = time_median(3, || {
            FdQuery::over(&db)
                .parallel(threads)
                .run()
                .unwrap()
                .into_sets()
        });
        let base = *baseline.get_or_insert(t);
        rows_out.push(vec![
            threads.to_string(),
            out.len().to_string(),
            fmt_duration(t),
            format!("{:.2}x", base.as_secs_f64() / t.as_secs_f64().max(1e-9)),
        ]);
    }
    println!(
        "{}",
        format_table(
            "star n=5",
            &["threads", "results", "runtime", "speedup"],
            &rows_out
        )
    );
}

/// Keeps `Database` in scope for doc purposes (the helpers above return
/// it); silences the unused-import lint if sections get reordered.
#[allow(dead_code)]
fn _type_anchor(_db: &Database) {}
