//! # fd-bench
//!
//! Benchmark harness regenerating every table, figure and complexity /
//! ordering claim of the paper (the per-experiment index lives in
//! DESIGN.md; results are recorded in EXPERIMENTS.md). The crate offers:
//!
//! * shared workload constructors used by both the Criterion benches and
//!   the `paper_tables` binary, so the two always measure the same
//!   databases;
//! * small measurement utilities (wall-clock one-shot timing) for the
//!   table-printing binary — Criterion owns the statistically rigorous
//!   numbers, the binary owns the human-readable experiment tables.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use fd_core::{ApproxAllIter, ApproxJoin, FdConfig, FdIter, TupleSet};
use fd_relational::Database;
use fd_workloads::{chain, star, DataSpec};
use std::time::{Duration, Instant};

/// Materializes the full disjunction with an explicit configuration —
/// the benches' shared stand-in for the removed `full_disjunction_with`
/// free function (kept once here instead of per bench target).
pub fn full_fd_with(db: &Database, cfg: FdConfig) -> Vec<TupleSet> {
    FdIter::with_config(db, cfg).collect()
}

/// [`full_fd_with`] at the default configuration.
pub fn full_fd(db: &Database) -> Vec<TupleSet> {
    full_fd_with(db, FdConfig::default())
}

/// Materializes the approximate full disjunction, shared by the approx
/// bench targets.
pub fn approx_fd<A: ApproxJoin>(db: &Database, a: &A, tau: f64) -> Vec<TupleSet> {
    ApproxAllIter::new(db, a, tau).collect()
}

/// The chain family used by E3/E4/E5/E10/E11/E12: `n` relations,
/// `rows` rows each, join domain sized for a healthy but bounded output.
pub fn bench_chain(n: usize, rows: usize) -> Database {
    chain(n, &DataSpec::new(rows, (rows / 4).max(2)).seed(0xFD))
}

/// The star family used by E3/E13.
pub fn bench_star(n: usize, rows: usize) -> Database {
    star(n, &DataSpec::new(rows, (rows / 4).max(2)).seed(0xFD))
}

/// A typo-noised chain for the approximate experiments (E8/E9).
pub fn bench_noisy_chain(n: usize, rows: usize, typo_rate: f64) -> Database {
    chain(
        n,
        &DataSpec::new(rows, (rows / 4).max(2))
            .seed(0xFD)
            .typos(typo_rate),
    )
}

/// One-shot wall-clock measurement.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Median-of-`runs` wall-clock measurement (the binary's quick numbers).
pub fn time_median<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(runs >= 1);
    let mut durations = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let (out, d) = time_once(&mut f);
        durations.push(d);
        last = Some(out);
    }
    durations.sort();
    (
        last.expect("at least one run"),
        durations[durations.len() / 2],
    )
}

/// Formats a duration compactly for tables.
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}µs", d.as_secs_f64() * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_workloads_are_deterministic() {
        let a = bench_chain(3, 20);
        let b = bench_chain(3, 20);
        assert_eq!(a.num_tuples(), b.num_tuples());
        for t in a.all_tuples() {
            assert_eq!(a.tuple_values(t), b.tuple_values(t));
        }
    }

    #[test]
    fn time_median_runs_the_closure() {
        let (v, d) = time_median(3, || 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() < 1_000_000_000);
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with('s'));
    }
}
