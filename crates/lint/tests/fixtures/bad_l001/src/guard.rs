pub fn bad() {
    let g = m.lock().unwrap();
}
pub fn recovered() {
    let g = m.lock().unwrap_or_else(PoisonError::into_inner);
}
pub fn io_ok(r: &mut impl Read) {
    r.read(&mut buf).unwrap();
}
#[cfg(test)]
mod tests {
    fn in_test() {
        m.lock().unwrap();
    }
}
