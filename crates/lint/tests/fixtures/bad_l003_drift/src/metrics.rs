pub fn register() {
    r("fd_fixture_total");
    r("fd_drifted_total");
}
