pub fn replay_log() {
    let t = Instant::now();
}
pub fn unrelated() {
    let t = Instant::now();
}
