pub fn register() {
    r("fd_fixture_total");
}
