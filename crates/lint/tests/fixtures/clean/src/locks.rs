pub fn ordered() {
    one.lock();
    two.lock();
}
