pub const WAL_FILE: &str = "wal-copy.fd";
pub fn parse(h: &str) {
    check(h, "fdsnap v2");
}
pub const DEFAULT_WAL_LIMIT: u64 = 1;
