pub fn ordered() {
    one.lock();
    two.lock();
}
pub fn reversed() {
    two.lock();
    one.lock();
}
