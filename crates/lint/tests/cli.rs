//! fd-lint end-to-end: every rule against its known-bad/known-good
//! fixture workspace, the allowlist semantics, and the CLI's `--deny`
//! exit-code contract.

use fd_lint::{lint_workspace, Report};
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> Report {
    lint_workspace(&fixture(name)).expect("fixture config loads")
}

fn rules(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn clean_fixture_has_no_findings() {
    let r = lint("clean");
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert!(r.suppressed.is_empty());
    assert!(r.stale_allow.is_empty());
}

#[test]
fn l001_fires_once_on_the_bad_guard_only() {
    let r = lint("bad_l001");
    assert_eq!(rules(&r), vec!["L001"], "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.path, "src/guard.rs");
    assert_eq!(f.func, "bad");
    assert!(f.fixit.contains("PoisonError::into_inner"), "{f}");
}

#[test]
fn l002_fires_on_the_reversed_acquisition() {
    let r = lint("bad_l002");
    assert_eq!(rules(&r), vec!["L002"], "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.func, "reversed");
    assert!(
        f.message.contains("'first'") && f.message.contains("'second'"),
        "{f}"
    );
}

#[test]
fn l002_fails_closed_on_a_stale_manifest_entry() {
    let r = lint("stale_manifest");
    assert_eq!(rules(&r), vec!["L002"], "{:?}", r.findings);
    assert!(r.findings[0].message.contains("stale manifest entry"));
    assert!(r.findings[0].message.contains("ghost"));
}

#[test]
fn l003_reports_drift_in_both_directions() {
    let r = lint("bad_l003_drift");
    assert_eq!(rules(&r), vec!["L003", "L003"], "{:?}", r.findings);
    assert!(r
        .findings
        .iter()
        .any(|f| f.message.contains("'fd_drifted_total'") && f.path == "src/metrics.rs"));
    assert!(r.findings.iter().any(|f| {
        f.message.contains("'fd_missing_total'") && f.path.ends_with("metrics_names.golden")
    }));
}

#[test]
fn l004_flags_foreign_const_and_magic_but_not_lookalikes() {
    let r = lint("bad_l004");
    assert_eq!(rules(&r), vec!["L004", "L004"], "{:?}", r.findings);
    assert!(r.findings.iter().any(|f| f.message.contains("WAL_FILE")));
    assert!(r.findings.iter().any(|f| f.message.contains("fdsnap")));
    // DEFAULT_WAL_LIMIT must not be mistaken for a format constant.
    assert!(!r
        .findings
        .iter()
        .any(|f| f.message.contains("DEFAULT_WAL_LIMIT")));
}

#[test]
fn l005_fires_in_replay_functions_only() {
    let r = lint("bad_l005");
    assert_eq!(rules(&r), vec!["L005"], "{:?}", r.findings);
    assert_eq!(r.findings[0].func, "replay_log");
}

#[test]
fn allowlist_suppresses_and_records() {
    let r = lint("allowed");
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed.len(), 1);
    assert_eq!(r.suppressed[0].rule, "L001");
    assert!(r.stale_allow.is_empty());
    assert!(!r.is_dirty());
}

#[test]
fn stale_allow_entries_make_the_report_dirty() {
    let r = lint("stale_allow");
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.stale_allow.len(), 1);
    assert!(r.is_dirty());
}

// ---- CLI exit-code contract -----------------------------------------

fn run_cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fd-lint"))
        .args(args)
        .output()
        .expect("fd-lint binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().unwrap_or(-1), stdout)
}

#[test]
fn cli_deny_exits_zero_on_clean() {
    let root = fixture("clean");
    let (code, out) = run_cli(&["--root", root.to_str().unwrap(), "--deny"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("0 finding(s)"), "{out}");
}

#[test]
fn cli_deny_exits_one_on_findings_and_names_the_rule() {
    let root = fixture("bad_l003_drift");
    let (code, out) = run_cli(&["--root", root.to_str().unwrap(), "--deny"]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("L003"), "{out}");
    assert!(out.contains("fix:"), "{out}");
}

#[test]
fn cli_without_deny_reports_but_exits_zero() {
    let root = fixture("bad_l001");
    let (code, out) = run_cli(&["--root", root.to_str().unwrap()]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("L001"), "{out}");
}

#[test]
fn cli_deny_exits_one_on_stale_allow() {
    let root = fixture("stale_allow");
    let (code, out) = run_cli(&["--root", root.to_str().unwrap(), "--deny"]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("STALE"), "{out}");
}

#[test]
fn cli_exits_two_on_config_errors() {
    // A directory with no LOCK_ORDER.md at all.
    let root = fixture("clean").join("src");
    let (code, _) = run_cli(&["--root", root.to_str().unwrap(), "--deny"]);
    assert_eq!(code, 2);
    // Unknown flags are usage errors, not findings.
    let (code, _) = run_cli(&["--frobnicate"]);
    assert_eq!(code, 2);
}
