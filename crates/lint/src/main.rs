//! The fd-lint CLI. `cargo run -p fd-lint -- --deny` is the CI
//! invocation; without `--deny` findings are printed but the exit code
//! stays 0 (advisory mode for local iteration).
//!
//! Exit codes: 0 clean (or advisory), 1 active findings or stale
//! suppressions under `--deny`, 2 configuration/usage errors.

// The CLI's whole job is printing a report; stdout/stderr are its API.
#![allow(clippy::print_stderr, clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("fd-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "fd-lint: workspace invariant analyzer\n\n\
                     usage: fd-lint [--root DIR] [--deny]\n\n\
                     --root DIR  workspace root to lint (default: .)\n\
                     --deny      exit 1 on active findings or stale LINT_ALLOW.txt entries"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("fd-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match fd_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("fd-lint: config error: {err}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{f}");
    }
    for s in &report.stale_allow {
        println!("STALE LINT_ALLOW.txt entry suppresses nothing: {s}");
    }
    println!(
        "fd-lint: {} finding(s), {} suppressed, {} stale allow entr(ies)",
        report.findings.len(),
        report.suppressed.len(),
        report.stale_allow.len()
    );

    if deny && report.is_dirty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
