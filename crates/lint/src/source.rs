//! Lexed source files plus the two structural facts every rule needs:
//! which tokens sit inside `#[cfg(test)]` / `#[test]` items, and which
//! function encloses a given token.

use crate::lexer::{lex, Tok, TokKind};
use std::path::{Path, PathBuf};

/// One function item: its name and the token span of its body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token index of the body's opening `{`.
    pub open: usize,
    /// Token index of the matching `}` (inclusive).
    pub close: usize,
}

/// A lexed workspace file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// The token stream (comments and whitespace already gone).
    pub toks: Vec<Tok>,
    /// `test_mask[i]` — token `i` belongs to a `#[cfg(test)]`/`#[test]`
    /// item (or one of its attributes).
    pub test_mask: Vec<bool>,
    /// Every function item, in source order (nested functions appear
    /// after their parent; lookup takes the innermost).
    pub fns: Vec<FnSpan>,
    /// Does the path put the whole file in test/bench/example land?
    pub is_test_path: bool,
}

impl SourceFile {
    /// Lexes and analyzes one file. `rel` is the root-relative path.
    pub fn parse(rel: &Path, src: &str) -> SourceFile {
        let path = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let toks = lex(src);
        let test_mask = compute_test_mask(&toks);
        let fns = compute_fns(&toks);
        let is_test_path = {
            let p = format!("/{path}");
            p.contains("/tests/") || p.contains("/benches/") || p.contains("/examples/")
        };
        SourceFile {
            path,
            toks,
            test_mask,
            fns,
            is_test_path,
        }
    }

    /// Is token `i` test-only code (by path or by `cfg(test)` region)?
    pub fn is_test(&self, i: usize) -> bool {
        self.is_test_path || self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Name of the innermost function whose body contains token `i`
    /// (`*` when outside any function — consts, statics, impl headers).
    pub fn enclosing_fn(&self, i: usize) -> &str {
        let mut best: Option<&FnSpan> = None;
        for f in &self.fns {
            if f.open <= i && i <= f.close {
                let tighter = match best {
                    Some(b) => f.close - f.open < b.close - b.open,
                    None => true,
                };
                if tighter {
                    best = Some(f);
                }
            }
        }
        best.map(|f| f.name.as_str()).unwrap_or("*")
    }
}

/// Marks tokens covered by items carrying a `test` attribute:
/// `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]` — any attribute
/// whose token stream mentions the identifier `test`. The mark covers
/// the attribute itself, any stacked attributes that follow, and the
/// item body up to its closing `}` (or terminating `;`).
fn compute_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let attr_start = i;
            let (attr_end, mentions_test) = scan_attr(toks, i + 1);
            if mentions_test {
                // Skip any further stacked attributes, then mark
                // through the item's body.
                let mut j = attr_end + 1;
                while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
                    let (e, _) = scan_attr(toks, j + 1);
                    j = e + 1;
                }
                let item_end = item_end_from(toks, j);
                for m in mask
                    .iter_mut()
                    .take(item_end.min(toks.len() - 1) + 1)
                    .skip(attr_start)
                {
                    *m = true;
                }
                i = item_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scans an attribute starting at its `[` token; returns the index of
/// the matching `]` and whether the identifier `test` occurs inside.
fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut mentions = false;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('[') {
            depth += 1;
        } else if toks[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i, mentions);
            }
        } else if toks[i].is_ident("test") {
            mentions = true;
        }
        i += 1;
    }
    (toks.len() - 1, mentions)
}

/// From the first token of an item, finds where the item ends: the `}`
/// matching its first `{`, or a `;` met before any `{`.
fn item_end_from(toks: &[Tok], start: usize) -> usize {
    let mut i = start;
    while i < toks.len() {
        if toks[i].is_punct(';') {
            return i;
        }
        if toks[i].is_punct('{') {
            return match_brace(toks, i);
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Finds every `fn name … { … }` item (trait-method declarations ending
/// in `;` have no body and are skipped).
fn compute_fns(toks: &[Tok]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Walk to the body's `{`, or a `;` (no body). Generic bounds,
        // where clauses and return types contain no braces, so the
        // first `{` after the signature is the body.
        let mut j = i + 2;
        let mut open = None;
        while j < toks.len() {
            if toks[j].is_punct(';') {
                break;
            }
            if toks[j].is_punct('{') {
                open = Some(j);
                break;
            }
            j += 1;
        }
        if let Some(open) = open {
            fns.push(FnSpan {
                name: name_tok.text.clone(),
                open,
                close: match_brace(toks, open),
            });
        }
    }
    fns
}

/// Recursively collects `.rs` files under `root/<dir>` for each given
/// scan dir, returning root-relative paths in sorted order. `skip`
/// prefixes (root-relative, `/`-separated) are pruned.
pub fn collect_rs_files(root: &Path, scan_dirs: &[&str], skip: &[&str]) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for dir in scan_dirs {
        walk(root, &root.join(dir), skip, &mut files);
    }
    files.sort();
    files
}

fn walk(root: &Path, dir: &Path, skip: &[&str], out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if skip
            .iter()
            .any(|s| rel == *s || rel.starts_with(&format!("{s}/")))
        {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, skip, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn live() { a.lock().unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { b.lock().unwrap(); }\n}\n\
                   fn live2() {}";
        let f = SourceFile::parse(Path::new("x.rs"), src);
        let unwraps: Vec<bool> = f
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| f.is_test(i))
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        // Code after the test mod is live again.
        let live2 = f.toks.iter().position(|t| t.is_ident("live2")).unwrap();
        assert!(!f.is_test(live2));
    }

    #[test]
    fn test_attr_marks_single_fn() {
        let src = "#[test]\nfn check() { x.lock().unwrap(); }\nfn live() {}";
        let f = SourceFile::parse(Path::new("x.rs"), src);
        let unwrap = f.toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.is_test(unwrap));
        let live = f.toks.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!f.is_test(live));
    }

    #[test]
    fn enclosing_fn_prefers_innermost() {
        let src = "fn outer() { fn inner() { marker(); } }";
        let f = SourceFile::parse(Path::new("x.rs"), src);
        let marker = f.toks.iter().position(|t| t.is_ident("marker")).unwrap();
        assert_eq!(f.enclosing_fn(marker), "inner");
    }

    #[test]
    fn tests_dir_paths_are_test_code() {
        let f = SourceFile::parse(Path::new("crates/x/tests/y.rs"), "fn a() {}");
        assert!(f.is_test_path);
        let f = SourceFile::parse(Path::new("crates/x/src/y.rs"), "fn a() {}");
        assert!(!f.is_test_path);
    }
}
