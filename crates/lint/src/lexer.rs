//! A small hand-rolled Rust lexer: comments and whitespace are
//! stripped, string/char literals become single tokens carrying their
//! raw content, everything else becomes identifier / number /
//! punctuation tokens with line numbers. This is not a full Rust
//! grammar — it is exactly enough structure for token-pattern lint
//! rules, with the two properties they depend on:
//!
//! * nothing inside a comment or a string literal can ever be mistaken
//!   for code, and
//! * nothing inside a string literal is ever split (so metric-name and
//!   magic-constant literals survive intact for inspection).

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (also raw identifiers, `r#fn`).
    Ident,
    /// A string literal (`"…"`, `r"…"`, `r#"…"#`, `b"…"`); `text` holds
    /// the raw content between the delimiters, escapes unprocessed.
    Str,
    /// A char literal (`'a'`, `'\n'`); `text` holds the raw content.
    Char,
    /// A lifetime (`'a`, `'static`); `text` holds the name.
    Lifetime,
    /// A numeric literal.
    Num,
    /// A single punctuation character.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// Identifier text, literal content, or the punctuation character.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

/// Lexes `src` (one Rust source file) into tokens.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.cooked_string(line);
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.bump();
                    self.cooked_string(line);
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(line),
                '\'' => self.quote(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    let c = self.bump().expect("peeked");
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.bump() {
            if c == '\n' {
                break;
            }
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Reads a `"…"` body (opening quote already consumed).
    fn cooked_string(&mut self, line: u32) {
        let mut text = String::new();
        loop {
            match self.bump() {
                None | Some('"') => break,
                Some('\\') => {
                    text.push('\\');
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                Some(c) => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// Is the cursor at `r"`, `r#…#"`, `br"` or `br#…#"`?
    fn raw_string_ahead(&self) -> bool {
        let mut i = 1;
        if self.peek(0) == Some('b') {
            if self.peek(1) != Some('r') {
                return false;
            }
            i = 2;
        }
        loop {
            match self.peek(i) {
                Some('#') => i += 1,
                Some('"') => return true,
                _ => return false,
            }
        }
    }

    fn raw_string(&mut self, line: u32) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'body: while let Some(c) = self.bump() {
            if c == '"' {
                // A closing quote must be followed by `hashes` hashes.
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        text.push('"');
                        continue 'body;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokKind::Str, text, line);
    }

    /// A `'`: lifetime or char literal.
    fn quote(&mut self, line: u32) {
        // `'ident` not followed by a closing quote is a lifetime.
        if let Some(c1) = self.peek(1) {
            if (c1.is_alphabetic() || c1 == '_') && self.peek(2) != Some('\'') {
                self.bump(); // '
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, name, line);
                return;
            }
        }
        self.bump(); // '
        let mut text = String::new();
        loop {
            match self.bump() {
                None | Some('\'') => break,
                Some('\\') => {
                    text.push('\\');
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                Some(c) => text.push(c),
            }
        }
        self.push(TokKind::Char, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        // Raw identifier prefix.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_handled() {
        let toks = lex("fn a() { // lock().unwrap()\n  /* \"x\" /* nested */ */ b(\"s\\\"1\") }");
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["fn", "a", "b"]);
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["s\\\"1"]);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let toks =
            lex(r####"const M: &str = r#"fd_ops_total{op="x"}"#; fn f<'a>(x: &'a str) {}"####);
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec![r#"fd_ops_total{op="x"}"#]);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
    }

    #[test]
    fn char_literals_do_not_eat_code() {
        let toks = lex("let c = 'x'; let n = '\\n'; m.lock()");
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(idents.contains(&"lock"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<_> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
