//! The five rule passes. Each walks lexed [`SourceFile`]s and emits
//! [`Finding`]s; the allowlist is applied by the caller so every rule
//! stays a pure function of the sources.

use crate::config::LockManifest;
use crate::source::SourceFile;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

fn finding(
    rule: &'static str,
    f: &SourceFile,
    tok: usize,
    message: String,
    fixit: &str,
) -> Finding {
    Finding {
        rule,
        path: f.path.clone(),
        line: f.toks.get(tok).map(|t| t.line).unwrap_or(0),
        func: f.enclosing_fn(tok).to_owned(),
        message,
        fixit: fixit.to_owned(),
    }
}

/// L001 — `.lock()/.read()/.write()` results must not be `.unwrap()`ed
/// or `.expect()`ed outside test code: a panic on another thread
/// poisons the lock, and unwrapping the poison error turns one panic
/// into a cascade. Recover (`unwrap_or_else(PoisonError::into_inner)`)
/// or map to a typed error instead.
pub fn l001(files: &[SourceFile], out: &mut Vec<Finding>) {
    const ACQUIRERS: [&str; 4] = ["lock", "read", "write", "try_lock"];
    for f in files {
        for i in 5..f.toks.len() {
            let t = &f.toks[i];
            if !(t.is_ident("unwrap") || t.is_ident("expect")) {
                continue;
            }
            // `.` acquirer `(` `)` `.` unwrap|expect `(` — the empty
            // argument list distinguishes lock acquisition from
            // io::Read/Write calls, which take arguments.
            let shape = f.toks[i - 1].is_punct('.')
                && f.toks[i - 2].is_punct(')')
                && f.toks[i - 3].is_punct('(')
                && ACQUIRERS.iter().any(|a| f.toks[i - 4].is_ident(a))
                && f.toks[i - 5].is_punct('.')
                && f.toks.get(i + 1).is_some_and(|t| t.is_punct('('));
            if shape && !f.is_test(i) {
                out.push(finding(
                    "L001",
                    f,
                    i,
                    format!(
                        ".{}().{}() on a lock guard panics on poison and cascades the failure",
                        f.toks[i - 4].text, t.text
                    ),
                    "recover with .unwrap_or_else(PoisonError::into_inner) or map_err to a typed error",
                ));
            }
        }
    }
}

/// L002 — lock acquisitions must conform to the `LOCK_ORDER.md` total
/// order. Acquisition sites are found textually from the manifest's
/// declared patterns; within each function, acquiring a lower-ranked
/// lock after a higher-ranked one is an inversion. A pattern that no
/// longer matches any code fails closed: the manifest is stale.
///
/// This is the static half of the check — it cannot see cross-function
/// nesting (the runtime `lockcheck` wrappers cover that); it keeps the
/// manifest honest and catches same-function inversions before they run.
pub fn l002(files: &[SourceFile], manifest: &LockManifest, out: &mut Vec<Finding>) {
    // Joined-token suffix match: the pattern `self.inner.lock(` matches
    // at a `(` token when the concatenated text of the preceding tokens
    // ends with it.
    const WINDOW: usize = 12;
    for f in files {
        // (token index, lock name) acquisition events, source order.
        let mut events: Vec<(usize, &str)> = Vec::new();
        for site in manifest.sites.iter().filter(|s| s.file == f.path) {
            for i in 0..f.toks.len() {
                if !f.toks[i].is_punct('(') {
                    continue;
                }
                let start = i.saturating_sub(WINDOW);
                let joined: String = f.toks[start..=i].iter().map(|t| t.text.as_str()).collect();
                if joined.ends_with(&site.pattern) && !f.is_test(i) {
                    events.push((i, site.lock.as_str()));
                }
            }
        }
        events.sort_by_key(|(i, _)| *i);
        // Compare every ordered pair within the same function.
        for (a_pos, (ai, a_lock)) in events.iter().enumerate() {
            for (bi, b_lock) in events.iter().skip(a_pos + 1) {
                if a_lock == b_lock || f.enclosing_fn(*ai) != f.enclosing_fn(*bi) {
                    continue;
                }
                let (ra, rb) = (manifest.rank(a_lock), manifest.rank(b_lock));
                if let (Some(ra), Some(rb)) = (ra, rb) {
                    if ra > rb {
                        out.push(finding(
                            "L002",
                            f,
                            *bi,
                            format!(
                                "'{b_lock}' (rank {rb}) acquired after '{a_lock}' (rank {ra}) — \
                                 LOCK_ORDER.md requires the reverse",
                            ),
                            "acquire locks in manifest order, or split the critical sections",
                        ));
                    }
                }
            }
        }
    }
    // Stale manifest entries: every declared site must still match.
    for site in &manifest.sites {
        let file = files.iter().find(|f| f.path == site.file);
        let matched = file.is_some_and(|f| {
            (0..f.toks.len()).any(|i| {
                f.toks[i].is_punct('(') && {
                    let start = i.saturating_sub(WINDOW);
                    let joined: String =
                        f.toks[start..=i].iter().map(|t| t.text.as_str()).collect();
                    joined.ends_with(&site.pattern)
                }
            })
        });
        if !matched {
            out.push(Finding {
                rule: "L002",
                path: "LOCK_ORDER.md".to_owned(),
                line: 0,
                func: "*".to_owned(),
                message: format!(
                    "stale manifest entry: pattern {:?} for lock '{}' matches nothing in {}",
                    site.pattern, site.lock, site.file
                ),
                fixit: "update LOCK_ORDER.md to the current acquisition sites".to_owned(),
            });
        }
    }
}

/// Extracts a Prometheus metric-family name from a string literal, if
/// it looks like one: `fd_`-prefixed, `[a-z0-9_]`, label block (and
/// anything after `{`) stripped. Format fragments like
/// `fd_commit_{p}_seconds` strip to a trailing `_` and are rejected.
pub fn metric_name(literal: &str) -> Option<&str> {
    let name = literal.split('{').next().unwrap_or("");
    let ok = name.strip_prefix("fd_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    }) && !name.ends_with('_');
    ok.then_some(name)
}

/// L003 — every `fd_*` metric-name literal in live code must appear in
/// `tests/golden/metrics_names.golden`, and every golden family must
/// still exist in code. Drift in either direction is a finding, so the
/// golden cannot silently rot.
pub fn l003(files: &[SourceFile], golden: &str, out: &mut Vec<Finding>) {
    // Golden families: `# HELP <name> <help>` lines.
    let mut golden_names: BTreeMap<&str, u32> = BTreeMap::new();
    for (lineno, line) in golden.lines().enumerate() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            if let Some(name) = rest.split_whitespace().next() {
                golden_names.entry(name).or_insert(lineno as u32 + 1);
            }
        }
    }
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for f in files {
        for (i, t) in f.toks.iter().enumerate() {
            if t.kind != crate::lexer::TokKind::Str || f.is_test(i) {
                continue;
            }
            let Some(name) = metric_name(&t.text) else {
                continue;
            };
            seen.insert(name);
            if !golden_names.contains_key(name) {
                out.push(finding(
                    "L003",
                    f,
                    i,
                    format!("metric '{name}' is not in tests/golden/metrics_names.golden"),
                    "add a # HELP/# TYPE pair to the golden (or rename the metric)",
                ));
            }
        }
    }
    for (name, line) in &golden_names {
        if !seen.contains(name) {
            out.push(Finding {
                rule: "L003",
                path: "tests/golden/metrics_names.golden".to_owned(),
                line: *line,
                func: "*".to_owned(),
                message: format!("golden metric '{name}' no longer appears in live code"),
                fixit: "remove the stale golden entry (or restore the metric)".to_owned(),
            });
        }
    }
}

/// L004 — the on-disk format constants (WAL/snapshot file names,
/// version, magic) are defined in exactly one module, so the format can
/// never fork. Consts named `WAL_*`/`SNAPSHOT_*` and literals carrying
/// the snapshot magic may only live in the owner file; everyone else
/// imports them.
pub fn l004(files: &[SourceFile], out: &mut Vec<Finding>) {
    const OWNER: &str = "crates/core/src/store.rs";
    const PREFIXES: [&str; 2] = ["WAL_", "SNAPSHOT_"];
    const MAGIC: &str = "fdsnap";
    for f in files {
        if f.path == OWNER {
            continue;
        }
        for (i, t) in f.toks.iter().enumerate() {
            if f.is_test(i) {
                continue;
            }
            let is_format_const = i > 0
                && f.toks[i - 1].is_ident("const")
                && t.kind == crate::lexer::TokKind::Ident
                && PREFIXES.iter().any(|p| t.text.starts_with(p));
            if is_format_const {
                out.push(finding(
                    "L004",
                    f,
                    i,
                    format!("format constant '{}' declared outside {OWNER}", t.text),
                    "import the constant from the owning module instead of redefining it",
                ));
            }
            if t.kind == crate::lexer::TokKind::Str && t.text.contains(MAGIC) {
                out.push(finding(
                    "L004",
                    f,
                    i,
                    format!("snapshot magic {MAGIC:?} hard-coded outside {OWNER}"),
                    "use the owning module's constants to build/parse headers",
                ));
            }
        }
    }
}

/// L005 — recovery and replay paths must be deterministic: no
/// `Instant::now`/`SystemTime::now` in the store module, in any
/// function whose name mentions replay/recover, or in the session
/// `open*` recovery entry points. Wall-clock reads there make recovery
/// depend on when it runs, not on the log.
pub fn l005(files: &[SourceFile], out: &mut Vec<Finding>) {
    const STORE: &str = "crates/core/src/store.rs";
    const SESSION: &str = "crates/core/src/session.rs";
    for f in files {
        for i in 0..f.toks.len() {
            let clock = (f.toks[i].is_ident("Instant") || f.toks[i].is_ident("SystemTime"))
                && f.toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && f.toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && f.toks.get(i + 3).is_some_and(|t| t.is_ident("now"));
            if !clock || f.is_test(i) {
                continue;
            }
            let func = f.enclosing_fn(i);
            let in_recovery = f.path == STORE
                || func.contains("replay")
                || func.contains("recover")
                || (f.path == SESSION && func.starts_with("open"));
            if in_recovery {
                out.push(finding(
                    "L005",
                    f,
                    i,
                    format!("{}::now() in recovery/replay path '{func}'", f.toks[i].text),
                    "thread a timestamp in from the caller or derive it from the log record",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(Path::new(path), src)
    }

    #[test]
    fn l001_flags_live_guard_unwrap_but_not_tests_or_io() {
        let files = vec![parse(
            "crates/x/src/a.rs",
            r#"
            fn bad() { let g = m.lock().unwrap(); let h = t.read().expect("x"); }
            fn ok() { let g = m.lock().unwrap_or_else(PoisonError::into_inner); }
            fn io_ok(r: &mut impl Read) { r.read(&mut buf).unwrap(); }
            #[cfg(test)]
            mod tests { fn t() { m.lock().unwrap(); } }
            "#,
        )];
        let mut out = Vec::new();
        l001(&files, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|f| f.func == "bad"));
    }

    #[test]
    fn l002_flags_inversion_and_stale_entries() {
        let manifest = LockManifest::parse(
            "```lock-order\nfirst a.rs one.lock(\nsecond a.rs two.lock(\nghost a.rs gone.lock(\n```",
        )
        .unwrap();
        let files = vec![parse(
            "a.rs",
            "fn ok() { one.lock(); two.lock(); }\nfn bad() { two.lock(); one.lock(); }",
        )];
        let mut out = Vec::new();
        l002(&files, &manifest, &mut out);
        let inversions: Vec<_> = out.iter().filter(|f| f.func == "bad").collect();
        assert_eq!(inversions.len(), 1, "{out:?}");
        assert!(inversions[0].message.contains("'first'"));
        assert!(inversions[0].message.contains("'second'"));
        let stale: Vec<_> = out.iter().filter(|f| f.message.contains("stale")).collect();
        assert_eq!(stale.len(), 1, "{out:?}");
        assert!(stale[0].message.contains("ghost"));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn metric_name_extraction() {
        assert_eq!(metric_name("fd_commits_total"), Some("fd_commits_total"));
        assert_eq!(
            metric_name(r#"fd_ops_total{{op="{op}"}} {n}"#),
            Some("fd_ops_total")
        );
        assert_eq!(metric_name("fd_commit_{p}_seconds"), None);
        assert_eq!(metric_name("not_fd"), None);
        assert_eq!(metric_name("fd_Bad"), None);
        assert_eq!(metric_name("fd_"), None);
    }

    #[test]
    fn l003_flags_drift_both_ways() {
        let golden = "# HELP fd_known_total known\n# TYPE fd_known_total counter\n\
                      # HELP fd_gone_total gone\n# TYPE fd_gone_total counter\n";
        let files = vec![parse(
            "crates/x/src/a.rs",
            r#"fn f() { reg("fd_known_total"); reg("fd_new_total"); }"#,
        )];
        let mut out = Vec::new();
        l003(&files, golden, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|f| f.message.contains("'fd_new_total'")));
        assert!(out
            .iter()
            .any(|f| f.message.contains("'fd_gone_total'") && f.path.ends_with(".golden")));
    }

    #[test]
    fn l004_flags_foreign_definitions_only() {
        let files = vec![
            parse(
                "crates/core/src/store.rs",
                r#"pub const WAL_FILE: &str = "wal.fd"; const M: &str = "fdsnap";"#,
            ),
            parse(
                "crates/x/src/b.rs",
                r#"const WAL_FILE: &str = "copy.fd"; fn f() { parse("fdsnap v2"); }
                   use store::SNAPSHOT_FILE; const DEFAULT_WAL_COMPACTION: u64 = 1;"#,
            ),
        ];
        let mut out = Vec::new();
        l004(&files, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|f| f.path == "crates/x/src/b.rs"));
    }

    #[test]
    fn l005_flags_clocks_only_in_recovery_paths() {
        let files = vec![
            parse("crates/core/src/store.rs", "fn any() { Instant::now(); }"),
            parse(
                "crates/core/src/session.rs",
                "fn open_inner() { SystemTime::now(); }\nfn commit() { Instant::now(); }",
            ),
            parse(
                "crates/x/src/c.rs",
                "fn replay_wal() { Instant::now(); }\nfn f() { Instant::now(); }",
            ),
        ];
        let mut out = Vec::new();
        l005(&files, &mut out);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().any(|f| f.func == "any"));
        assert!(out.iter().any(|f| f.func == "open_inner"));
        assert!(out.iter().any(|f| f.func == "replay_wal"));
    }
}
