//! fd-lint — the workspace invariant analyzer.
//!
//! A zero-dependency static-analysis pass over the workspace's Rust
//! sources: a hand-rolled lexer strips comments and strings
//! ([`lexer`]), light structure is recovered per file ([`source`]),
//! and five token-pattern rules ([`rules`]) enforce invariants the
//! compiler cannot see:
//!
//! | rule | invariant |
//! |------|-----------|
//! | L001 | no `.unwrap()`/`.expect()` on lock-guard results outside tests |
//! | L002 | lock acquisitions conform to the `LOCK_ORDER.md` manifest |
//! | L003 | `fd_*` metric names ↔ `tests/golden/metrics_names.golden`, both ways |
//! | L004 | WAL/snapshot format constants live in exactly one module |
//! | L005 | no wall-clock reads in recovery/replay paths |
//!
//! Suppressions live in `LINT_ALLOW.txt` (`RULE path func`, `*` for
//! any function); unused entries are reported as stale so the file
//! cannot accumulate dead exemptions. CI runs
//! `cargo run -p fd-lint -- --deny`, which exits non-zero on any
//! active finding or stale suppression.

pub mod config;
pub mod lexer;
pub mod rules;
pub mod source;

use source::SourceFile;
use std::path::Path;

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule code, e.g. `L001`.
    pub rule: &'static str,
    /// Root-relative path of the offending file (or config artifact).
    pub path: String,
    /// 1-based line, `0` when the finding has no single line.
    pub line: u32,
    /// Enclosing function, `*` outside any function.
    pub func: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub fixit: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, w: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            w,
            "{} {}:{} ({}): {}\n      fix: {}",
            self.rule, self.path, self.line, self.func, self.message, self.fixit
        )
    }
}

/// The outcome of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Active findings — these fail `--deny`.
    pub findings: Vec<Finding>,
    /// Findings suppressed by `LINT_ALLOW.txt` entries.
    pub suppressed: Vec<Finding>,
    /// Allowlist entries that suppressed nothing — also fail `--deny`.
    pub stale_allow: Vec<String>,
}

impl Report {
    /// Does the report demand a non-zero `--deny` exit?
    pub fn is_dirty(&self) -> bool {
        !self.findings.is_empty() || !self.stale_allow.is_empty()
    }
}

/// Directories scanned under the workspace root.
const SCAN_DIRS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Root-relative prefixes never scanned: fd-lint itself (its fixtures
/// are deliberately bad), the vendored dependency shims, and build
/// output.
const SKIP: [&str; 3] = ["crates/lint", "shims", "target"];

/// Runs every rule over the workspace at `root`.
///
/// Errors are configuration problems (unreadable/malformed
/// `LOCK_ORDER.md`, `LINT_ALLOW.txt`, or metrics golden) — callers
/// should treat them as distinct from findings (the CLI exits 2).
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let manifest = config::load_manifest(root)?;
    let allow = config::load_allowlist(root)?;
    let golden_path = root.join("tests/golden/metrics_names.golden");
    let golden = std::fs::read_to_string(&golden_path)
        .map_err(|e| format!("cannot read {}: {e}", golden_path.display()))?;

    let mut files = Vec::new();
    for rel in source::collect_rs_files(root, &SCAN_DIRS, &SKIP) {
        let src = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("cannot read {}: {e}", rel.display()))?;
        files.push(SourceFile::parse(&rel, &src));
    }
    if files.is_empty() {
        return Err(format!("no Rust sources under {}", root.display()));
    }

    let mut raw = Vec::new();
    rules::l001(&files, &mut raw);
    rules::l002(&files, &manifest, &mut raw);
    rules::l003(&files, &golden, &mut raw);
    rules::l004(&files, &mut raw);
    rules::l005(&files, &mut raw);

    let mut report = Report::default();
    for f in raw {
        if allow.allows(f.rule, &f.path, &f.func) {
            report.suppressed.push(f);
        } else {
            report.findings.push(f);
        }
    }
    report.stale_allow = allow.stale();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The meta-test: fd-lint must run clean on the workspace it lives
    /// in. Any rule violation introduced into the real sources — or any
    /// suppression that stops matching — fails this test before CI's
    /// dedicated `--deny` job even runs.
    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_workspace(&root).expect("lint config loads");
        assert!(
            report.findings.is_empty(),
            "active findings:\n{}",
            report
                .findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            report.stale_allow.is_empty(),
            "stale allowlist entries: {:?}",
            report.stale_allow
        );
    }
}
