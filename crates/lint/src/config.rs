//! The two checked-in inputs fd-lint reads besides the source tree:
//! the lock-order manifest (`LOCK_ORDER.md`) and the suppression file
//! (`LINT_ALLOW.txt`).

use std::path::Path;

/// One declared lock-acquisition site: acquiring `lock` happens where
/// the joined token text of `file` ends with `pattern`.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Manifest lock name (also the runtime `TrackedMutex` name).
    pub lock: String,
    /// Root-relative source file holding the acquisition.
    pub file: String,
    /// Whitespace-free token-text pattern, e.g. `self.inner.lock(`.
    pub pattern: String,
}

/// The parsed `LOCK_ORDER.md` manifest.
#[derive(Debug, Default)]
pub struct LockManifest {
    /// Lock name -> rank. Lower ranks must be acquired first; a lock's
    /// rank is its first appearance in the manifest block.
    pub ranks: Vec<(String, usize)>,
    /// Every declared acquisition site.
    pub sites: Vec<LockSite>,
}

impl LockManifest {
    /// The declared rank of `lock`, if the manifest names it.
    pub fn rank(&self, lock: &str) -> Option<usize> {
        self.ranks.iter().find(|(n, _)| n == lock).map(|(_, r)| *r)
    }

    /// Parses the fenced ```` ```lock-order ```` block out of the
    /// manifest's markdown. Each non-comment line is
    /// `lock-name  file  pattern` (whitespace-separated); a lock may
    /// list several sites, and its rank is its first line's position.
    pub fn parse(markdown: &str) -> Result<LockManifest, String> {
        let mut manifest = LockManifest::default();
        let mut in_block = false;
        for (lineno, line) in markdown.lines().enumerate() {
            let trimmed = line.trim();
            if !in_block {
                in_block = trimmed == "```lock-order";
                continue;
            }
            if trimmed == "```" {
                in_block = false;
                continue;
            }
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            let [lock, file, pattern] = fields[..] else {
                return Err(format!(
                    "LOCK_ORDER.md line {}: expected `lock-name file pattern`, got {trimmed:?}",
                    lineno + 1
                ));
            };
            if manifest.rank(lock).is_none() {
                let next = manifest.ranks.len();
                manifest.ranks.push((lock.to_owned(), next));
            }
            manifest.sites.push(LockSite {
                lock: lock.to_owned(),
                file: file.to_owned(),
                pattern: pattern.to_owned(),
            });
        }
        if manifest.sites.is_empty() {
            return Err("LOCK_ORDER.md: no ```lock-order block with entries found".to_owned());
        }
        Ok(manifest)
    }
}

/// One `LINT_ALLOW.txt` entry: suppress `rule` findings in `path`,
/// either for one function or (`*`) for the whole file.
#[derive(Debug)]
pub struct AllowEntry {
    /// Rule code, e.g. `L001`.
    pub rule: String,
    /// Root-relative file path the suppression applies to.
    pub path: String,
    /// Function name, or `*` for any location in the file.
    pub func: String,
    /// The source line, echoed back for stale-entry reporting.
    pub display: String,
}

/// The parsed suppression file. Entries record whether they matched
/// anything so unused ones can be reported as stale.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// All parsed entries, in file order.
    pub entries: Vec<AllowEntry>,
    used: std::cell::RefCell<Vec<bool>>,
}

impl Allowlist {
    /// Parses `LINT_ALLOW.txt` content: one `RULE path func` entry per
    /// line; `#` comments (inline or whole-line) and blanks ignored.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let body = line.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let fields: Vec<&str> = body.split_whitespace().collect();
            let [rule, path, func] = fields[..] else {
                return Err(format!(
                    "LINT_ALLOW.txt line {}: expected `RULE path func`, got {body:?}",
                    lineno + 1
                ));
            };
            entries.push(AllowEntry {
                rule: rule.to_owned(),
                path: path.to_owned(),
                func: func.to_owned(),
                display: body.to_owned(),
            });
        }
        let used = std::cell::RefCell::new(vec![false; entries.len()]);
        Ok(Allowlist { entries, used })
    }

    /// Does an entry suppress this finding? Marks the entry used.
    pub fn allows(&self, rule: &str, path: &str, func: &str) -> bool {
        let mut hit = false;
        for (i, e) in self.entries.iter().enumerate() {
            if e.rule == rule && e.path == path && (e.func == "*" || e.func == func) {
                self.used.borrow_mut()[i] = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that never matched a finding — stale suppressions.
    pub fn stale(&self) -> Vec<String> {
        let used = self.used.borrow();
        self.entries
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .map(|(_, e)| e.display.clone())
            .collect()
    }
}

/// Reads and parses the manifest from `root`.
pub fn load_manifest(root: &Path) -> Result<LockManifest, String> {
    let path = root.join("LOCK_ORDER.md");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    LockManifest::parse(&text)
}

/// Reads and parses the allowlist from `root`; a missing file is an
/// empty allowlist.
pub fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    let path = root.join("LINT_ALLOW.txt");
    match std::fs::read_to_string(&path) {
        Ok(text) => Allowlist::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_ranks_follow_first_appearance() {
        let md = "intro\n```lock-order\n# comment\na f1.rs a.lock(\nb f1.rs b.lock(\na f2.rs a2.lock(\n```\noutro";
        let m = LockManifest::parse(md).unwrap();
        assert_eq!(m.rank("a"), Some(0));
        assert_eq!(m.rank("b"), Some(1));
        assert_eq!(m.sites.len(), 3);
    }

    #[test]
    fn manifest_rejects_malformed_lines() {
        let md = "```lock-order\njust-two fields\n```";
        assert!(LockManifest::parse(md).is_err());
    }

    #[test]
    fn allowlist_matches_and_tracks_staleness() {
        let a = Allowlist::parse("L001 src/x.rs foo # reason\nL002 src/y.rs *\n").unwrap();
        assert!(a.allows("L001", "src/x.rs", "foo"));
        assert!(!a.allows("L001", "src/x.rs", "bar"));
        assert!(a.allows("L002", "src/y.rs", "anything"));
        assert!(a.stale().is_empty());

        let b = Allowlist::parse("L003 src/z.rs *\n").unwrap();
        assert_eq!(b.stale(), vec!["L003 src/z.rs *".to_owned()]);
    }
}
