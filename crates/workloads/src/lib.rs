//! # fd-workloads
//!
//! Synthetic workload generators for the full-disjunction experiments:
//! schema families ([`chain`], [`star`], [`cycle`], [`random_connected`],
//! [`travel`]) with controllable size, join selectivity, Zipf skew, null
//! density and typo noise, plus importance/probability assignments for
//! the ranked and approximate variants. Everything is deterministic in
//! the seed so benchmark runs are reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod scoring;
pub mod snowflake;
pub mod synthetic;
pub mod zipf;

pub use scoring::{positional_importance, random_importance, random_probability};
pub use snowflake::snowflake;
pub use synthetic::{chain, cycle, random_connected, scrambled_name, star, travel, DataSpec};
pub use zipf::Zipf;
