//! A snowflake schema generator: a fact relation, first-level dimensions,
//! and second-level sub-dimensions — the classic warehouse layout, and a
//! deeper γ-acyclic shape than stars for the experiments.

use crate::synthetic::DataSpec;
use crate::zipf::Zipf;
use fd_relational::{Database, DatabaseBuilder, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a snowflake: `Fact(D0..D_{dims-1}, PF)`, dimensions
/// `Dim_i(D_i, S_i, PD_i)` and sub-dimensions `Sub_i(S_i, PS_i)`.
/// Total relations: `1 + 2·dims`. γ-acyclic and connected.
pub fn snowflake(dims: usize, spec: &DataSpec) -> Database {
    assert!(dims >= 1, "need at least one dimension");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let zipf = Zipf::new(spec.domain.max(1), spec.skew);
    let mut b = DatabaseBuilder::new();
    {
        let key_names: Vec<String> = (0..dims).map(|i| format!("D{i}")).collect();
        let mut attrs: Vec<&str> = key_names.iter().map(String::as_str).collect();
        attrs.push("PF");
        let mut fact = b.relation("Fact", &attrs);
        for row in 0..spec.rows {
            let mut values: Vec<Value> = (0..dims)
                .map(|_| Value::Int(zipf.sample(&mut rng) as i64))
                .collect();
            values.push(Value::Int(row as i64));
            fact.row_values(values);
        }
    }
    for i in 0..dims {
        let (dkey, skey, payload) = (format!("D{i}"), format!("S{i}"), format!("PD{i}"));
        let mut dim = b.relation(&format!("Dim{i}"), &[&dkey, &skey, &payload]);
        for row in 0..spec.rows {
            dim.row_values(vec![
                Value::Int(zipf.sample(&mut rng) as i64),
                Value::Int(zipf.sample(&mut rng) as i64),
                Value::Int((1000 * (i + 1) + row) as i64),
            ]);
        }
        let (skey2, payload2) = (format!("S{i}"), format!("PS{i}"));
        let mut sub = b.relation(&format!("Sub{i}"), &[&skey2, &payload2]);
        for row in 0..spec.rows {
            sub.row_values(vec![
                Value::Int(zipf.sample(&mut rng) as i64),
                Value::Int((2000 * (i + 1) + row) as i64),
            ]);
        }
    }
    b.build().expect("snowflake schema is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_relational::hypergraph::Hypergraph;

    #[test]
    fn snowflake_shape() {
        let db = snowflake(3, &DataSpec::new(6, 3).seed(9));
        assert_eq!(db.num_relations(), 7);
        assert!(db.is_connected());
        assert!(Hypergraph::of_database(&db).is_gamma_acyclic());
    }

    #[test]
    fn snowflake_fd_agrees_with_oracle_on_small_instances() {
        // Oracle-checked correctness on the deeper shape.
        let db = snowflake(2, &DataSpec::new(3, 2).seed(10));
        let fd = fd_core::canonicalize(fd_core::FdQuery::over(&db).run().unwrap().into_sets());
        // Axiom checks without the exponential oracle: JCC + coverage.
        for s in &fd {
            assert!(fd_core::jcc::is_jcc(&db, s.tuples()));
        }
        for t in db.all_tuples() {
            assert!(fd.iter().any(|s| s.contains(t)));
        }
        for a in &fd {
            for b in &fd {
                if a.tuples() != b.tuples() {
                    assert!(!a.is_subset_of(b));
                }
            }
        }
    }

    #[test]
    fn snowflake_is_deterministic() {
        let a = snowflake(2, &DataSpec::new(4, 3).seed(11));
        let b = snowflake(2, &DataSpec::new(4, 3).seed(11));
        for t in a.all_tuples() {
            assert_eq!(a.tuple_values(t), b.tuple_values(t));
        }
    }
}
