//! Synthetic schema and data generators.
//!
//! The paper evaluates an algorithm, not a dataset — its motivating
//! workloads are web-integration tables (Table 1). These generators
//! produce families of databases whose *shape* stresses the quantities
//! the complexity results depend on: number of relations `n`, input size
//! `s`, output size `f` (steered by join selectivity through the join-
//! value domain), skew, null density and (for the approximate variant)
//! spelling noise.
//!
//! Every generator is deterministic in its seed.

use crate::zipf::Zipf;
use fd_relational::{Database, DatabaseBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Data-generation knobs shared by all schema shapes.
#[derive(Debug, Clone)]
pub struct DataSpec {
    /// Rows per relation.
    pub rows: usize,
    /// Join values are drawn from `{0, …, domain−1}`: smaller domains ⇒
    /// higher selectivity ⇒ larger full disjunctions.
    pub domain: usize,
    /// Zipf exponent for join values (`0.0` = uniform).
    pub skew: f64,
    /// Probability that a join value is replaced by `⊥`.
    pub null_rate: f64,
    /// Render join values as strings `v<k>` (needed for typo injection
    /// and approximate-join workloads).
    pub string_values: bool,
    /// Probability that a string join value receives a one-character typo
    /// (ignored unless `string_values`).
    pub typo_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DataSpec {
    fn default() -> Self {
        DataSpec {
            rows: 32,
            domain: 16,
            skew: 0.0,
            null_rate: 0.0,
            string_values: false,
            typo_rate: 0.0,
            seed: 42,
        }
    }
}

impl DataSpec {
    /// A spec with the given rows/domain and defaults elsewhere.
    pub fn new(rows: usize, domain: usize) -> Self {
        DataSpec {
            rows,
            domain,
            ..Default::default()
        }
    }

    /// Sets the seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Zipf exponent.
    pub fn skew(mut self, s: f64) -> Self {
        self.skew = s;
        self
    }

    /// Sets the null-injection rate.
    pub fn null_rate(mut self, r: f64) -> Self {
        self.null_rate = r;
        self
    }

    /// Switches join values to strings with the given typo rate.
    pub fn typos(mut self, rate: f64) -> Self {
        self.string_values = true;
        self.typo_rate = rate;
        self
    }

    fn join_value(&self, rng: &mut StdRng, zipf: &Zipf) -> Value {
        if self.null_rate > 0.0 && rng.gen_bool(self.null_rate.min(1.0)) {
            return Value::Null;
        }
        let k = zipf.sample(rng);
        if self.string_values {
            let mut s = scrambled_name(k);
            if self.typo_rate > 0.0 && rng.gen_bool(self.typo_rate.min(1.0)) {
                inject_typo(&mut s, rng);
            }
            Value::str(s)
        } else {
            Value::Int(k as i64)
        }
    }
}

/// Deterministic 8-letter name for domain value `k`. Distinct values get
/// unrelated spellings (normalized edit similarity ≈ 0.15), so a single
/// injected typo (similarity ≈ 0.88) stays clearly separated from a
/// genuinely different value — the regime approximate joins assume.
pub fn scrambled_name(k: usize) -> String {
    let mut x = (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut s = String::with_capacity(8);
    for _ in 0..8 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.push(char::from(b'a' + (x % 26) as u8));
    }
    s
}

/// Mutates one character of `s` (substitution, duplication or deletion),
/// mimicking wrapper extraction noise.
fn inject_typo(s: &mut String, rng: &mut StdRng) {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return;
    }
    let pos = rng.gen_range(0..chars.len());
    let mut out: Vec<char> = chars.clone();
    match rng.gen_range(0..3u8) {
        0 => out[pos] = char::from(b'a' + rng.gen_range(0..26u8)), // substitute
        1 => out.insert(pos, chars[pos]),                          // duplicate
        _ => {
            if out.len() > 1 {
                out.remove(pos); // delete
            } else {
                out[pos] = 'x';
            }
        }
    }
    *s = out.into_iter().collect();
}

/// A chain schema `R0(J0,J1,P0), R1(J1,J2,P1), …`: every relation shares
/// one join attribute with each neighbor. γ-acyclic, so all baselines
/// apply. Each relation also carries a unique payload column.
pub fn chain(n: usize, spec: &DataSpec) -> Database {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let zipf = Zipf::new(spec.domain.max(1), spec.skew);
    let mut b = DatabaseBuilder::new();
    for i in 0..n {
        let name = format!("C{i}");
        let j0 = format!("J{i}");
        let j1 = format!("J{}", i + 1);
        let payload = format!("P{i}");
        let mut rel = b.relation(&name, &[&j0, &j1, &payload]);
        for row in 0..spec.rows {
            rel.row_values(vec![
                spec.join_value(&mut rng, &zipf),
                spec.join_value(&mut rng, &zipf),
                Value::Int((i * 1_000_000 + row) as i64),
            ]);
        }
    }
    b.build().expect("chain schema is well-formed")
}

/// A star schema: hub `H(K0..K_{m-1}, PH)` with `m = n−1` spokes
/// `S_i(K_i, P_i)`. γ-acyclic.
pub fn star(n: usize, spec: &DataSpec) -> Database {
    assert!(n >= 2, "star needs a hub and at least one spoke");
    let spokes = n - 1;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let zipf = Zipf::new(spec.domain.max(1), spec.skew);
    let mut b = DatabaseBuilder::new();
    {
        let key_names: Vec<String> = (0..spokes).map(|i| format!("K{i}")).collect();
        let mut attrs: Vec<&str> = key_names.iter().map(String::as_str).collect();
        attrs.push("PH");
        let mut hub = b.relation("Hub", &attrs);
        for row in 0..spec.rows {
            let mut values: Vec<Value> = (0..spokes)
                .map(|_| spec.join_value(&mut rng, &zipf))
                .collect();
            values.push(Value::Int(row as i64));
            hub.row_values(values);
        }
    }
    for i in 0..spokes {
        let name = format!("S{i}");
        let key = format!("K{i}");
        let payload = format!("P{i}");
        let mut rel = b.relation(&name, &[&key, &payload]);
        for row in 0..spec.rows {
            rel.row_values(vec![
                spec.join_value(&mut rng, &zipf),
                Value::Int(((i + 1) * 1_000_000 + row) as i64),
            ]);
        }
    }
    b.build().expect("star schema is well-formed")
}

/// A cycle schema: like [`chain`] but the last relation closes the loop
/// by sharing `J0` with the first. γ-cyclic for `n ≥ 3` — the outerjoin
/// baseline must refuse it while `INCREMENTALFD` handles it unchanged.
pub fn cycle(n: usize, spec: &DataSpec) -> Database {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let zipf = Zipf::new(spec.domain.max(1), spec.skew);
    let mut b = DatabaseBuilder::new();
    for i in 0..n {
        let name = format!("Y{i}");
        let j0 = format!("J{i}");
        let j1 = format!("J{}", (i + 1) % n);
        let payload = format!("P{i}");
        let mut rel = b.relation(&name, &[&j0, &j1, &payload]);
        for row in 0..spec.rows {
            rel.row_values(vec![
                spec.join_value(&mut rng, &zipf),
                spec.join_value(&mut rng, &zipf),
                Value::Int((i * 1_000_000 + row) as i64),
            ]);
        }
    }
    b.build().expect("cycle schema is well-formed")
}

/// A random connected schema: a chain backbone plus `extra_edges`
/// additional shared attributes between random relation pairs. Arbitrary
/// acyclicity class; exercises the general algorithm.
pub fn random_connected(n: usize, extra_edges: usize, spec: &DataSpec) -> Database {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x9e37_79b9);
    // Attribute layout: backbone J0..Jn as in `chain`; extras X0..Xk each
    // shared by a random pair.
    let mut rel_attrs: Vec<Vec<String>> = (0..n)
        .map(|i| vec![format!("J{i}"), format!("J{}", i + 1)])
        .collect();
    for e in 0..extra_edges {
        if n < 2 {
            break;
        }
        let a = rng.gen_range(0..n);
        let mut bb = rng.gen_range(0..n);
        while bb == a {
            bb = rng.gen_range(0..n);
        }
        rel_attrs[a].push(format!("X{e}"));
        rel_attrs[bb].push(format!("X{e}"));
    }
    for (i, attrs) in rel_attrs.iter_mut().enumerate() {
        attrs.push(format!("P{i}"));
    }

    let mut data_rng = StdRng::seed_from_u64(spec.seed);
    let zipf = Zipf::new(spec.domain.max(1), spec.skew);
    let mut b = DatabaseBuilder::new();
    for (i, attrs) in rel_attrs.iter().enumerate() {
        let name = format!("N{i}");
        let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let mut rel = b.relation(&name, &refs);
        for row in 0..spec.rows {
            let mut values: Vec<Value> = (0..attrs.len() - 1)
                .map(|_| spec.join_value(&mut data_rng, &zipf))
                .collect();
            values.push(Value::Int((i * 1_000_000 + row) as i64));
            rel.row_values(values);
        }
    }
    b.build().expect("random schema is well-formed")
}

/// A larger tourist-flavored database in the spirit of Table 1:
/// `Climates(Country, Climate)`, `Accommodations(Country, City, Hotel,
/// Stars)`, `Sites(Country, City, Site)`, with `countries` countries,
/// `rows` rows in the two big relations, optional nulls and typos.
pub fn travel(countries: usize, rows: usize, spec: &DataSpec) -> Database {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let country = |k: usize| format!("Country{k:03}");
    let city = |c: usize, k: usize| format!("City{c:03}x{k:02}");
    let climates = ["tropical", "temperate", "diverse", "arid", "polar"];
    let mut b = DatabaseBuilder::new();
    {
        let mut rel = b.relation("Climates", &["Country", "Climate"]);
        for k in 0..countries {
            let mut name = country(k);
            if spec.typo_rate > 0.0 && rng.gen_bool(spec.typo_rate.min(1.0)) {
                inject_typo(&mut name, &mut rng);
            }
            rel.row_values(vec![
                Value::str(name),
                Value::str(climates[k % climates.len()]),
            ]);
        }
    }
    {
        let mut rel = b.relation("Accommodations", &["Country", "City", "Hotel", "Stars"]);
        for row in 0..rows {
            let c = rng.gen_range(0..countries);
            let city_val = if spec.null_rate > 0.0 && rng.gen_bool(spec.null_rate.min(1.0)) {
                Value::Null
            } else {
                Value::str(city(c, rng.gen_range(0..4)))
            };
            let stars = if rng.gen_bool(0.15) {
                Value::Null
            } else {
                Value::Int(rng.gen_range(1..=5))
            };
            rel.row_values(vec![
                Value::str(country(c)),
                city_val,
                Value::str(format!("Hotel{row:04}")),
                stars,
            ]);
        }
    }
    {
        let mut rel = b.relation("Sites", &["Country", "City", "Site"]);
        for row in 0..rows {
            let c = rng.gen_range(0..countries);
            let city_val = if spec.null_rate > 0.0 && rng.gen_bool(spec.null_rate.min(1.0)) {
                Value::Null
            } else {
                Value::str(city(c, rng.gen_range(0..4)))
            };
            rel.row_values(vec![
                Value::str(country(c)),
                city_val,
                Value::str(format!("Site{row:04}")),
            ]);
        }
    }
    b.build().expect("travel schema is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_relational::hypergraph::Hypergraph;

    #[test]
    fn chain_shape_and_determinism() {
        let spec = DataSpec::new(10, 5).seed(7);
        let db1 = chain(4, &spec);
        let db2 = chain(4, &spec);
        assert_eq!(db1.num_relations(), 4);
        assert_eq!(db1.num_tuples(), 40);
        assert!(db1.is_connected());
        assert!(Hypergraph::of_database(&db1).is_gamma_acyclic());
        // Determinism: same seed, same data.
        for t in db1.all_tuples() {
            assert_eq!(db1.tuple_values(t), db2.tuple_values(t));
        }
        // Different seed, different data somewhere.
        let db3 = chain(4, &DataSpec::new(10, 5).seed(8));
        assert!(db1
            .all_tuples()
            .any(|t| db1.tuple_values(t) != db3.tuple_values(t)));
    }

    #[test]
    fn star_is_connected_and_gamma_acyclic() {
        let db = star(4, &DataSpec::new(6, 4));
        assert_eq!(db.num_relations(), 4);
        assert!(db.is_connected());
        assert!(Hypergraph::of_database(&db).is_gamma_acyclic());
    }

    #[test]
    fn cycle_is_gamma_cyclic() {
        let db = cycle(4, &DataSpec::new(4, 4));
        assert!(db.is_connected());
        assert!(!Hypergraph::of_database(&db).is_gamma_acyclic());
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let db = random_connected(5, 3, &DataSpec::new(5, 4).seed(seed));
            assert!(db.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn null_rate_produces_nulls() {
        let db = chain(
            3,
            &DataSpec {
                null_rate: 0.5,
                ..DataSpec::new(30, 8)
            },
        );
        let nulls = db
            .relations()
            .iter()
            .flat_map(|r| r.rows())
            .flat_map(|row| row.iter())
            .filter(|v| v.is_null())
            .count();
        assert!(nulls > 0);
    }

    #[test]
    fn typo_rate_produces_nonstandard_strings() {
        let clean: Vec<String> = (0..4).map(scrambled_name).collect();
        let db = chain(2, &DataSpec::new(50, 4).typos(0.5));
        let odd = db
            .relations()
            .iter()
            .flat_map(|r| r.rows())
            .flat_map(|row| row.iter())
            .filter(|v| match v {
                Value::Str(s) => !clean.iter().any(|c| c.as_str() == s.as_ref()),
                _ => false,
            })
            .count();
        assert!(odd > 0, "expected at least one typo at rate 0.5");
    }

    #[test]
    fn scrambled_names_are_mutually_dissimilar() {
        use fd_core::sim::string_similarity;
        for a in 0..6 {
            for b in 0..6 {
                let (na, nb) = (scrambled_name(a), scrambled_name(b));
                if a == b {
                    assert_eq!(string_similarity(&na, &nb), 1.0);
                } else {
                    assert!(
                        string_similarity(&na, &nb) < 0.6,
                        "{na} vs {nb} too similar"
                    );
                }
            }
        }
    }

    #[test]
    fn travel_database_has_three_relations() {
        let db = travel(6, 20, &DataSpec::default());
        assert_eq!(db.num_relations(), 3);
        assert_eq!(db.relation_by_name("Climates").unwrap().len(), 6);
        assert_eq!(db.relation_by_name("Sites").unwrap().len(), 20);
        assert!(db.is_connected());
    }
}
