//! A Zipf-distributed sampler over `{0, …, n−1}`.
//!
//! Web-extracted tables (the paper's motivating data) are value-skewed:
//! a few countries/cities dominate. The generators optionally draw join
//! values from a Zipf distribution; this implementation precomputes the
//! cumulative weights and samples by binary search (no external crates
//! beyond `rand`).

use rand::Rng;

/// Zipf sampler with exponent `s` over ranks `1..=n` (returned 0-based).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics when `n == 0` or `s` is negative/non-finite. `s = 0` is the
    /// uniform distribution.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite and ≥ 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (constructor forbids empty domains); included for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws a 0-based value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn skewed_sampler_prefers_low_ranks() {
        let z = Zipf::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[60]);
        // Rank 0 should take a large share under s = 1.5.
        assert!(counts[0] as f64 / 20_000.0 > 0.3);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 700.0, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
