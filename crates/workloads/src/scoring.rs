//! Importance and probability assignments for ranked / approximate
//! workloads.

use fd_core::{ImpScores, ProbScores};
use fd_relational::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform-random importances in `[0, 1)`, deterministic in the seed.
pub fn random_importance(db: &Database, seed: u64) -> ImpScores {
    let mut rng = StdRng::seed_from_u64(seed);
    ImpScores::from_fn(db, |_| rng.gen::<f64>())
}

/// Importances proportional to the tuple's position within its relation —
/// a stand-in for "later rows rank higher" source orderings; useful when
/// a deterministic non-constant ranking is needed.
pub fn positional_importance(db: &Database) -> ImpScores {
    ImpScores::from_fn(db, |t| {
        let (rel, row) = db.locate(t);
        let len = db.relation(rel).len().max(1);
        (row + 1) as f64 / len as f64
    })
}

/// Uniform-random per-tuple probabilities in `[lo, 1]`, deterministic in
/// the seed. Models extraction confidence.
pub fn random_probability(db: &Database, lo: f64, seed: u64) -> ProbScores {
    assert!((0.0..=1.0).contains(&lo));
    let mut rng = StdRng::seed_from_u64(seed);
    ProbScores::from_fn(db, |_| lo + rng.gen::<f64>() * (1.0 - lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_relational::tourist_database;

    #[test]
    fn random_importance_is_deterministic_per_seed() {
        let db = tourist_database();
        let a = random_importance(&db, 9);
        let b = random_importance(&db, 9);
        let c = random_importance(&db, 10);
        let ta = fd_relational::TupleId(3);
        assert_eq!(a.imp(ta), b.imp(ta));
        assert!(db.all_tuples().any(|t| a.imp(t) != c.imp(t)));
    }

    #[test]
    fn positional_importance_increases_within_relation() {
        let db = tourist_database();
        let imp = positional_importance(&db);
        assert!(imp.imp(fd_relational::TupleId(0)) < imp.imp(fd_relational::TupleId(2)));
        assert!((imp.imp(fd_relational::TupleId(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_probability_respects_bounds() {
        let db = tourist_database();
        let prob = random_probability(&db, 0.6, 5);
        for t in db.all_tuples() {
            let p = prob.prob(t);
            assert!((0.6..=1.0).contains(&p));
        }
    }
}
