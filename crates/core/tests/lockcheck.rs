//! The runtime lock-order detector, exercised against the real
//! subsystems it guards.
//!
//! Tracking is compiled in under `debug_assertions` (any default test
//! run) or `--features lockcheck` (CI pins it on explicitly so the
//! check survives profile changes); in a release build without the
//! feature these tests compile to nothing.
#![cfg(any(debug_assertions, feature = "lockcheck"))]

use fd_core::obs::lockcheck::{self, TrackedMutex};
use fd_core::serve::SessionHandle;
use fd_core::FdSession;
use fd_relational::{interner, tourist_database};
use std::sync::Arc;

/// The declared order (`LOCK_ORDER.md`): the serve session lock ranks
/// above the interner table. Interning under the session lock — what
/// every commit with string values and every durable checkpoint does —
/// must record exactly that edge and nothing reversed.
#[test]
fn session_then_interner_matches_the_declared_order() {
    let handle = SessionHandle::new(FdSession::new(tourist_database()));
    handle
        .with(|_s| {
            // A commit's WAL encode / event rendering interns under the
            // session lock; do the same, explicitly.
            interner::intern("lockcheck-session-then-interner");
        })
        .unwrap();
    let edges = lockcheck::recorded_edges();
    assert!(
        edges.contains(&("serve.session", "relational.interner")),
        "expected the session->interner edge, got {edges:?}"
    );
    assert!(
        !edges.contains(&("relational.interner", "serve.session")),
        "the reverse edge must never exist: {edges:?}"
    );
}

/// A seeded AB/BA inversion must fire the detector even though the two
/// acquisitions happen on different threads at different times and no
/// actual deadlock occurs — and the panic must name both locks.
#[test]
fn seeded_inversion_is_detected_and_names_both_locks() {
    let a = Arc::new(TrackedMutex::new("core.seeded.first", 0u32));
    let b = Arc::new(TrackedMutex::new("core.seeded.second", 0u32));

    // Establish first -> second.
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        })
        .join()
        .unwrap();
    }

    // Violate it: second -> first.
    let err = std::thread::spawn(move || {
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
    })
    .join()
    .expect_err("the seeded inversion must panic");

    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic payload".to_owned());
    assert!(msg.contains("lock-order inversion"), "{msg}");
    assert!(msg.contains("core.seeded.first"), "{msg}");
    assert!(msg.contains("core.seeded.second"), "{msg}");
}
