//! Property tests for the JCC primitives — the operations every theorem
//! of the paper leans on.

use fd_core::jcc::{
    add_tuple, can_add, extend_to_maximal, is_jcc, maximal_subset_with, rebuild, try_union,
    tuples_join_consistent,
};
use fd_core::sim::{levenshtein, string_similarity};
use fd_core::{Stats, TupleSet};
use fd_relational::{Database, DatabaseBuilder, TupleId, Value};
use proptest::prelude::*;

/// Random 3-relation chain databases with small domains and nulls.
fn arb_db() -> impl Strategy<Value = Database> {
    let row = || (proptest::option::of(0i64..3), proptest::option::of(0i64..3));
    (
        proptest::collection::vec(row(), 1..4),
        proptest::collection::vec(row(), 1..4),
        proptest::collection::vec(row(), 1..4),
    )
        .prop_map(|(r0, r1, r2)| {
            let v = |x: Option<i64>| x.map(Value::Int).unwrap_or(Value::Null);
            let mut b = DatabaseBuilder::new();
            {
                let mut rel = b.relation("R0", &["A", "B"]);
                for (x, y) in r0 {
                    rel.row_values(vec![v(x), v(y)]);
                }
            }
            {
                let mut rel = b.relation("R1", &["B", "C"]);
                for (x, y) in r1 {
                    rel.row_values(vec![v(x), v(y)]);
                }
            }
            {
                let mut rel = b.relation("R2", &["C", "D"]);
                for (x, y) in r2 {
                    rel.row_values(vec![v(x), v(y)]);
                }
            }
            b.build().expect("chain db")
        })
}

/// All JCC sets of a database, tiny brute force local to this test.
fn all_jcc(db: &Database) -> Vec<Vec<TupleId>> {
    let n = db.num_tuples();
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        let members: Vec<TupleId> = (0..n as u32)
            .filter(|i| mask & (1 << i) != 0)
            .map(TupleId)
            .collect();
        if is_jcc(db, &members) {
            out.push(members);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pairwise join consistency is symmetric.
    #[test]
    fn pairwise_consistency_is_symmetric(db in arb_db()) {
        for t1 in db.all_tuples() {
            for t2 in db.all_tuples() {
                prop_assert_eq!(
                    tuples_join_consistent(&db, t1, t2),
                    tuples_join_consistent(&db, t2, t1)
                );
            }
        }
    }

    /// `can_add` + `add_tuple` preserve the full JCC predicate.
    #[test]
    fn growth_preserves_jcc(db in arb_db()) {
        let mut stats = Stats::new();
        for jcc in all_jcc(&db) {
            let set = rebuild(&db, jcc);
            for t in db.all_tuples() {
                if !set.contains(t) && can_add(&db, &set, t, &mut stats) {
                    let grown = add_tuple(&db, &set, t);
                    prop_assert!(is_jcc(&db, grown.tuples()));
                }
            }
        }
    }

    /// `try_union` succeeds exactly when the member union is JCC, and the
    /// result is that union.
    #[test]
    fn union_agrees_with_definition(db in arb_db()) {
        let mut stats = Stats::new();
        let sets = all_jcc(&db);
        for a in sets.iter().take(12) {
            for b in sets.iter().take(12) {
                let sa = rebuild(&db, a.clone());
                let sb = rebuild(&db, b.clone());
                let mut union: Vec<TupleId> =
                    a.iter().chain(b.iter()).copied().collect();
                union.sort_unstable();
                union.dedup();
                match try_union(&db, &sa, &sb, &mut stats) {
                    Some(u) => {
                        prop_assert!(is_jcc(&db, &union));
                        prop_assert_eq!(u.tuples(), union.as_slice());
                    }
                    None => prop_assert!(!is_jcc(&db, &union)),
                }
            }
        }
    }

    /// Footnote 3: `maximal_subset_with` returns the unique maximal JCC
    /// subset of `T ∪ {tb}` containing `tb`.
    #[test]
    fn maximal_subset_is_maximal_and_unique(db in arb_db()) {
        let mut stats = Stats::new();
        for jcc in all_jcc(&db).into_iter().take(16) {
            let set = rebuild(&db, jcc.clone());
            for tb in db.all_tuples() {
                if set.contains(tb) {
                    continue;
                }
                let sub = maximal_subset_with(&db, &set, tb, &mut stats);
                prop_assert!(sub.contains(tb));
                prop_assert!(is_jcc(&db, sub.tuples()));
                // All members come from T ∪ {tb}.
                for &m in sub.tuples() {
                    prop_assert!(m == tb || set.contains(m));
                }
                // Maximality: no further member of T can join.
                for &m in set.tuples() {
                    if !sub.contains(m) {
                        let mut cand = sub.tuples().to_vec();
                        let pos = cand.partition_point(|&x| x < m);
                        cand.insert(pos, m);
                        prop_assert!(!is_jcc(&db, &cand), "{m} was wrongly dropped");
                    }
                }
            }
        }
    }

    /// The extension loop produces a maximal set: nothing can be added.
    #[test]
    fn extension_reaches_a_fixpoint(db in arb_db()) {
        let mut stats = Stats::new();
        for t in db.all_tuples() {
            let maximal = extend_to_maximal(&db, TupleSet::singleton(&db, t), &mut stats);
            prop_assert!(is_jcc(&db, maximal.tuples()));
            for tg in db.all_tuples() {
                if !maximal.contains(tg) {
                    prop_assert!(!can_add(&db, &maximal, tg, &mut stats));
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Levenshtein is a metric (symmetry + triangle inequality) and the
    /// derived similarity stays in [0, 1].
    #[test]
    fn levenshtein_is_a_metric(
        a in "[a-c]{0,6}",
        b in "[a-c]{0,6}",
        c in "[a-c]{0,6}",
    ) {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &b) == 0, a == b);
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        let s = string_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }
}
