//! `fd serve` — the network daemon over [`FdSession`].
//!
//! PR 5 collapsed the live surface into one transactional session with
//! push-based [`EventSink`] subscribers precisely so a server could sit
//! directly on it; this module is that server. The ranked-enumeration
//! line of work frames the consumer side as a *query-serving* primitive
//! — first results in milliseconds over a long-lived connection — and
//! the pieces here map onto that frame one-to-one:
//!
//! * [`SessionHandle`] — a poison-safe `Arc<Mutex<FdSession<'static>>>`
//!   every connection thread shares. Commits serialize through the one
//!   session, so each lands in exactly **one** maintenance pass and all
//!   subscribers observe the same commit order.
//! * [`Server`] — a std-`TcpListener` daemon, one thread per connection
//!   plus per-subscriber forwarding threads; no runtime dependencies.
//! * The wire protocol — line-oriented text, a superset of the `fd
//!   watch` REPL grammar ([`parse_command`]), framed by
//!   [`fd_relational::textio`]'s quote/escape discipline (one value, one
//!   line — a row never contains a raw newline).
//! * [`Client`] — a small blocking client the CLI's `fd connect`
//!   subcommand and the integration tests drive.
//!
//! ## Wire protocol
//!
//! Every request is one line; every reply is a block of zero or more
//! payload lines (indented two spaces) terminated by exactly one status
//! line, `ok …` or `error …`. Commits additionally fan out to every
//! subscribed connection as asynchronous `event + {…}` / `event - {…}`
//! lines, which may interleave *between* reply blocks but never inside
//! one (replies and events go through one per-connection writer lock).
//!
//! ```text
//! insert REL | V1 | V2 ...   apply (or queue) an insert
//! delete tN                  apply (or queue) a delete
//! begin / commit / abort     transaction control, as in fd watch
//! show                       every current result, canonical order
//! top                        the ranked top-k window (ranked daemons)
//! stats                      result/pass/subscriber counters + work totals
//! metrics                    Prometheus-style text exposition
//! subscribe / unsubscribe    start/stop the event feed to this client
//! quit                       close this connection
//! shutdown                   stop the daemon (flushes in-flight events)
//! ```
//!
//! A malformed line earns an `error protocol: …` reply — never a panic,
//! never a disconnect of *other* clients. A subscriber whose socket died
//! is reaped via [`FdSession::unsubscribe`] on the first failed write —
//! counted in `fd_serve_reaps_total`, no longer silently.
//!
//! ## Observability
//!
//! The daemon instruments itself into the session's
//! [`Registry`] (per-command request counters,
//! reply latency, connection/subscriber gauges, queue depth, protocol
//! errors, reaps) alongside the session's own commit metrics. Three ways
//! out: the `metrics` wire command returns the text exposition as a
//! reply block; [`ServeOptions::metrics_addr`] additionally serves it
//! over plain HTTP (`GET /metrics`, scrapeable by Prometheus or `curl`,
//! zero new dependencies); [`ServeOptions::log`] emits structured
//! `key=value` event lines on stderr (connection open/close, commit
//! summaries with phase timings, reap and backpressure warnings).

use crate::error::FdError;
use crate::obs::lockcheck::TrackedMutex;
use crate::obs::{Counter, EventLog, Gauge, Histogram, MetricsServer, Registry, Span};
use crate::ranking::RankingFunction;
use crate::session::{Commit, CommitTimings, EventSink, FdSession, SinkId};
use crate::tupleset::TupleSet;
use fd_relational::{textio, AttrId, Database, DeltaBatch, TupleId, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a connection thread blocks in `read` before re-checking the
/// shutdown flag. Bounds both shutdown latency and the cost of idle
/// connections (one wakeup per interval).
const READ_POLL: Duration = Duration::from_millis(100);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// The one-line command summary quoted in protocol error replies and
/// the connection greeting.
pub const GRAMMAR: &str =
    "insert REL | V.. / delete tN / begin / commit / abort / show / top / stats / metrics / \
     subscribe / unsubscribe / quit / shutdown";

/// When the cross-subscriber commit-queue depth reaches this many
/// undelivered batches, `--log` emits a backpressure warning per
/// delivery (the metric `fd_serve_queue_depth` carries the exact value
/// at all times).
const BACKPRESSURE_WARN_DEPTH: i64 = 64;

/// Capacity of each subscriber's commit-label queue. A consumer more
/// than this many commits behind starts losing events (counted in
/// `fd_events_dropped_total`) instead of growing the queue without
/// bound.
const SUBSCRIBER_QUEUE_CAP: usize = 256;

/// The slow-consumer policy: after this many dropped sends the
/// subscriber is disconnected and reaped — a client that can't keep up
/// gets a closed feed it can re-establish, not a silently gappy one.
const SLOW_CONSUMER_MAX_DROPS: u64 = 64;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a serve-side operation failed. Wraps [`FdError`] so query/session
/// failures keep their typed cause ([`std::error::Error::source`]);
/// the transport and protocol layers get variants of their own instead
/// of stringly-typed formatting.
#[derive(Debug)]
pub enum ServeError {
    /// A socket operation failed.
    Io {
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A peer (or a config value) violated the wire protocol.
    Protocol {
        /// What was malformed.
        reason: String,
    },
    /// The shared session mutex was poisoned — a thread panicked while
    /// holding the session. The daemon refuses to touch the state
    /// rather than unwrap and propagate the panic.
    SessionPoisoned,
    /// The session rejected the operation (e.g. a bad mutation batch).
    Query {
        /// The session's typed rejection.
        source: FdError,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { source } => write!(f, "i/o: {source}"),
            ServeError::Protocol { reason } => write!(f, "protocol: {reason}"),
            ServeError::SessionPoisoned => {
                write!(f, "session poisoned: a server thread panicked mid-commit")
            }
            ServeError::Query { source } => write!(f, "{source}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source } => Some(source),
            ServeError::Query { source } => Some(source),
            ServeError::Protocol { .. } | ServeError::SessionPoisoned => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(source: std::io::Error) -> Self {
        ServeError::Io { source }
    }
}

impl From<FdError> for ServeError {
    fn from(source: FdError) -> Self {
        ServeError::Query { source }
    }
}

// ---------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------

/// One parsed wire command. The grammar is a superset of the `fd watch`
/// REPL (`fd watch` scripts are valid `fd connect` scripts).
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `insert REL | V1 | V2 ...`
    Insert {
        /// The target relation, by name (resolved against the session).
        rel: String,
        /// The row, parsed under [`textio`]'s quoting rules.
        values: Vec<Value>,
    },
    /// `delete tN` (or `delete N`).
    Delete(TupleId),
    /// `begin` — open a transaction; mutations queue until `commit`.
    Begin,
    /// `commit` — land the queued batch in one maintenance pass.
    Commit,
    /// `abort` — discard the queued batch.
    Abort,
    /// `show` — every current result, canonical order.
    Show,
    /// `top` — the ranked window (ranked daemons only).
    Top,
    /// `stats` — result/pass/subscriber counters plus the cumulative
    /// [`Stats`](crate::Stats) work counters.
    Stats,
    /// `metrics` — the full Prometheus-style text exposition of the
    /// session + daemon registry, as an indented reply block.
    Metrics,
    /// `subscribe` — start the event feed to this connection.
    Subscribe,
    /// `unsubscribe` — stop the event feed.
    Unsubscribe,
    /// `quit` / `exit` — close this connection.
    Quit,
    /// `shutdown` — stop the whole daemon.
    Shutdown,
}

/// Why a line failed to parse as a [`Command`]. Structured so each front
/// end renders its own wording: `fd watch` keeps its historical
/// (golden-pinned) messages, the daemon replies `error protocol: …`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The first word is not a command.
    Unknown {
        /// The offending line.
        cmd: String,
    },
    /// A known command with malformed arguments.
    Usage {
        /// The expected form.
        usage: &'static str,
    },
    /// `delete` with a token that is not `tN` or `N`.
    BadTupleId {
        /// The offending token.
        token: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Unknown { cmd } => write!(f, "unknown command: {cmd}"),
            ParseError::Usage { usage } => write!(f, "usage: {usage}"),
            ParseError::BadTupleId { token } => write!(f, "bad tuple id: {token}"),
        }
    }
}

/// Parses one line of the wire protocol (also the `fd watch` REPL
/// grammar). Leading/trailing whitespace is ignored; blank lines and
/// `#` comments are the caller's business (both front ends skip them
/// before parsing).
pub fn parse_command(line: &str) -> Result<Command, ParseError> {
    let cmd = line.trim();
    match cmd {
        "begin" => return Ok(Command::Begin),
        "commit" => return Ok(Command::Commit),
        "abort" => return Ok(Command::Abort),
        "show" => return Ok(Command::Show),
        "top" => return Ok(Command::Top),
        "stats" => return Ok(Command::Stats),
        "metrics" => return Ok(Command::Metrics),
        "subscribe" => return Ok(Command::Subscribe),
        "unsubscribe" => return Ok(Command::Unsubscribe),
        "quit" | "exit" => return Ok(Command::Quit),
        "shutdown" => return Ok(Command::Shutdown),
        _ => {}
    }
    if let Some(rest) = cmd.strip_prefix("insert ") {
        let (rel, row) = rest.split_once('|').ok_or(ParseError::Usage {
            usage: "insert REL | V1 | V2 ...",
        })?;
        return Ok(Command::Insert {
            rel: rel.trim().to_owned(),
            values: textio::parse_row(row),
        });
    }
    if let Some(rest) = cmd.strip_prefix("delete ") {
        let token = rest.trim();
        let raw: u32 = token
            .strip_prefix('t')
            .unwrap_or(token)
            .parse()
            .map_err(|_| ParseError::BadTupleId {
                token: token.to_owned(),
            })?;
        return Ok(Command::Delete(TupleId(raw)));
    }
    Err(ParseError::Unknown {
        cmd: cmd.to_owned(),
    })
}

/// Is this reply line a status line (the terminator of a reply block)?
pub fn is_status(line: &str) -> bool {
    line == "ok" || line == "error" || line.starts_with("ok ") || line.starts_with("error ")
}

// ---------------------------------------------------------------------
// SessionHandle — the shared-state core
// ---------------------------------------------------------------------

/// The shared, thread-safe handle every server component works through:
/// a clonable `Arc<Mutex<FdSession<'static>>>` whose lock acquisition is
/// poison-safe — a panicking holder turns later calls into
/// [`ServeError::SessionPoisoned`] instead of a propagated panic.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    inner: Arc<TrackedMutex<FdSession<'static>>>,
}

/// Lock-order role of the shared session mutex (rank 1 in
/// `LOCK_ORDER.md`: commits intern strings and checkpoints read the
/// intern catalog, so the session is always taken *before* the
/// interner table).
const SESSION_LOCK: &str = "serve.session";

/// Lock-order role of each connection's writer mutex (rank 3: a leaf —
/// nothing is acquired while holding it).
const WRITER_LOCK: &str = "serve.conn_writer";

impl SessionHandle {
    /// Wraps an owned session for sharing across threads.
    pub fn new(session: FdSession<'static>) -> Self {
        SessionHandle {
            inner: Arc::new(TrackedMutex::new(SESSION_LOCK, session)),
        }
    }

    /// Runs `f` under the session lock. The building block of every
    /// other method; exposed so callers (tests, the CLI) can read any
    /// session state without a per-accessor wrapper.
    pub fn with<R>(&self, f: impl FnOnce(&mut FdSession<'static>) -> R) -> Result<R, ServeError> {
        let mut guard = self.inner.lock().map_err(|_| ServeError::SessionPoisoned)?;
        Ok(f(&mut guard))
    }

    /// Commits a batch through the shared session: one maintenance pass,
    /// subscribers notified under the lock (so every subscriber sees
    /// every commit exactly once, in commit order).
    pub fn commit(&self, batch: DeltaBatch) -> Result<Commit, ServeError> {
        self.with(|s| s.commit(batch))?.map_err(ServeError::from)
    }

    /// Registers a per-client event queue: a [`Subscription`] whose
    /// receiver yields one [`CommitLabels`] per subsequent commit, with
    /// the events already rendered (`+ {…}` / `- {…}`) — the consumer
    /// never needs the session lock to format its feed.
    pub fn subscribe(&self) -> Result<Subscription, ServeError> {
        let (tx, rx) = mpsc::sync_channel(SUBSCRIBER_QUEUE_CAP);
        let gave_up = Arc::new(AtomicBool::new(false));
        let sink_gave_up = Arc::clone(&gave_up);
        let id = self.with(|s| {
            let depth = s.registry().gauge(QUEUE_DEPTH_METRIC, QUEUE_DEPTH_HELP);
            let dropped = s
                .registry()
                .counter(EVENTS_DROPPED_METRIC, EVENTS_DROPPED_HELP);
            s.subscribe(LabelSink {
                tx: Some(tx),
                depth,
                dropped,
                drops: 0,
                gave_up: sink_gave_up,
            })
        })?;
        Ok(Subscription { id, rx, gave_up })
    }

    /// Deregisters a subscriber, closing its channel (the receiver loop
    /// ends after draining). Double-unsubscribe is not an error, so a
    /// departing client and its forwarding thread can both reap.
    pub fn unsubscribe(&self, id: SinkId) -> Result<bool, ServeError> {
        self.with(|s| s.unsubscribe(id))
    }
}

/// The rendered net effect of one commit, as delivered to a
/// [`Subscription`]: one `+ {…}` / `- {…}` label per [`FdEvent`]
/// (retractions first), rendered against the post-commit database.
///
/// [`FdEvent`]: crate::session::FdEvent
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitLabels {
    /// The event labels, in event order.
    pub labels: Vec<String>,
}

/// A per-client event queue created by [`SessionHandle::subscribe`].
/// The queue is bounded (`SUBSCRIBER_QUEUE_CAP` commits): a consumer
/// that falls further behind loses events, and one that keeps losing
/// them (`SLOW_CONSUMER_MAX_DROPS` drops) is cut off — the channel
/// closes and the flag returned by [`Subscription::into_parts`]
/// reports why.
#[derive(Debug)]
pub struct Subscription {
    id: SinkId,
    rx: mpsc::Receiver<CommitLabels>,
    gave_up: Arc<AtomicBool>,
}

impl Subscription {
    /// The sink id to pass to [`SessionHandle::unsubscribe`].
    pub fn id(&self) -> SinkId {
        self.id
    }

    /// The receiving end of the queue.
    pub fn receiver(&self) -> &mpsc::Receiver<CommitLabels> {
        &self.rx
    }

    /// Splits the subscription for a forwarding thread that owns the
    /// receiver while the connection keeps the id. The flag turns true
    /// when the sink abandoned this subscriber as a slow consumer
    /// (checked after the receiver drains).
    pub fn into_parts(self) -> (SinkId, mpsc::Receiver<CommitLabels>, Arc<AtomicBool>) {
        (self.id, self.rx, self.gave_up)
    }
}

/// Metric name/help of the cross-subscriber commit-queue depth gauge:
/// batches queued by [`LabelSink`]s but not yet written out by their
/// forwarding threads. Shared between the sink (increments) and the
/// forwarder (decrements) via the session registry.
const QUEUE_DEPTH_METRIC: &str = "fd_serve_queue_depth";
const QUEUE_DEPTH_HELP: &str =
    "Commit batches queued to subscriber forwarders but not yet written to their sockets.";

/// Metric name/help of the slow-consumer drop counter: commit batches a
/// [`LabelSink`] discarded because the subscriber's bounded queue was
/// full. Shared between the sink (increments) and [`ServeMetrics`].
const EVENTS_DROPPED_METRIC: &str = "fd_events_dropped_total";
const EVENTS_DROPPED_HELP: &str =
    "Commit batches dropped because a subscriber's bounded queue was full.";

/// The [`EventSink`] behind a [`Subscription`]: renders each commit's
/// events under the session lock (where the post-commit database is at
/// hand) and queues the labels. The queue is bounded: a full queue drops
/// the batch (counted in `fd_events_dropped_total`), and a subscriber
/// that accumulates [`SLOW_CONSUMER_MAX_DROPS`] drops is abandoned —
/// the sink closes the channel and raises `gave_up`, so the forwarder
/// disconnects the client once the queue drains. Hang-ups are likewise
/// absorbed here; a dead receiver must never take the commit down.
struct LabelSink {
    tx: Option<mpsc::SyncSender<CommitLabels>>,
    depth: Arc<Gauge>,
    dropped: Arc<Counter>,
    drops: u64,
    gave_up: Arc<AtomicBool>,
}

impl EventSink for LabelSink {
    fn on_event(&mut self, _event: &crate::session::FdEvent) {}

    fn on_commit(&mut self, commit: &Commit, db: &Database) {
        let Some(tx) = self.tx.as_ref() else {
            return;
        };
        let labels = commit.events.iter().map(|e| e.label(db)).collect();
        match tx.try_send(CommitLabels { labels }) {
            Ok(()) => self.depth.add(1),
            Err(mpsc::TrySendError::Full(_)) => {
                self.dropped.inc();
                self.drops += 1;
                if self.drops >= SLOW_CONSUMER_MAX_DROPS {
                    self.gave_up.store(true, Ordering::Release);
                    // Dropping the sender closes the channel: the
                    // forwarder drains what's queued, sees `gave_up`,
                    // and reaps the connection.
                    self.tx = None;
                }
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {}
        }
    }
}

// ---------------------------------------------------------------------
// AttrMax — an owned ranking function for 'static sessions
// ---------------------------------------------------------------------

/// `f_max` over one numeric attribute, evaluated **live**: the rank of a
/// set is the maximum of the attribute's value over its member tuples
/// (missing / non-numeric ⇒ 0). Unlike [`FMax`] — which borrows a
/// frozen [`ImpScores`] table and therefore cannot outlive it — this
/// ranking owns its state, so a ranked [`FdSession`] built from it is
/// `'static` and can be served across threads; tuples inserted later
/// rank by their real attribute value instead of a frozen default.
///
/// [`FMax`]: crate::ranking::FMax
/// [`ImpScores`]: crate::ranking::ImpScores
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrMax {
    attr: AttrId,
}

impl AttrMax {
    /// Ranks by the attribute named `attr` of `db`.
    pub fn new(db: &Database, attr: &str) -> Result<Self, ServeError> {
        let attr = db.attr_id(attr).map_err(|_| ServeError::Protocol {
            reason: format!("unknown attribute '{attr}'"),
        })?;
        Ok(AttrMax { attr })
    }

    /// The ranked attribute.
    pub fn attr(&self) -> AttrId {
        self.attr
    }
}

impl RankingFunction for AttrMax {
    fn rank(&self, db: &Database, set: &TupleSet) -> f64 {
        set.tuples()
            .iter()
            .map(|&t| match db.tuple_value(t, self.attr) {
                Some(Value::Int(i)) => *i as f64,
                Some(Value::Float(f)) => *f,
                _ => 0.0,
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// Wire-command spellings, in [`Command`] declaration order — the
/// labels of the `fd_serve_requests_total{command=…}` series.
const COMMAND_NAMES: [&str; 13] = [
    "insert",
    "delete",
    "begin",
    "commit",
    "abort",
    "show",
    "top",
    "stats",
    "metrics",
    "subscribe",
    "unsubscribe",
    "quit",
    "shutdown",
];

fn command_index(cmd: &Command) -> usize {
    match cmd {
        Command::Insert { .. } => 0,
        Command::Delete(_) => 1,
        Command::Begin => 2,
        Command::Commit => 3,
        Command::Abort => 4,
        Command::Show => 5,
        Command::Top => 6,
        Command::Stats => 7,
        Command::Metrics => 8,
        Command::Subscribe => 9,
        Command::Unsubscribe => 10,
        Command::Quit => 11,
        Command::Shutdown => 12,
    }
}

/// Pre-bound handles into the (session-owned) registry for the daemon's
/// own metrics — resolved once at server start so the per-request path
/// never takes the registry lock.
struct ServeMetrics {
    connections: Arc<Counter>,
    active: Arc<Gauge>,
    requests: [Arc<Counter>; COMMAND_NAMES.len()],
    reply: Arc<Histogram>,
    protocol_errors: Arc<Counter>,
    reaps: Arc<Counter>,
    pushed: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    dropped: Arc<Counter>,
}

impl ServeMetrics {
    fn new(registry: &Registry) -> Self {
        ServeMetrics {
            connections: registry.counter(
                "fd_serve_connections_total",
                "Connections accepted over the daemon's lifetime.",
            ),
            active: registry.gauge("fd_serve_connections_active", "Currently open connections."),
            requests: std::array::from_fn(|i| {
                registry.counter(
                    &format!(
                        "fd_serve_requests_total{{command=\"{}\"}}",
                        COMMAND_NAMES[i]
                    ),
                    "Requests received, by wire command.",
                )
            }),
            reply: registry.histogram(
                "fd_serve_reply_seconds",
                "Request-to-reply latency of one wire command.",
            ),
            protocol_errors: registry.counter(
                "fd_serve_protocol_errors_total",
                "Lines that failed to parse as a wire command.",
            ),
            reaps: registry.counter(
                "fd_serve_reaps_total",
                "Dead subscribers reaped after a failed event write.",
            ),
            pushed: registry.counter(
                "fd_events_pushed_total",
                "Event lines written to subscriber sockets.",
            ),
            queue_depth: registry.gauge(QUEUE_DEPTH_METRIC, QUEUE_DEPTH_HELP),
            dropped: registry.counter(EVENTS_DROPPED_METRIC, EVENTS_DROPPED_HELP),
        }
    }
}

/// Optional daemon features, for [`Server::start_with`].
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Also serve the metrics registry over HTTP: `GET /metrics` on
    /// this address (e.g. `"127.0.0.1:9434"`, port 0 for ephemeral)
    /// returns the same Prometheus-style text exposition as the
    /// `metrics` wire command. `None` disables the endpoint.
    pub metrics_addr: Option<String>,
    /// Emit structured `key=value` event lines on stderr: connection
    /// open/close, per-commit summaries with phase timings, reap and
    /// backpressure warnings.
    pub log: bool,
}

/// What the accept loop and every connection thread share.
struct Shared {
    handle: SessionHandle,
    shutdown: AtomicBool,
    registry: Arc<Registry>,
    metrics: ServeMetrics,
    log: EventLog,
}

impl Shared {
    /// One `event=commit …` log line with the phase breakdown — the
    /// stderr twin of the `fd_commit_*_seconds` histograms.
    fn log_commit(&self, mutations: usize, events: usize, t: CommitTimings) {
        if !self.log.is_enabled() {
            return;
        }
        self.log.emit(
            "commit",
            &[
                ("mutations", mutations.to_string()),
                ("events", events.to_string()),
                ("validate_us", t.validate.as_micros().to_string()),
                ("maintain_us", t.maintain.as_micros().to_string()),
                ("window_us", t.window.as_micros().to_string()),
                ("fanout_us", t.fanout.as_micros().to_string()),
                ("total_us", t.total.as_micros().to_string()),
            ],
        );
    }
}

/// The `fd serve` daemon: accepts connections on a TCP address and
/// speaks the wire protocol over each, all against one shared session.
///
/// ```no_run
/// use fd_core::serve::{Client, Server};
/// use fd_core::FdSession;
/// use fd_relational::tourist_database;
///
/// let server = Server::start(FdSession::new(tourist_database()), "127.0.0.1:0")?;
/// let mut client = Client::connect(server.addr())?;
/// client.send("show")?;
/// server.stop()?;
/// # Ok::<(), fd_core::serve::ServeError>(())
/// ```
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    metrics_server: Option<MetricsServer>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("shutdown", &self.shared.shutdown.load(Ordering::Relaxed))
            .finish()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port — [`addr`](Self::addr)
    /// reports the bound one) and starts accepting connections against
    /// `session`.
    pub fn start(
        session: FdSession<'static>,
        addr: impl ToSocketAddrs,
    ) -> Result<Self, ServeError> {
        Self::start_with(session, addr, ServeOptions::default())
    }

    /// [`start`](Self::start) with optional observability features: an
    /// HTTP metrics scrape endpoint and/or structured event logging.
    pub fn start_with(
        session: FdSession<'static>,
        addr: impl ToSocketAddrs,
        options: ServeOptions,
    ) -> Result<Self, ServeError> {
        let registry = Arc::clone(session.registry());
        let metrics = ServeMetrics::new(&registry);
        let metrics_server = match &options.metrics_addr {
            Some(maddr) => Some(MetricsServer::start(Arc::clone(&registry), maddr.as_str())?),
            None => None,
        };
        let log = if options.log {
            EventLog::stderr()
        } else {
            EventLog::disabled()
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            handle: SessionHandle::new(session),
            shutdown: AtomicBool::new(false),
            registry,
            metrics,
            log,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            metrics_server,
        })
    }

    /// The bound address (resolves `:0` requests to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound address of the HTTP metrics endpoint, if one was
    /// requested via [`ServeOptions::metrics_addr`].
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_server.as_ref().map(MetricsServer::addr)
    }

    /// The metrics registry behind the daemon (and its session) — the
    /// in-process way to read what `/metrics` exposes.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// A clone of the shared session handle (for in-process inspection —
    /// e.g. comparing the served state against an oracle).
    pub fn handle(&self) -> SessionHandle {
        self.shared.handle.clone()
    }

    /// Has a `shutdown` command (or [`trigger_shutdown`](Self::trigger_shutdown))
    /// been issued?
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// Asks the daemon to stop, as the `shutdown` wire command does.
    /// Returns immediately; [`wait`](Self::wait) observes the exit.
    pub fn trigger_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }

    /// A detached handle that can stop this daemon from anywhere — a
    /// signal watcher, another thread, a test harness. Cloneable and
    /// `'static`; triggering after the server exited is a no-op.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until the daemon exits (a `shutdown` command arrived), then
    /// joins every connection thread — in-flight replies and subscriber
    /// queues are flushed, not dropped. A durable session additionally
    /// gets a final [`checkpoint`](FdSession::checkpoint), so graceful
    /// exits (wire `shutdown` and handled signals alike) leave a fresh
    /// snapshot and an empty write-ahead log.
    pub fn wait(mut self) -> Result<(), ServeError> {
        if let Some(h) = self.accept.take() {
            h.join().map_err(|_| ServeError::SessionPoisoned)?;
        }
        if let Some(m) = self.metrics_server.take() {
            m.stop();
        }
        // Best-effort: a failed final snapshot must not turn a clean
        // shutdown into an error exit — the WAL still holds every
        // committed batch, so recovery replays them on next open.
        // stderr directly: the event log may already be torn down at
        // this point in shutdown, and the warning must still land.
        #[allow(clippy::print_stderr)]
        match self.shared.handle.with(|s| s.checkpoint()) {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => eprintln!("fd serve: shutdown checkpoint failed: {e}"),
            Err(e) => eprintln!("fd serve: shutdown checkpoint failed: {e}"),
        }
        Ok(())
    }

    /// [`trigger_shutdown`](Self::trigger_shutdown) + [`wait`](Self::wait).
    pub fn stop(self) -> Result<(), ServeError> {
        self.trigger_shutdown();
        self.wait()
    }
}

/// A cloneable, `'static` way to stop a [`Server`] from outside —
/// obtained via [`Server::shutdown_handle`], handed to signal watchers
/// or supervisor threads. Triggering is idempotent and equivalent to
/// the `shutdown` wire command: the accept loop exits, connections are
/// joined, and [`Server::wait`] runs its final checkpoint.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Asks the daemon to stop.
    pub fn trigger(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownHandle")
            .field("triggered", &self.shared.shutdown.load(Ordering::Relaxed))
            .finish()
    }
}

/// Installs handlers for `SIGTERM` and `SIGINT` that trigger `handle`,
/// so killing the daemon is as safe as the `shutdown` wire command:
/// subscriber queues are flushed, forwarders joined, and a durable
/// session writes a final snapshot before the process exits. On
/// non-Unix platforms this is a no-op (Ctrl-C simply terminates).
///
/// The handler itself only stores an atomic flag (the only thing that
/// is async-signal-safe); a small watcher thread polls the flag and
/// performs the actual trigger. Call once per process — later calls
/// replace which handle the signals stop.
pub fn trigger_shutdown_on_signals(handle: ShutdownHandle) {
    signals::install(handle);
}

#[cfg(unix)]
mod signals {
    use super::ShutdownHandle;
    use crate::obs::lockcheck::TrackedMutex;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Set by the signal handler; drained by the watcher thread.
    static SIGNALLED: AtomicBool = AtomicBool::new(false);
    /// The handle the watcher triggers; replaced by later installs.
    /// (A lock-order leaf, like the writers — rank 3 in LOCK_ORDER.md.)
    static TARGET: TrackedMutex<Option<ShutdownHandle>> =
        TrackedMutex::new("serve.signal_target", None);

    extern "C" fn on_signal(_sig: i32) {
        // Async-signal-safe: one atomic store, nothing else.
        SIGNALLED.store(true, Ordering::Release);
    }

    extern "C" {
        // POSIX signal(2), straight from libc — the process already
        // links it; no crate needed for two classic signals.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub(super) fn install(handle: ShutdownHandle) {
        let mut target = TARGET.lock().unwrap_or_else(|p| p.into_inner());
        let first = target.is_none();
        *target = Some(handle);
        drop(target);
        if !first {
            return;
        }
        unsafe {
            #[allow(clippy::fn_to_numeric_cast_any)]
            let h = on_signal as extern "C" fn(i32) as usize;
            signal(SIGTERM, h);
            signal(SIGINT, h);
        }
        std::thread::Builder::new()
            .name("fd-signal-watch".into())
            .spawn(|| loop {
                if SIGNALLED.swap(false, Ordering::Acquire) {
                    let target = TARGET.lock().unwrap_or_else(|p| p.into_inner());
                    if let Some(h) = target.as_ref() {
                        h.trigger();
                    }
                }
                std::thread::sleep(Duration::from_millis(100));
            })
            .expect("spawning the signal watcher thread");
    }
}

#[cfg(not(unix))]
mod signals {
    use super::ShutdownHandle;

    pub(super) fn install(_handle: ShutdownHandle) {}
}

/// The accept loop: non-blocking accept + shutdown polling, one spawned
/// thread per connection; joins the live ones on exit so shutdown
/// flushes every connection.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                conns.push(std::thread::spawn(move || {
                    // Connection errors end that connection only.
                    let _ = serve_connection(stream, &shared);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
        // Detach finished threads so a long-lived daemon doesn't hoard
        // handles; live ones are joined below on shutdown.
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

/// A connection's writer: shared between the command loop (reply
/// blocks) and the forwarding thread (event lines). Lock poisoning is
/// deliberately forgiven — a panicking writer leaves bytes, not broken
/// invariants.
type SharedWriter = Arc<TrackedMutex<TcpStream>>;

fn write_block(writer: &SharedWriter, text: &str) -> std::io::Result<()> {
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    w.write_all(text.as_bytes())
}

/// Per-connection protocol state.
struct Conn<'s> {
    shared: &'s Shared,
    writer: SharedWriter,
    pending: Option<DeltaBatch>,
    sub: Option<(SinkId, JoinHandle<()>)>,
}

/// What the command loop should do after a reply.
enum Flow {
    Continue,
    Close,
}

fn serve_connection(stream: TcpStream, shared: &Shared) -> Result<(), ServeError> {
    stream.set_read_timeout(Some(READ_POLL))?;
    // Replies and event fan-out are latency-sensitive small writes;
    // Nagle + delayed ACK would park each behind a ~40 ms timer.
    stream.set_nodelay(true)?;
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_owned());
    shared.metrics.connections.inc();
    let writer: SharedWriter = Arc::new(TrackedMutex::new(WRITER_LOCK, stream.try_clone()?));
    let mut reader = BufReader::new(stream);
    let mut conn = Conn {
        shared,
        writer,
        pending: None,
        sub: None,
    };

    let greeting = conn
        .shared
        .handle
        .with(|s| format!("ok fd serve ({} results); commands: {GRAMMAR}\n", s.len()));
    match greeting {
        Ok(text) => write_block(&conn.writer, &text)?,
        Err(_) => {
            let _ = write_block(&conn.writer, "error session poisoned\n");
            return Err(ServeError::SessionPoisoned);
        }
    }
    shared.metrics.active.add(1);
    shared.log.emit("conn.open", &[("peer", peer.clone())]);

    // The line reader: bytes accumulate in `buf` across read timeouts
    // (a timeout mid-line must not drop the partial line), and every
    // timeout re-checks the shutdown flag.
    let mut buf: Vec<u8> = Vec::new();
    let outcome = loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break Ok(());
        }
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => break Ok(()), // EOF
            Ok(_) => {
                let at_eof = buf.last() != Some(&b'\n');
                let line = String::from_utf8_lossy(&buf).trim().to_string();
                buf.clear();
                if !(line.is_empty() || line.starts_with('#')) {
                    match conn.execute(&line) {
                        Ok(Flow::Continue) => {}
                        Ok(Flow::Close) => break Ok(()),
                        Err(e) => break Err(e),
                    }
                }
                if at_eof {
                    break Ok(()); // final line arrived without a newline
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle (or mid-line) poll tick; loop re-checks shutdown.
            }
            Err(e) => break Err(ServeError::from(e)),
        }
    };

    conn.cleanup();
    shared.metrics.active.add(-1);
    shared.log.emit("conn.close", &[("peer", peer)]);
    outcome
}

impl Conn<'_> {
    /// Executes one command line: writes exactly one reply block and
    /// says whether the connection stays open. `Err` means the reply
    /// could not be written (or the session is poisoned) — only then
    /// does the connection die.
    fn execute(&mut self, line: &str) -> Result<Flow, ServeError> {
        let _reply_span = Span::timed(&self.shared.metrics.reply);
        let cmd = match parse_command(line) {
            Ok(cmd) => cmd,
            Err(ParseError::Unknown { cmd }) => {
                self.protocol_error(line);
                self.reply(&format!(
                    "error protocol: unknown command: {cmd} ({GRAMMAR})"
                ))?;
                return Ok(Flow::Continue);
            }
            Err(e) => {
                self.protocol_error(line);
                self.reply(&format!("error protocol: {e}"))?;
                return Ok(Flow::Continue);
            }
        };
        self.shared.metrics.requests[command_index(&cmd)].inc();
        match cmd {
            Command::Insert { rel, values } => self.insert(&rel, values),
            Command::Delete(tuple) => self.delete(tuple),
            Command::Begin => {
                if self.pending.is_some() {
                    self.reply("error transaction already open (commit or abort first)")?;
                } else {
                    self.pending = Some(DeltaBatch::new());
                    self.reply("ok begin (mutations now queue until commit)")?;
                }
                Ok(Flow::Continue)
            }
            Command::Commit => self.commit(),
            Command::Abort => {
                match self.pending.take() {
                    None => self.reply("error no open transaction (begin first)")?,
                    Some(batch) => self.reply(&format!(
                        "ok aborted ({} queued mutation(s) discarded)",
                        batch.len()
                    ))?,
                }
                Ok(Flow::Continue)
            }
            Command::Show => {
                let lines = self.session(|s| {
                    s.canonical_results()
                        .iter()
                        .map(|set| format!("  {}", set.label(s.db())))
                        .collect::<Vec<_>>()
                })?;
                let n = lines.len();
                self.reply_block(lines, &format!("ok {n} result(s)"))?;
                Ok(Flow::Continue)
            }
            Command::Top => {
                let window = self.session(|s| {
                    s.window().map(|w| {
                        (
                            w.iter()
                                .map(|(set, rank)| {
                                    format!("  rank {rank:>8.3}  {}", set.label(s.db()))
                                })
                                .collect::<Vec<_>>(),
                            s.len(),
                        )
                    })
                })?;
                match window {
                    None => self.reply(
                        "error not a ranked session (start fd serve with --rank-by/--top)",
                    )?,
                    Some((lines, total)) => {
                        let k = lines.len();
                        self.reply_block(lines, &format!("ok top {k} of {total}"))?;
                    }
                }
                Ok(Flow::Continue)
            }
            Command::Stats => {
                let (n, passes, subs, totals) = self.session(|s| {
                    (
                        s.len(),
                        s.maintenance_passes(),
                        s.num_subscribers(),
                        *s.stats(),
                    )
                })?;
                let lines = totals
                    .to_string()
                    .lines()
                    .map(|l| format!("  {l}"))
                    .collect();
                self.reply_block(
                    lines,
                    &format!("ok results={n} passes={passes} subscribers={subs}"),
                )?;
                Ok(Flow::Continue)
            }
            Command::Metrics => {
                let text = self.shared.registry.render();
                let lines = text.lines().map(|l| format!("  {l}")).collect();
                self.reply_block(lines, "ok metrics")?;
                Ok(Flow::Continue)
            }
            Command::Subscribe => self.subscribe(),
            Command::Unsubscribe => {
                match self.sub.take() {
                    None => self.reply("error not subscribed")?,
                    Some((id, forwarder)) => {
                        // Dropping the sink closes the channel; the
                        // forwarder drains what's queued, then exits —
                        // unsubscribe never loses an already-committed
                        // event.
                        let _ = self.shared.handle.unsubscribe(id)?;
                        let _ = forwarder.join();
                        self.reply(&format!("ok unsubscribed {id}"))?;
                    }
                }
                Ok(Flow::Continue)
            }
            Command::Quit => {
                self.reply("ok bye")?;
                Ok(Flow::Close)
            }
            Command::Shutdown => {
                self.reply("ok shutting down")?;
                self.shared.shutdown.store(true, Ordering::Relaxed);
                Ok(Flow::Close)
            }
        }
    }

    /// Counts (and, under `--log`, reports) one malformed request line.
    fn protocol_error(&self, line: &str) {
        self.shared.metrics.protocol_errors.inc();
        self.shared
            .log
            .emit("protocol.error", &[("line", line.to_string())]);
    }

    /// Runs `f` under the session lock, rendering a poisoned session as
    /// a terminal reply.
    fn session<R>(&self, f: impl FnOnce(&mut FdSession<'static>) -> R) -> Result<R, ServeError> {
        match self.shared.handle.with(f) {
            Ok(r) => Ok(r),
            Err(e) => {
                let _ = write_block(&self.writer, &format!("error {e}\n"));
                Err(e)
            }
        }
    }

    fn reply(&self, status: &str) -> Result<(), ServeError> {
        write_block(&self.writer, &format!("{status}\n")).map_err(ServeError::from)
    }

    /// Writes payload lines + status as ONE block under the writer lock,
    /// so concurrent event fan-out never interleaves into a reply.
    fn reply_block(&self, lines: Vec<String>, status: &str) -> Result<(), ServeError> {
        let mut text = String::new();
        for line in &lines {
            text.push_str(line);
            text.push('\n');
        }
        text.push_str(status);
        text.push('\n');
        write_block(&self.writer, &text).map_err(ServeError::from)
    }

    fn insert(&mut self, rel_name: &str, values: Vec<Value>) -> Result<Flow, ServeError> {
        let resolved = self.session(|s| {
            s.db()
                .relation_by_name(rel_name)
                .map(|r| (r.id(), r.name().to_owned()))
                .map_err(|e| e.to_string())
        })?;
        let (rel, rel_name) = match resolved {
            Ok(pair) => pair,
            Err(msg) => {
                self.reply(&format!("error {msg}"))?;
                return Ok(Flow::Continue);
            }
        };
        if let Some(batch) = &mut self.pending {
            batch.insert(rel, values);
            let n = batch.len();
            self.reply(&format!("ok queued insert into {rel_name} ({n} pending)"))?;
            return Ok(Flow::Continue);
        }
        let applied = self.session(|s| {
            s.apply(fd_relational::Delta::Insert { rel, values })
                .map(|commit| {
                    let label = s.db().tuple_label(commit.inserted()[0]);
                    (label, commit.events.len(), commit.timings)
                })
        })?;
        match applied {
            Ok((label, events, timings)) => {
                self.shared.log_commit(1, events, timings);
                self.reply(&format!(
                    "ok inserted {label} into {rel_name}; {events} event(s)"
                ))?;
            }
            Err(e) => self.reply(&format!("error {e}"))?,
        }
        Ok(Flow::Continue)
    }

    fn delete(&mut self, tuple: TupleId) -> Result<Flow, ServeError> {
        if let Some(batch) = &mut self.pending {
            batch.delete(tuple);
            let n = batch.len();
            self.reply(&format!("ok queued delete t{} ({n} pending)", tuple.0))?;
            return Ok(Flow::Continue);
        }
        let applied = self.session(|s| {
            s.apply(fd_relational::Delta::Delete { tuple })
                .map(|commit| {
                    // Tombstones retain row data, so the label still renders.
                    (
                        s.db().tuple_label(tuple),
                        commit.events.len(),
                        commit.timings,
                    )
                })
        })?;
        match applied {
            Ok((label, events, timings)) => {
                self.shared.log_commit(1, events, timings);
                self.reply(&format!("ok deleted {label}; {events} event(s)"))?;
            }
            Err(e) => self.reply(&format!("error {e}"))?,
        }
        Ok(Flow::Continue)
    }

    fn commit(&mut self) -> Result<Flow, ServeError> {
        let Some(batch) = self.pending.take() else {
            self.reply("error no open transaction (begin first)")?;
            return Ok(Flow::Continue);
        };
        let n = batch.len();
        let committed = self.session(|s| s.commit(batch))?;
        match committed {
            Ok(commit) => {
                self.shared
                    .log_commit(commit.changes.len(), commit.events.len(), commit.timings);
                self.reply(&format!(
                    "ok committed {} mutation(s) in 1 maintenance pass; {} event(s)",
                    commit.changes.len(),
                    commit.events.len()
                ))?;
            }
            Err(e) => self.reply(&format!("error {e} (batch of {n} discarded)"))?,
        }
        Ok(Flow::Continue)
    }

    fn subscribe(&mut self) -> Result<Flow, ServeError> {
        if let Some((id, _)) = &self.sub {
            let id = *id;
            self.reply(&format!("error already subscribed ({id})"))?;
            return Ok(Flow::Continue);
        }
        let sub = match self.shared.handle.subscribe() {
            Ok(sub) => sub,
            Err(e) => {
                let _ = write_block(&self.writer, &format!("error {e}\n"));
                return Err(e);
            }
        };
        let id = sub.id();
        let writer = Arc::clone(&self.writer);
        let handle = self.shared.handle.clone();
        let ctx = ForwarderCtx {
            pushed: Arc::clone(&self.shared.metrics.pushed),
            reaps: Arc::clone(&self.shared.metrics.reaps),
            depth: Arc::clone(&self.shared.metrics.queue_depth),
            dropped: Arc::clone(&self.shared.metrics.dropped),
            log: self.shared.log,
        };
        let forwarder = std::thread::spawn(move || forward_events(sub, writer, handle, ctx));
        self.sub = Some((id, forwarder));
        self.reply(&format!("ok subscribed {id}"))?;
        Ok(Flow::Continue)
    }

    /// Disconnect path: reap the subscription (if any) and flush its
    /// queue by joining the forwarder.
    fn cleanup(&mut self) {
        if let Some((id, forwarder)) = self.sub.take() {
            let _ = self.shared.handle.unsubscribe(id);
            let _ = forwarder.join();
        }
    }
}

/// The observability handles a forwarding thread carries: delivered
/// event, reap and drop counters, the shared queue-depth gauge, and the
/// structured log for reap/backpressure warnings.
struct ForwarderCtx {
    pushed: Arc<Counter>,
    reaps: Arc<Counter>,
    depth: Arc<Gauge>,
    dropped: Arc<Counter>,
    log: EventLog,
}

/// The per-subscriber forwarding thread: drains the subscription queue
/// onto the connection's writer as `event …` lines — one write per
/// commit, so a commit's events reach the socket contiguously. A failed
/// write means the peer is gone: the forwarder unsubscribes itself
/// (dead-subscriber reaping — counted in `fd_serve_reaps_total` and
/// reported under `--log`) and exits. A subscriber the sink abandoned
/// as a slow consumer (`gave_up`) is reaped the same way once its queue
/// drains, and its socket is shut down so the client observes the
/// disconnect instead of a silently gappy feed.
fn forward_events(
    sub: Subscription,
    writer: SharedWriter,
    handle: SessionHandle,
    ctx: ForwarderCtx,
) {
    let (id, rx, gave_up) = sub.into_parts();
    for commit in rx.iter() {
        ctx.depth.add(-1);
        let backlog = ctx.depth.get();
        if backlog >= BACKPRESSURE_WARN_DEPTH {
            ctx.log.emit(
                "backpressure",
                &[("sink", id.to_string()), ("queued", backlog.to_string())],
            );
        }
        if commit.labels.is_empty() {
            continue;
        }
        let mut text = String::new();
        for label in &commit.labels {
            text.push_str("event ");
            text.push_str(label);
            text.push('\n');
        }
        if write_block(&writer, &text).is_err() {
            let _ = handle.unsubscribe(id);
            ctx.reaps.inc();
            ctx.log.emit("subscriber.reap", &[("sink", id.to_string())]);
            return;
        }
        ctx.pushed.add(commit.labels.len() as u64);
    }
    // The sender side is gone. If the sink gave the subscriber up as a
    // slow consumer (rather than us unsubscribing on hang-up), finish
    // the disconnect: reap the sink registration and close the socket.
    if gave_up.load(Ordering::Acquire) {
        let _ = handle.unsubscribe(id);
        ctx.reaps.inc();
        ctx.log.emit(
            "subscriber.reap",
            &[
                ("sink", id.to_string()),
                ("reason", "slow-consumer".to_string()),
                ("dropped_total", ctx.dropped.get().to_string()),
            ],
        );
        if let Ok(w) = writer.lock() {
            let _ = w.shutdown(std::net::Shutdown::Both);
        }
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A small blocking client of the wire protocol — what `fd connect` and
/// the integration tests are built on.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects once.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        // Command lines are tiny; don't let Nagle batch them against
        // the peer's delayed ACKs.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connects, retrying until `timeout` elapses — for scripts that
    /// race a just-spawned daemon (e.g. the CI smoke test).
    pub fn connect_retry(addr: &str, timeout: Duration) -> Result<Self, ServeError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Bounds how long reads block (`None` restores blocking reads).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.writer
            .set_read_timeout(timeout)
            .map_err(ServeError::from)
    }

    /// Sends one command line (as a single write — two small writes
    /// would invite Nagle to park the tail behind a delayed ACK).
    pub fn send(&mut self, line: &str) -> Result<(), ServeError> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        Ok(())
    }

    /// Reads one line (without the newline); `None` on EOF.
    pub fn read_line(&mut self) -> Result<Option<String>, ServeError> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Ok(None),
            Ok(_) => Ok(Some(line.trim_end_matches(['\n', '\r']).to_owned())),
            Err(e) => Err(ServeError::from(e)),
        }
    }

    /// Reads one reply block: every line up to and including the next
    /// status line. Event lines that arrive between replies are included
    /// in arrival order (they precede the block they interleaved with).
    pub fn read_response(&mut self) -> Result<Vec<String>, ServeError> {
        let mut lines = Vec::new();
        loop {
            match self.read_line()? {
                None => {
                    return Err(ServeError::Protocol {
                        reason: "connection closed mid-reply".into(),
                    })
                }
                Some(line) => {
                    let done = is_status(&line);
                    lines.push(line);
                    if done {
                        return Ok(lines);
                    }
                }
            }
        }
    }

    /// [`send`](Self::send) + [`read_response`](Self::read_response).
    pub fn request(&mut self, line: &str) -> Result<Vec<String>, ServeError> {
        self.send(line)?;
        self.read_response()
    }

    /// Reads until EOF, returning whatever lines were still in flight
    /// (e.g. trailing events after `quit`).
    pub fn drain(&mut self) -> Result<Vec<String>, ServeError> {
        let mut lines = Vec::new();
        while let Some(line) = self.read_line()? {
            lines.push(line);
        }
        Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::FdSession;
    use fd_relational::tourist_database;

    #[test]
    fn parse_commands_cover_the_grammar() {
        assert_eq!(parse_command(" begin "), Ok(Command::Begin));
        assert_eq!(parse_command("commit"), Ok(Command::Commit));
        assert_eq!(parse_command("abort"), Ok(Command::Abort));
        assert_eq!(parse_command("show"), Ok(Command::Show));
        assert_eq!(parse_command("top"), Ok(Command::Top));
        assert_eq!(parse_command("stats"), Ok(Command::Stats));
        assert_eq!(parse_command("metrics"), Ok(Command::Metrics));
        assert_eq!(parse_command("subscribe"), Ok(Command::Subscribe));
        assert_eq!(parse_command("unsubscribe"), Ok(Command::Unsubscribe));
        assert_eq!(parse_command("quit"), Ok(Command::Quit));
        assert_eq!(parse_command("exit"), Ok(Command::Quit));
        assert_eq!(parse_command("shutdown"), Ok(Command::Shutdown));
        assert_eq!(parse_command("delete t7"), Ok(Command::Delete(TupleId(7))));
        assert_eq!(parse_command("delete 7"), Ok(Command::Delete(TupleId(7))));
        let Ok(Command::Insert { rel, values }) = parse_command("insert Climates | Chile | arid")
        else {
            panic!("insert must parse");
        };
        assert_eq!(rel, "Climates");
        assert_eq!(values, vec![Value::from("Chile"), Value::from("arid")]);
    }

    #[test]
    fn parse_errors_are_structured() {
        assert_eq!(
            parse_command("frobnicate"),
            Err(ParseError::Unknown {
                cmd: "frobnicate".into()
            })
        );
        assert_eq!(
            parse_command("insert NoPipe"),
            Err(ParseError::Usage {
                usage: "insert REL | V1 | V2 ..."
            })
        );
        assert_eq!(
            parse_command("delete xyz"),
            Err(ParseError::BadTupleId {
                token: "xyz".into()
            })
        );
        // Displays match the watch REPL's historical wording.
        assert_eq!(
            parse_command("delete xyz").unwrap_err().to_string(),
            "bad tuple id: xyz"
        );
        assert_eq!(
            parse_command("insert X").unwrap_err().to_string(),
            "usage: insert REL | V1 | V2 ..."
        );
    }

    #[test]
    fn serve_error_sources_chain() {
        use std::error::Error as _;
        let io = ServeError::from(std::io::Error::other("boom"));
        assert!(io.source().is_some());
        assert!(io.to_string().contains("boom"));
        let q = ServeError::from(FdError::InvalidPageSize);
        assert!(q.source().is_some());
        let p = ServeError::Protocol {
            reason: "junk".into(),
        };
        assert!(p.source().is_none());
        assert_eq!(p.to_string(), "protocol: junk");
        assert!(ServeError::SessionPoisoned.source().is_none());
    }

    #[test]
    fn attr_max_ranks_live_values() {
        let db = tourist_database();
        let f = AttrMax::new(&db, "Stars").unwrap();
        let plaza = crate::query::FdQuery::over(&db)
            .run()
            .unwrap()
            .into_sets()
            .into_iter()
            .find(|s| s.label(&db) == "{c1, a1}")
            .unwrap();
        assert_eq!(f.rank(&db, &plaza), 4.0); // the Plaza's Stars
        assert!(AttrMax::new(&db, "Nope").is_err());
    }

    #[test]
    fn session_handle_serializes_commits_and_feeds_subscribers() {
        let handle = SessionHandle::new(FdSession::new(tourist_database()));
        let sub = handle.subscribe().unwrap();
        let mut batch = DeltaBatch::new();
        batch.insert(fd_relational::RelId(0), vec!["Chile".into(), "arid".into()]);
        let commit = handle.commit(batch).unwrap();
        assert_eq!(commit.events.len(), 1);
        let pushed = sub.receiver().recv().unwrap();
        assert_eq!(pushed.labels, vec!["+ {c4}".to_owned()]);
        assert!(handle.unsubscribe(sub.id()).unwrap());
        assert!(!handle.unsubscribe(sub.id()).unwrap());
    }

    #[test]
    fn server_round_trip_over_a_real_socket() {
        let server = Server::start(FdSession::new(tourist_database()), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let greeting = client.read_response().unwrap();
        assert!(greeting
            .last()
            .unwrap()
            .starts_with("ok fd serve (6 results)"));

        let show = client.request("show").unwrap();
        assert_eq!(show.len(), 7);
        assert_eq!(show[0], "  {c1, a1}");
        assert_eq!(show.last().unwrap(), "ok 6 result(s)");

        // Malformed lines earn protocol errors, not disconnects.
        let bad = client.request("frobnicate").unwrap();
        assert!(bad[0].starts_with("error protocol: unknown command: frobnicate"));
        let bad = client.request("delete nope").unwrap();
        assert_eq!(bad, vec!["error protocol: bad tuple id: nope"]);

        // A transaction through the wire.
        assert_eq!(
            client.request("begin").unwrap(),
            vec!["ok begin (mutations now queue until commit)"]
        );
        assert_eq!(
            client.request("insert Climates | Chile | arid").unwrap(),
            vec!["ok queued insert into Climates (1 pending)"]
        );
        let commit = client.request("commit").unwrap();
        assert_eq!(
            commit,
            vec!["ok committed 1 mutation(s) in 1 maintenance pass; 1 event(s)"]
        );
        // `stats` replies with the cumulative work counters as payload
        // lines and the headline counters as the status line.
        let stats = client.request("stats").unwrap();
        assert_eq!(stats.last().unwrap(), "ok results=7 passes=1 subscribers=0");
        assert!(stats.iter().any(|l| l.starts_with("  jcc_checks=")));
        assert_eq!(stats.len(), 15, "14 counters + 1 status line");

        // `metrics` replies with the Prometheus exposition, indented.
        let metrics = client.request("metrics").unwrap();
        assert_eq!(metrics.last().unwrap(), "ok metrics");
        assert!(metrics
            .iter()
            .any(|l| l.starts_with("  fd_commits_total 1")));
        assert!(metrics
            .iter()
            .any(|l| l.starts_with("  # TYPE fd_commit_maintain_seconds summary")));
        assert!(metrics
            .iter()
            .any(|l| *l == "  fd_serve_protocol_errors_total 2"));

        assert_eq!(client.request("quit").unwrap(), vec!["ok bye"]);
        server.stop().unwrap();
    }

    #[test]
    fn subscriber_feed_and_shutdown_flush() {
        let server = Server::start(FdSession::new(tourist_database()), "127.0.0.1:0").unwrap();
        let mut watcher = Client::connect(server.addr()).unwrap();
        watcher.read_response().unwrap();
        let reply = watcher.request("subscribe").unwrap();
        assert!(reply[0].starts_with("ok subscribed s"));
        assert_eq!(
            watcher.request("subscribe").unwrap(),
            vec!["error already subscribed (s0)"]
        );

        let mut actor = Client::connect(server.addr()).unwrap();
        actor.read_response().unwrap();
        let reply = actor.request("insert Climates | Chile | arid").unwrap();
        assert_eq!(reply, vec!["ok inserted c4 into Climates; 1 event(s)"]);

        // The watcher receives the fan-out without polling commands.
        assert_eq!(watcher.read_line().unwrap().unwrap(), "event + {c4}");

        // Unsubscribe stops the feed.
        assert_eq!(
            watcher.request("unsubscribe").unwrap(),
            vec!["ok unsubscribed s0"]
        );
        actor.request("delete t10").unwrap();
        assert_eq!(actor.request("quit").unwrap(), vec!["ok bye"]);
        let quit = watcher.request("quit").unwrap();
        assert_eq!(quit, vec!["ok bye"], "no event may leak after unsubscribe");
        server.stop().unwrap();
    }

    #[test]
    fn shutdown_command_stops_the_daemon() {
        let server = Server::start(FdSession::new(tourist_database()), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let mut client = Client::connect(addr).unwrap();
        client.read_response().unwrap();
        assert_eq!(
            client.request("shutdown").unwrap(),
            vec!["ok shutting down"]
        );
        assert_eq!(client.drain().unwrap(), Vec::<String>::new());
        server.wait().unwrap();
        // The listener is gone (allow the OS a moment to tear down).
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect(addr).is_err());
    }
}
