//! Zero-dependency observability: metrics, spans, and a scrape endpoint.
//!
//! The paper's evaluation (Section 7) compares *operation counts* —
//! [`Stats`](crate::Stats) counts them — but a long-lived `fd serve`
//! daemon needs *latency, throughput, and queue health over time*. This
//! module provides the substrate with nothing beyond `std`:
//!
//! * [`Counter`] — monotonically increasing `AtomicU64`;
//! * [`Gauge`] — signed up/down `AtomicI64` (active connections, queue
//!   depth);
//! * [`Histogram`] — lock-free latency histogram with power-of-two
//!   (log₂) nanosecond buckets, exact max, and p50/p99 estimates that
//!   are always ≤ the observed max;
//! * [`Span`] — a drop-guard that times a scope into a histogram:
//!   `let _s = Span::timed(&hist);`
//! * [`Registry`] — a named collection of the above that renders
//!   Prometheus-style text exposition (`# HELP` / `# TYPE`, counters,
//!   gauges, and histograms-as-summaries with `quantile` labels);
//! * [`MetricsServer`] — a minimal HTTP/1.0 `GET /metrics` endpoint on
//!   a std [`TcpListener`], so `curl`/Prometheus can scrape a running
//!   daemon with zero new dependencies;
//! * [`EventLog`] — structured `key=value` event lines on stderr for
//!   `fd serve --log`;
//! * [`QueryTimings`] — wall-clock, time-to-first-result, and
//!   time-to-k-th-result for one query run, the axes any-k papers plot;
//! * [`lockcheck`] — named `Mutex`/`RwLock` wrappers (re-exported from
//!   [`fd_relational::lockcheck`]) that record per-thread acquisition
//!   order into a global graph and panic, with both back-traces, on a
//!   detected lock-order inversion. Active under `debug_assertions` or
//!   the `lockcheck` cargo feature; transparent in release. The serve
//!   session lock, the interner table, and the per-connection writer
//!   locks all go through it — see `LOCK_ORDER.md` for the declared
//!   order.
//!
//! Everything is thread-safe behind `Arc`; recording is a handful of
//! relaxed atomic ops, cheap enough for the commit hot path. Registries
//! are **per instance**, not global: each
//! [`FdSession`](crate::FdSession) owns one and the serve daemon reuses
//! it, so concurrent sessions (and concurrent tests) never
//! cross-pollute.
//!
//! ```
//! use fd_core::obs::{Registry, Span};
//! use std::sync::Arc;
//!
//! let reg = Arc::new(Registry::new());
//! let hits = reg.counter("cache_hits_total", "Cache hits.");
//! hits.inc();
//! let hist = reg.histogram("lookup_seconds", "Lookup latency.");
//! {
//!     let _span = Span::timed(&hist); // records on drop
//! }
//! let text = reg.render();
//! assert!(text.contains("cache_hits_total 1"));
//! assert!(text.contains("lookup_seconds_count 1"));
//! ```

pub use fd_relational::lockcheck;

use std::collections::BTreeMap;
use std::fmt::{self, Write as _};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Number of log₂ buckets in a [`Histogram`]: bucket `i` holds samples
/// whose nanosecond duration has bit length `i`, i.e. values in
/// `[2^(i-1), 2^i - 1]` (bucket 0 holds exactly 0 ns). 64 buckets cover
/// the full `u64` nanosecond range — half a millennium.
const BUCKETS: usize = 64;

/// A monotonically increasing counter (`_total` metrics).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed gauge that can go up and down (active connections, queue
/// depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` (negative to decrement).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the gauge to an absolute value.
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free latency histogram with power-of-two nanosecond buckets.
///
/// Recording is three relaxed `fetch_add`s and one `fetch_max`.
/// Quantiles walk the cumulative bucket counts and report the matched
/// bucket's upper bound, clamped to the exact observed maximum — so
/// `p50 ≤ p99 ≤ max` holds by construction and `quantile(1.0)` returns
/// the true max. Log₂ buckets bound the relative error of any quantile
/// by 2×, which is plenty for latency monitoring.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum_seconds", &self.sum_seconds())
            .field("max_seconds", &self.max_seconds())
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        self.record_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one sample given directly in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        let idx = (64 - nanos.leading_zeros()) as usize;
        self.buckets[idx.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all samples, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Largest recorded sample, in seconds (exact, not bucketed).
    pub fn max_seconds(&self) -> f64 {
        self.max_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) in seconds.
    ///
    /// Returns the upper bound of the bucket containing the `⌈q·n⌉`-th
    /// smallest sample, clamped to the exact max; `0.0` when empty.
    /// Monotone in `q`, and `quantile(1.0)` equals
    /// [`max_seconds`](Self::max_seconds).
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let max = self.max_nanos.load(Ordering::Relaxed);
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if i >= BUCKETS - 1 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(max) as f64 / 1e9;
            }
        }
        max as f64 / 1e9
    }
}

/// A drop-guard that times a scope into a [`Histogram`].
///
/// The elapsed time since construction is recorded exactly once: on
/// drop, or explicitly via [`finish`](Self::finish). Use
/// [`cancel`](Self::cancel) to discard a measurement (e.g. on an error
/// path that should not pollute a success-latency histogram).
#[derive(Debug)]
pub struct Span {
    hist: Option<Arc<Histogram>>,
    start: Instant,
}

impl Span {
    /// Starts timing; the duration lands in `hist` when the span ends.
    pub fn timed(hist: &Arc<Histogram>) -> Self {
        Self {
            hist: Some(Arc::clone(hist)),
            start: Instant::now(),
        }
    }

    /// Time elapsed so far, without ending the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span now and returns the recorded duration.
    pub fn finish(mut self) -> Duration {
        let d = self.start.elapsed();
        if let Some(h) = self.hist.take() {
            h.record(d);
        }
        d
    }

    /// Ends the span without recording anything.
    pub fn cancel(mut self) {
        self.hist = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            h.record(self.start.elapsed());
        }
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "summary",
        }
    }
}

#[derive(Debug)]
struct Entry {
    help: String,
    metric: Metric,
}

/// A named collection of metrics that renders Prometheus text
/// exposition.
///
/// Registration is get-or-create: asking for an existing name returns
/// the already-registered handle (the first `help` string wins), so
/// call sites can cheaply re-derive handles from shared registries.
/// Names may embed Prometheus labels directly
/// (`r#"fd_ops_total{op="merges"}"#`); the rendered `# HELP`/`# TYPE`
/// headers group all series of a family (the name up to `{`) together,
/// which the sorted map guarantees. Registering the same name with a
/// different metric kind is a programming error and panics.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, help: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let entry = inner.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: make(),
        });
        entry.metric.clone()
    }

    /// Registers (or retrieves) a counter.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        match self.get_or_insert(name, help, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) a gauge.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, help, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) a histogram.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, help, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Renders the registry as Prometheus text exposition (version
    /// 0.0.4): `# HELP`/`# TYPE` per family, one sample line per
    /// series, histograms as summaries with `quantile="0.5"`, `"0.99"`
    /// and `"1"` labels plus `_sum`/`_count`. Families appear in sorted
    /// name order, so the output is stable and diffable.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::new();
        let mut last_family: Option<String> = None;
        for (name, entry) in inner.iter() {
            let family = name.split('{').next().unwrap_or(name);
            if last_family.as_deref() != Some(family) {
                let _ = writeln!(out, "# HELP {family} {}", entry.help);
                let _ = writeln!(out, "# TYPE {family} {}", entry.metric.kind());
                last_family = Some(family.to_string());
            }
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", h.quantile(0.5));
                    let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", h.quantile(0.99));
                    let _ = writeln!(out, "{name}{{quantile=\"1\"}} {}", h.max_seconds());
                    let _ = writeln!(out, "{name}_sum {}", h.sum_seconds());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }
}

/// A minimal HTTP/1.0 metrics endpoint over a std [`TcpListener`].
///
/// `GET /metrics` (or `/`) returns the registry's
/// [`render`](Registry::render) output as
/// `text/plain; version=0.0.4` — directly scrapeable by Prometheus or
/// `curl`. Any other path is a 404, any other method a 405. One
/// accept thread handles requests serially; scrapes are rare and the
/// render is cheap, so that is plenty. The listener shuts down when
/// [`stop`](Self::stop)ped or dropped.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (`127.0.0.1:0` picks an ephemeral port) and starts
    /// serving `registry` in a background thread.
    pub fn start(registry: Arc<Registry>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::spawn(move || scrape_loop(&listener, &registry, &flag));
        Ok(Self {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the endpoint and joins its thread.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn scrape_loop(listener: &TcpListener, registry: &Registry, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = serve_scrape(stream, registry);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Answers one HTTP request on `stream` with the rendered registry.
fn serve_scrape(stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request = String::new();
    reader.read_line(&mut request)?;
    // Drain the request headers up to the blank line; the body (none
    // for GET) is ignored.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim().is_empty() => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else if path == "/metrics" || path == "/" {
        ("200 OK", registry.render())
    } else {
        ("404 Not Found", "not found (try /metrics)\n".to_string())
    };
    let mut writer = stream;
    write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

/// Structured `key=value` event lines on stderr (`fd serve --log`).
///
/// Each line is `ts=<unix-seconds> event=<name> k=v ...`; values
/// containing spaces, quotes or `=` are rendered as Rust string
/// literals so the lines stay machine-splittable on whitespace. A
/// [`disabled`](Self::disabled) log makes every emit a no-op, so call
/// sites need no conditionals.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventLog {
    enabled: bool,
}

impl EventLog {
    /// A log that writes to stderr.
    pub const fn stderr() -> Self {
        Self { enabled: true }
    }

    /// A log that drops everything.
    pub const fn disabled() -> Self {
        Self { enabled: false }
    }

    /// Whether emits go anywhere (lets callers skip expensive field
    /// formatting).
    pub const fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits one event line with the given fields.
    // stderr IS this log's sink: the daemon's structured events stream
    // there so stdout stays free for query results.
    #[allow(clippy::print_stderr)]
    pub fn emit(&self, event: &str, fields: &[(&str, String)]) {
        if !self.enabled {
            return;
        }
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        eprintln!("ts={ts} {}", format_event(event, fields));
    }
}

/// Renders `event=<name> k=v ...` (without the timestamp) — split out
/// so the quoting rules are unit-testable.
fn format_event(event: &str, fields: &[(&str, String)]) -> String {
    let mut line = format!("event={event}");
    for (k, v) in fields {
        if v.contains([' ', '"', '=']) || v.is_empty() {
            let _ = write!(line, " {k}={v:?}");
        } else {
            let _ = write!(line, " {k}={v}");
        }
    }
    line
}

/// Timing milestones of one query run.
///
/// `first_result` / `kth_result` are the axes the any-k literature
/// plots (time-to-first, time-to-k-th); `kth_result` is only set for
/// ranked streams with a `top_k` bound, once the k-th set is emitted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryTimings {
    /// Wall-clock time from plan construction to the measurement point
    /// (end of the run for [`FdQuery::run`](crate::FdQuery::run)).
    pub wall: Duration,
    /// Time until the first tuple set was emitted, if any was.
    pub first_result: Option<Duration>,
    /// Time until the `top_k`-th tuple set was emitted, if reached.
    pub kth_result: Option<Duration>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.add(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_percentiles_are_monotone_and_clamped_to_max() {
        let h = Histogram::new();
        // Samples spread over many buckets, including 0.
        for nanos in [0u64, 1, 7, 120, 999, 4_096, 65_000, 1_000_000, 123] {
            h.record_nanos(nanos);
        }
        assert_eq!(h.count(), 9);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        let max = h.max_seconds();
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        assert!(p99 <= max, "p99 {p99} > max {max}");
        assert_eq!(h.quantile(1.0), max);
        assert_eq!(max, 1_000_000.0 / 1e9);
    }

    #[test]
    fn histogram_single_sample_quantiles_collapse_to_max() {
        let h = Histogram::new();
        h.record(Duration::from_micros(42));
        assert_eq!(h.quantile(0.5), h.max_seconds());
        assert_eq!(h.quantile(0.99), h.max_seconds());
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.max_seconds(), 0.0);
    }

    #[test]
    fn span_records_once_and_cancel_records_nothing() {
        let h = Arc::new(Histogram::new());
        {
            let _s = Span::timed(&h);
        }
        assert_eq!(h.count(), 1);
        let d = Span::timed(&h).finish();
        assert_eq!(h.count(), 2);
        assert!(d >= Duration::ZERO);
        Span::timed(&h).cancel();
        assert_eq!(h.count(), 2);
        assert_eq!(Arc::strong_count(&h), 1, "spans must not leak handles");
    }

    #[test]
    fn registry_is_get_or_create_and_renders_sorted_families() {
        let reg = Registry::new();
        let a = reg.counter("b_total", "Second family.");
        let b = reg.counter("b_total", "ignored on re-register");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same name must return the same counter");
        reg.gauge("a_gauge", "First family.").set(-3);
        reg.counter(r#"c_total{kind="x"}"#, "Labeled family.")
            .add(9);
        reg.counter(r#"c_total{kind="y"}"#, "Labeled family.")
            .add(1);
        reg.histogram("d_seconds", "A latency.")
            .record(Duration::from_nanos(100));
        let text = reg.render();
        let expected = "\
# HELP a_gauge First family.
# TYPE a_gauge gauge
a_gauge -3
# HELP b_total Second family.
# TYPE b_total counter
b_total 2
# HELP c_total Labeled family.
# TYPE c_total counter
c_total{kind=\"x\"} 9
c_total{kind=\"y\"} 1
# HELP d_seconds A latency.
# TYPE d_seconds summary
d_seconds{quantile=\"0.5\"} 0.000000127
d_seconds{quantile=\"0.99\"} 0.000000127
d_seconds{quantile=\"1\"} 0.0000001
d_seconds_sum 0.0000001
d_seconds_count 1
";
        // The quantile sample values depend on bucket bounds; compare
        // everything except those three lines byte-for-byte.
        let filter = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("quantile"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(filter(&text), filter(expected));
        // And the quantile lines must still parse and be monotone.
        let q = |needle: &str| {
            text.lines()
                .find(|l| l.starts_with(needle))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap()
        };
        let (p50, p99, p100) = (
            q("d_seconds{quantile=\"0.5\"}"),
            q("d_seconds{quantile=\"0.99\"}"),
            q("d_seconds{quantile=\"1\"}"),
        );
        assert!(p50 <= p99 && p99 <= p100);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_panics_on_kind_mismatch() {
        let reg = Registry::new();
        reg.counter("x_total", "a counter");
        reg.gauge("x_total", "not a gauge");
    }

    #[test]
    fn metrics_server_serves_exposition_over_http() {
        let reg = Arc::new(Registry::new());
        reg.counter("up_total", "Test counter.").inc();
        let server = MetricsServer::start(Arc::clone(&reg), "127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let fetch = |path: &str, method: &str| -> String {
            let mut s = TcpStream::connect(addr).expect("connect");
            write!(s, "{method} {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
            let mut out = String::new();
            std::io::Read::read_to_string(&mut s, &mut out).expect("read");
            out
        };

        let ok = fetch("/metrics", "GET");
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
        assert!(ok.contains("\r\n\r\n# HELP up_total Test counter."), "{ok}");
        assert!(ok.contains("up_total 1"), "{ok}");

        let missing = fetch("/nope", "GET");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
        let bad = fetch("/metrics", "POST");
        assert!(bad.starts_with("HTTP/1.0 405"), "{bad}");

        server.stop();
    }

    #[test]
    fn event_lines_quote_awkward_values() {
        assert_eq!(
            format_event("commit", &[("changes", "3".to_string())]),
            "event=commit changes=3"
        );
        assert_eq!(
            format_event("err", &[("line", "insert A | x y".to_string())]),
            r#"event=err line="insert A | x y""#
        );
        assert_eq!(
            format_event("e", &[("v", String::new())]),
            r#"event=e v="""#
        );
        let disabled = EventLog::disabled();
        assert!(!disabled.is_enabled());
        disabled.emit("ignored", &[]); // must be a no-op, not a panic
        assert!(EventLog::stderr().is_enabled());
    }
}
