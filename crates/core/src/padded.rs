//! The padded-tuple view of results (Table 2's last columns).
//!
//! Previous work (\[2\] in the paper) defines the full disjunction as a set
//! of *tuples* over the universal schema: the natural join of each tuple
//! set's members, padded with `⊥` on the remaining attributes. This module
//! converts between the paper's tuple-set representation and that view,
//! and renders results the way Table 2 prints them.

use crate::tupleset::TupleSet;
use fd_relational::textio::format_table;
use fd_relational::{universal_schema, AttrId, Database, Value};

/// Joins the members of `set` and pads missing attributes with `⊥`,
/// producing a row over [`universal_schema`] order.
pub fn padded_tuple(db: &Database, set: &TupleSet) -> Vec<Value> {
    let attrs = universal_schema(db);
    padded_tuple_over(set, &attrs)
}

/// Same as [`padded_tuple`] but over a caller-supplied attribute order.
pub fn padded_tuple_over(set: &TupleSet, attrs: &[AttrId]) -> Vec<Value> {
    attrs
        .iter()
        .map(|&a| set.binding(a).cloned().unwrap_or(Value::Null))
        .collect()
}

/// Converts a whole result to padded rows (universal schema order).
pub fn padded_relation(db: &Database, sets: &[TupleSet]) -> Vec<Vec<Value>> {
    let attrs = universal_schema(db);
    sets.iter().map(|s| padded_tuple_over(s, &attrs)).collect()
}

/// Renders results the way the paper's Table 2 does: a first column with
/// the tuple-set labels, then the padded natural join of its members.
pub fn format_results(db: &Database, title: &str, sets: &[TupleSet]) -> String {
    let attrs = universal_schema(db);
    let mut headers: Vec<&str> = vec!["Tuple set"];
    headers.extend(attrs.iter().map(|&a| db.attr_name(a)));
    let rows: Vec<Vec<String>> = sets
        .iter()
        .map(|s| {
            let mut row = vec![s.label(db)];
            row.extend(
                padded_tuple_over(s, &attrs)
                    .iter()
                    .map(|v| v.display().into_owned()),
            );
            row
        })
        .collect();
    format_table(title, &headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::{canonicalize, FdIter};
    use fd_relational::tourist_database;

    fn full_disjunction(db: &fd_relational::Database) -> Vec<crate::TupleSet> {
        FdIter::new(db).collect()
    }

    #[test]
    fn padded_view_of_table_2() {
        let db = tourist_database();
        let fd = canonicalize(full_disjunction(&db));
        let rows = padded_relation(&db, &fd);
        assert_eq!(rows.len(), 6);
        // {c1, a1} row: Canada, Toronto, diverse, Plaza, 4, ⊥ in some
        // universal order — check by attribute name.
        let attrs = fd_relational::universal_schema(&db);
        let idx = |name: &str| {
            let id = db.attr_id(name).unwrap();
            attrs.iter().position(|&a| a == id).unwrap()
        };
        let row0 = &rows[0];
        assert_eq!(row0[idx("Country")], Value::str("Canada"));
        assert_eq!(row0[idx("City")], Value::str("Toronto"));
        assert_eq!(row0[idx("Hotel")], Value::str("Plaza"));
        assert_eq!(row0[idx("Stars")], Value::Int(4));
        assert!(row0[idx("Site")].is_null());

        // {c1, s2} row: City is ⊥ (s2's null carries through).
        let row2 = &rows[2];
        assert!(row2[idx("City")].is_null());
        assert_eq!(row2[idx("Site")], Value::str("Mount Logan"));
    }

    #[test]
    fn no_padded_row_subsumes_another() {
        let db = tourist_database();
        let fd = full_disjunction(&db);
        let rows = padded_relation(&db, &fd);
        for (i, a) in rows.iter().enumerate() {
            for (j, b) in rows.iter().enumerate() {
                if i != j {
                    let subsumed = a.iter().zip(b.iter()).all(|(x, y)| x.is_null() || x == y);
                    assert!(!subsumed, "row {i} subsumed by row {j}");
                }
            }
        }
    }

    #[test]
    fn format_results_contains_labels_and_values() {
        let db = tourist_database();
        let fd = canonicalize(full_disjunction(&db));
        let txt = format_results(&db, "FD", &fd);
        assert!(txt.contains("{c1, a2, s1}"));
        assert!(txt.contains("Air Show"));
        assert!(txt.contains("⊥"));
    }
}
