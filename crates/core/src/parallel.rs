//! Parallel computation of full disjunctions — batch *and* ranked.
//!
//! **Batch.** `FD(R) = ⋃ᵢ FDi(R)` and the `n` runs of `INCREMENTALFD`
//! are mutually independent (Section 4) — an embarrassingly parallel
//! structure the paper's Section 7 block/DBMS discussion gestures at.
//! Each worker computes one or more `FDi` runs; a result is *owned* by
//! the run of its smallest member relation, so the per-run outputs are
//! disjoint and no cross-thread deduplication is needed.
//!
//! **Ranked.** `PRIORITYINCREMENTALFD` shards the same way: a worker
//! seeds the priority queues `Incomplete_i` for a contiguous slice of the
//! relations and runs the shared `GETNEXTRESULT` body
//! (`RankedFdIter::for_relations`), enumerating exactly the answers that
//! contain a tuple of one of its relations. A worker's *raw* emission is
//! not globally rank-ordered — Lemma 5.4's order guarantee relies on the
//! rank witness of an answer (its c-determining subset) sitting in *some*
//! queue, and that queue may belong to another shard — so each worker
//! materializes its shard, sorts it into the canonical ranked order, and
//! the per-worker streams are then k-way heap-merged ([`RankedMerge`])
//! into one globally ordered stream — the rank-preserving merge of
//! partial ranked streams that the any-k literature (Tziavelis et al.;
//! Deep & Koutris) uses to parallelize ranked enumeration without losing
//! the order guarantee. Two properties make the merge exact:
//!
//! * every worker extends its sets to maximality against the *whole*
//!   database, so shard outputs are genuine members of `FD(R)` and the
//!   only cross-worker redundancy is an **exact duplicate** (a set with
//!   member relations in several shards) — never a subsumed set;
//! * duplicates carry identical `(rank, members)` keys, so under the
//!   merge's canonical order (rank descending, member ids ascending)
//!   they surface back to back and one-item lookbehind suppresses them.
//!
//! The merged order is exactly the canonical ranked order the sequential
//! builder plan emits (`FdQuery`'s tie-normalized stream), so
//! `.parallel(n)` is output-identical to the sequential plan for every
//! `n` — sets *and* order.
//!
//! **Bounds.** `.top_k(k)` / `.threshold(τ)` are applied to each sorted
//! shard before the merge (first `k` answers plus the k-th rank's tie
//! group — the canonical global cut may still need any of those; nothing
//! below τ), which bounds the merge, and again exactly at the merged
//! stream. The workers themselves still enumerate their full shards:
//! Theorem 5.5's "top-k in poly(k)" early exit belongs to the sequential
//! plan, the parallel plan instead splits the enumeration across cores.

use crate::approx::{ApproxFdIter, ApproxJoin};
use crate::incremental::{FdConfig, FdiIter};
use crate::priority::{Rank, RankedFdIter};
use crate::ranked_approx::RankedApproxFdIter;
use crate::ranking::canonical_rank_order;
use crate::ranking::MonotoneCDetermined;
use crate::stats::Stats;
use crate::tupleset::TupleSet;
use fd_relational::{Database, RelId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Static partition of `n` relation indices into at most `threads`
/// contiguous shards.
fn shard_relations(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1).min(n.max(1));
    let chunk = n.div_ceil(threads);
    (0..threads)
        .map(|w| (w * chunk, ((w + 1) * chunk).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Runs `work` over every shard, on scoped threads when there is more
/// than one shard. Results come back in shard order.
fn run_sharded<T: Send>(
    shards: &[(usize, usize)],
    work: impl Fn(usize, usize) -> T + Sync,
) -> Vec<T> {
    if shards.len() <= 1 {
        return shards.iter().map(|&(lo, hi)| work(lo, hi)).collect();
    }
    let mut out = Vec::with_capacity(shards.len());
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|&(lo, hi)| scope.spawn(move || work(lo, hi)))
            .collect();
        for h in handles {
            out.push(h.join().expect("worker panicked"));
        }
    });
    out
}

/// Computes `FD(R)` using up to `threads` workers. Results are returned
/// in canonical order together with the merged statistics and the total
/// pages fetched (block-based execution only). With `threads == 1` this
/// degenerates to the sequential algorithm.
pub(crate) fn parallel_full_disjunction(
    db: &Database,
    cfg: FdConfig,
    threads: usize,
) -> (Vec<TupleSet>, Stats, u64) {
    let n = db.num_relations();
    if n == 0 {
        return (Vec::new(), Stats::new(), 0);
    }
    let collected = run_sharded(&shard_relations(n, threads), |lo, hi| {
        let mut out = Vec::new();
        let mut stats = Stats::new();
        let mut pages = 0;
        for rel_idx in lo..hi {
            let ri = RelId(rel_idx as u16);
            let mut iter = FdiIter::with_config(db, ri, cfg);
            for set in &mut iter {
                // Ownership rule: emit a set only in the run of its
                // smallest member relation.
                if !set.has_tuple_before(db, ri) {
                    out.push(set);
                }
            }
            stats.merge(iter.stats());
            pages += iter.pages_read();
        }
        (out, stats, pages)
    });
    let mut results = Vec::new();
    let mut stats = Stats::new();
    let mut pages = 0;
    for (out, s, p) in collected {
        results.extend(out);
        stats.merge(&s);
        pages += p;
    }
    results.sort();
    (results, stats, pages)
}

/// Computes `AFD(R, A, τ)` using up to `threads` workers: each worker
/// drives the `APPROXINCREMENTALFD` runs of its relation shard, the
/// batch ownership rule (smallest member relation) makes emission
/// exactly-once across workers. Results are returned in canonical order.
pub(crate) fn parallel_approx<A: ApproxJoin + Sync>(
    db: &Database,
    a: &A,
    tau: f64,
    cfg: FdConfig,
    threads: usize,
) -> (Vec<TupleSet>, Stats, u64) {
    let n = db.num_relations();
    if n == 0 {
        return (Vec::new(), Stats::new(), 0);
    }
    let collected = run_sharded(&shard_relations(n, threads), |lo, hi| {
        let mut out = Vec::new();
        let mut stats = Stats::new();
        let mut pages = 0;
        for rel_idx in lo..hi {
            let ri = RelId(rel_idx as u16);
            let mut iter = ApproxFdIter::with_config(db, ri, a, tau, cfg);
            for set in &mut iter {
                if !set.has_tuple_before(db, ri) {
                    out.push(set);
                }
            }
            stats.merge(iter.stats());
            pages += iter.pages_read();
        }
        (out, stats, pages)
    });
    let mut results = Vec::new();
    let mut stats = Stats::new();
    let mut pages = 0;
    for (out, s, p) in collected {
        results.extend(out);
        stats.merge(&s);
        pages += p;
    }
    results.sort();
    (results, stats, pages)
}

/// The `.top_k` / `.threshold` bounds a ranked worker can exploit to cut
/// its shard stream early without affecting the merged result.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RankedCut {
    /// Global `.top_k(k)`: a worker never contributes an answer beyond
    /// its own first `k` plus the k-th rank's tie group.
    pub top_k: Option<usize>,
    /// Global `.threshold(τ)`: ranks below τ can never qualify.
    pub min_rank: Option<f64>,
}

/// Trims a canonically sorted shard to the answers that could still
/// appear in the bounded, canonically tie-broken global output: the
/// first `k` plus the entire tie group of the k-th rank (the global cut
/// may select any of its members), and nothing below τ.
fn apply_cut_sorted(out: &mut Vec<(TupleSet, f64)>, cut: RankedCut) {
    if let Some(tau) = cut.min_rank {
        if let Some(first_below) = out.iter().position(|(_, r)| *r < tau) {
            out.truncate(first_below);
        }
    }
    if let Some(k) = cut.top_k {
        if k == 0 {
            out.clear();
        } else if out.len() > k {
            let kth = out[k - 1].1;
            let keep = out[k..]
                .iter()
                .take_while(|(_, r)| r.total_cmp(&kth).is_eq())
                .count();
            out.truncate(k + keep);
        }
    }
}

/// Sorts a shard enumeration into the shared canonical emission order.
fn sort_canonical(v: &mut [(TupleSet, f64)]) {
    v.sort_by(|a, b| canonical_rank_order(a.1, &a.0, b.1, &b.0));
}

/// Ranked `FD(R)` across up to `threads` workers: shards the seed
/// relations, runs one restricted `PRIORITYINCREMENTALFD` per shard, and
/// returns the k-way merge of the per-worker streams plus merged
/// statistics and page counts.
pub(crate) fn parallel_ranked<F: MonotoneCDetermined + Sync>(
    db: &Database,
    f: &F,
    cfg: FdConfig,
    threads: usize,
    cut: RankedCut,
) -> (RankedMerge, Stats, u64) {
    let n = db.num_relations();
    let collected = run_sharded(&shard_relations(n, threads), |lo, hi| {
        let mut it = RankedFdIter::for_relations(db, f, cfg, lo..hi);
        let mut out: Vec<(TupleSet, f64)> = (&mut it).collect();
        sort_canonical(&mut out);
        apply_cut_sorted(&mut out, cut);
        (out, *it.stats(), it.pages_read())
    });
    merge_collected(collected)
}

/// Ranked `AFD(R, A, τ)` across up to `threads` workers — the
/// ranked-approximate twin of [`parallel_ranked`].
pub(crate) fn parallel_ranked_approx<A, F>(
    db: &Database,
    a: &A,
    tau: f64,
    f: &F,
    cfg: FdConfig,
    threads: usize,
    cut: RankedCut,
) -> (RankedMerge, Stats, u64)
where
    A: ApproxJoin + Sync,
    F: MonotoneCDetermined + Sync,
{
    let n = db.num_relations();
    let collected = run_sharded(&shard_relations(n, threads), |lo, hi| {
        let mut it = RankedApproxFdIter::for_relations(db, a, tau, f, cfg, lo..hi);
        let mut out: Vec<(TupleSet, f64)> = (&mut it).collect();
        sort_canonical(&mut out);
        apply_cut_sorted(&mut out, cut);
        (out, *it.stats(), it.pages_read())
    });
    merge_collected(collected)
}

/// One ranked worker's canonically sorted shard stream plus its merged
/// counters and page count.
type ShardOutput = (Vec<(TupleSet, f64)>, Stats, u64);

fn merge_collected(collected: Vec<ShardOutput>) -> (RankedMerge, Stats, u64) {
    let mut streams = Vec::with_capacity(collected.len());
    let mut stats = Stats::new();
    let mut pages = 0;
    for (out, s, p) in collected {
        streams.push(out);
        stats.merge(&s);
        pages += p;
    }
    (RankedMerge::new(streams), stats, pages)
}

/// One head of the k-way merge. The heap is a max-heap, so "greater"
/// means "emitted earlier": higher rank first, then smaller member ids,
/// then lower worker index (pure determinism — equal-content heads are
/// duplicates anyway).
struct MergeHead {
    rank: Rank,
    set: TupleSet,
    src: usize,
}

impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> Ordering {
        // The canonical order says Less = emitted earlier; the max-heap
        // pops Greater first, hence the reverse.
        canonical_rank_order(self.rank.0, &self.set, other.rank.0, &other.set)
            .reverse()
            .then_with(|| other.src.cmp(&self.src))
    }
}

impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for MergeHead {}

/// K-way heap merge of per-worker ranked streams into one globally
/// ordered, duplicate-free stream: rank descending, canonical member
/// order within ties — exactly the sequential builder plan's emission.
///
/// A set whose member relations span several shards is produced by each
/// of them with an identical `(rank, members)` key; such duplicates pop
/// consecutively and are dropped by comparing against the previously
/// emitted set (no global hash set needed).
pub(crate) struct RankedMerge {
    streams: Vec<std::vec::IntoIter<(TupleSet, f64)>>,
    heap: BinaryHeap<MergeHead>,
    last: Option<TupleSet>,
}

impl RankedMerge {
    fn new(worker_outputs: Vec<Vec<(TupleSet, f64)>>) -> Self {
        let mut streams: Vec<_> = worker_outputs.into_iter().map(Vec::into_iter).collect();
        let mut heap = BinaryHeap::with_capacity(streams.len());
        for (src, stream) in streams.iter_mut().enumerate() {
            if let Some((set, rank)) = stream.next() {
                heap.push(MergeHead {
                    rank: Rank(rank),
                    set,
                    src,
                });
            }
        }
        RankedMerge {
            streams,
            heap,
            last: None,
        }
    }

    /// Rank of the next answer (duplicates included — they share the rank
    /// of the answer they duplicate, so bound checks are unaffected).
    pub(crate) fn peek_rank(&self) -> Option<f64> {
        self.heap.peek().map(|h| h.rank.0)
    }

    /// The next globally ranked, deduplicated answer.
    pub(crate) fn next_pair(&mut self) -> Option<(TupleSet, f64)> {
        loop {
            let head = self.heap.pop()?;
            if let Some((set, rank)) = self.streams[head.src].next() {
                self.heap.push(MergeHead {
                    rank: Rank(rank),
                    set,
                    src: head.src,
                });
            }
            if self
                .last
                .as_ref()
                .is_some_and(|l| l.tuples() == head.set.tuples())
            {
                continue; // cross-worker duplicate
            }
            self.last = Some(head.set.clone());
            return Some((head.set, head.rank.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::canonicalize;
    use crate::query::FdQuery;
    use crate::ranking::{FMax, ImpScores};
    use fd_relational::tourist_database;

    fn batch(db: &Database) -> Vec<TupleSet> {
        canonicalize(FdQuery::over(db).run().unwrap().into_sets())
    }

    #[test]
    fn parallel_matches_sequential_for_all_thread_counts() {
        let db = tourist_database();
        let base = batch(&db);
        for threads in [1, 2, 3, 8] {
            let (got, stats, _) = parallel_full_disjunction(&db, FdConfig::default(), threads);
            assert_eq!(base, got, "threads = {threads}");
            assert!(stats.results >= base.len() as u64);
        }
    }

    #[test]
    fn zero_threads_is_clamped() {
        let db = tourist_database();
        let (got, _, _) = parallel_full_disjunction(&db, FdConfig::default(), 0);
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn ownership_rule_partitions_results() {
        // Every result appears exactly once even with one thread per
        // relation.
        let db = tourist_database();
        let (got, _, _) = parallel_full_disjunction(&db, FdConfig::default(), 3);
        let mut canon: Vec<_> = got.iter().map(|s| s.tuples().to_vec()).collect();
        canon.dedup();
        assert_eq!(canon.len(), got.len());
    }

    #[test]
    fn ranked_merge_is_ordered_duplicate_free_and_complete() {
        let db = tourist_database();
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 4) as f64);
        let f = FMax::new(&imp);
        let base: Vec<TupleSet> = canonicalize(
            RankedFdIter::new(&db, &f)
                .map(|(s, _)| s)
                .collect::<Vec<_>>(),
        );
        for threads in [1, 2, 3, 8] {
            let (mut merge, stats, _) =
                parallel_ranked(&db, &f, FdConfig::default(), threads, RankedCut::default());
            let mut out = Vec::new();
            while let Some(pair) = merge.next_pair() {
                out.push(pair);
            }
            for w in out.windows(2) {
                assert!(w[0].1 >= w[1].1, "threads = {threads}: order violated");
                if w[0].1 == w[1].1 {
                    assert!(w[0].0 < w[1].0, "threads = {threads}: tie order");
                }
            }
            let got = canonicalize(out.into_iter().map(|(s, _)| s).collect());
            assert_eq!(base, got, "threads = {threads}");
            assert!(stats.results >= base.len() as u64);
        }
    }

    #[test]
    fn worker_cut_preserves_the_global_top_k() {
        let db = tourist_database();
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 3) as f64); // heavy ties
        let f = FMax::new(&imp);
        let (mut full, _, _) =
            parallel_ranked(&db, &f, FdConfig::default(), 1, RankedCut::default());
        let mut want = Vec::new();
        while let Some(p) = full.next_pair() {
            want.push(p);
        }
        for k in 0..=want.len() + 1 {
            for threads in [1, 2, 3] {
                let cut = RankedCut {
                    top_k: Some(k),
                    min_rank: None,
                };
                let (mut merge, _, _) = parallel_ranked(&db, &f, FdConfig::default(), threads, cut);
                let mut got = Vec::new();
                while let Some(p) = merge.next_pair() {
                    got.push(p);
                    if got.len() == k {
                        break;
                    }
                }
                assert_eq!(
                    got,
                    want[..k.min(want.len())].to_vec(),
                    "k = {k}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn empty_database_yields_empty_streams() {
        let db = fd_relational::DatabaseBuilder::new().build().unwrap();
        let (sets, _, _) = parallel_full_disjunction(&db, FdConfig::default(), 4);
        assert!(sets.is_empty());
        let imp = ImpScores::uniform(&db, 1.0);
        let f = FMax::new(&imp);
        let (mut merge, _, _) =
            parallel_ranked(&db, &f, FdConfig::default(), 4, RankedCut::default());
        assert!(merge.next_pair().is_none());
        assert!(merge.peek_rank().is_none());
    }
}
