//! Parallel computation of the full disjunction.
//!
//! `FD(R) = ⋃ᵢ FDi(R)` and the `n` runs of `INCREMENTALFD` are mutually
//! independent (Section 4) — an embarrassingly parallel structure the
//! paper's Section 7 block/DBMS discussion gestures at. Each worker
//! computes one or more `FDi` runs; a result is *owned* by the run of its
//! smallest member relation, so the per-run outputs are disjoint and no
//! cross-thread deduplication is needed.

use crate::incremental::{FdConfig, FdiIter};
use crate::stats::Stats;
use crate::tupleset::TupleSet;
use fd_relational::{Database, RelId};

/// Computes `FD(R)` using up to `threads` workers. Results are returned
/// in canonical order together with the merged statistics. With
/// `threads == 1` this degenerates to the sequential algorithm.
pub fn parallel_full_disjunction(
    db: &Database,
    cfg: FdConfig,
    threads: usize,
) -> (Vec<TupleSet>, Stats) {
    let n = db.num_relations();
    let threads = threads.max(1).min(n.max(1));
    if n == 0 {
        return (Vec::new(), Stats::new());
    }

    let run_range = |lo: usize, hi: usize| -> (Vec<TupleSet>, Stats) {
        let mut out = Vec::new();
        let mut stats = Stats::new();
        for rel_idx in lo..hi {
            let ri = RelId(rel_idx as u16);
            let mut iter = FdiIter::with_config(db, ri, cfg);
            for set in &mut iter {
                // Ownership rule: emit a set only in the run of its
                // smallest member relation.
                if !set.has_tuple_before(db, ri) {
                    out.push(set);
                }
            }
            stats.merge(iter.stats());
        }
        (out, stats)
    };

    let mut results: Vec<TupleSet>;
    let mut stats = Stats::new();
    if threads == 1 {
        let (out, s) = run_range(0, n);
        results = out;
        stats = s;
    } else {
        // Static partition of the relation indices into `threads` chunks.
        let chunk = n.div_ceil(threads);
        let parts: Vec<(usize, usize)> = (0..threads)
            .map(|w| (w * chunk, ((w + 1) * chunk).min(n)))
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let mut collected: Vec<(Vec<TupleSet>, Stats)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .iter()
                .map(|&(lo, hi)| scope.spawn(move || run_range(lo, hi)))
                .collect();
            for h in handles {
                collected.push(h.join().expect("worker panicked"));
            }
        });
        results = Vec::new();
        for (out, s) in collected {
            results.extend(out);
            stats.merge(&s);
        }
    }
    results.sort();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::{canonicalize, full_disjunction};
    use fd_relational::tourist_database;

    #[test]
    fn parallel_matches_sequential_for_all_thread_counts() {
        let db = tourist_database();
        let base = canonicalize(full_disjunction(&db));
        for threads in [1, 2, 3, 8] {
            let (got, stats) = parallel_full_disjunction(&db, FdConfig::default(), threads);
            assert_eq!(base, got, "threads = {threads}");
            assert!(stats.results >= base.len() as u64);
        }
    }

    #[test]
    fn zero_threads_is_clamped() {
        let db = tourist_database();
        let (got, _) = parallel_full_disjunction(&db, FdConfig::default(), 0);
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn ownership_rule_partitions_results() {
        // Every result appears exactly once even with one thread per
        // relation.
        let db = tourist_database();
        let (got, _) = parallel_full_disjunction(&db, FdConfig::default(), 3);
        let mut canon: Vec<_> = got.iter().map(|s| s.tuples().to_vec()).collect();
        canon.dedup();
        assert_eq!(canon.len(), got.len());
    }
}
