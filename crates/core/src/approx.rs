//! `APPROXINCREMENTALFD` (Figs. 5–6 of the paper): `(A, τ)`-approximate
//! full disjunctions.
//!
//! An *approximate join function* `A` maps tuple sets to `[0, 1]`; it is
//! **acceptable** when `A(T) = 0` for disconnected `T` and `A` is
//! antitone under set growth (`T ⊆ T′ ⇒ A(T) ≥ A(T′)` for connected
//! sets). Given a threshold `τ`, `AFD(R, A, τ)` consists of the maximal
//! tuple sets with `A(T) ≥ τ` (Definition 6.2).
//!
//! Members of an approximate tuple set may *disagree* on shared
//! attributes (that is the point — `Cannada ≈ Canada`), so unlike the
//! exact algorithm nothing here relies on binding consistency; structure
//! (one tuple per relation, connectivity) plus the score decide
//! everything.
//!
//! The algorithm mirrors `INCREMENTALFD` with three changes (the starred
//! lines of Figs. 5–6): initialization keeps only singletons with
//! `A({t}) ≥ τ`; extension and merging test `A(…) ≥ τ` instead of `JCC`;
//! and line 8 can yield **several** maximal subsets `T′ ⊆ T ∪ {tb}` — one
//! for [`AMin`] (Prop. 6.5), possibly many for [`AProd`] (Example 6.3).

use crate::incremental::FdConfig;
use crate::lists::CompleteStore;
use crate::sim::Similarity;
use crate::stats::Stats;
use crate::tupleset::TupleSet;
use fd_relational::fxhash::FxHashSet;
use fd_relational::storage::Pager;
use fd_relational::{Database, RelId, TupleId};
use std::collections::VecDeque;

/// Per-tuple correctness probabilities `prob(t)` (Section 6), in `[0,1]`.
#[derive(Debug, Clone)]
pub struct ProbScores {
    scores: Vec<f64>,
    /// Probability of tuples inserted after construction.
    default: f64,
}

impl ProbScores {
    /// Every tuple has the same probability — including tuples inserted
    /// later.
    pub fn uniform(db: &Database, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability in [0,1]");
        ProbScores {
            scores: vec![p; db.tuple_id_bound() as usize],
            default: p,
        }
    }

    /// Per-tuple probabilities from a closure (called over the whole id
    /// space, including any tombstoned ids). Tuples inserted later
    /// default to probability `1.0` (certain).
    pub fn from_fn(db: &Database, mut f: impl FnMut(TupleId) -> f64) -> Self {
        ProbScores {
            scores: (0..db.tuple_id_bound())
                .map(TupleId)
                .map(|t| {
                    let p = f(t);
                    assert!((0.0..=1.0).contains(&p), "probability in [0,1]");
                    p
                })
                .collect(),
            default: 1.0,
        }
    }

    /// `prob(t)`; the constructor's documented default for tuples
    /// inserted after this assignment was built.
    #[inline]
    pub fn prob(&self, t: TupleId) -> f64 {
        self.scores.get(t.index()).copied().unwrap_or(self.default)
    }
}

/// An acceptable approximate join function (Section 6).
pub trait ApproxJoin {
    /// `A(T)` for a structurally valid tuple set (one tuple per relation).
    /// Must return 0 for disconnected sets and be antitone under growth.
    fn score(&self, db: &Database, members: &[TupleId]) -> f64;

    /// Fig. 6 line 8: all **maximal** subsets `T′ ⊆ T ∪ {tb}` that
    /// contain `tb` and have `A(T′) ≥ τ`. `A` is *efficiently computable*
    /// (Definition 6.4) when this runs in polynomial time.
    fn maximal_subsets(
        &self,
        db: &Database,
        set: &TupleSet,
        tb: TupleId,
        tau: f64,
        stats: &mut Stats,
    ) -> Vec<TupleSet>;
}

// The approximate iterators *own* their join function, so borrowing and
// boxing callers both work: `ApproxFdIter::new(&db, ri, &a, τ)`
// instantiates `A = &AMin<…>`, the query builder's dynamic path
// `A = Box<dyn ApproxJoin>`.

impl<A: ApproxJoin + ?Sized> ApproxJoin for &A {
    fn score(&self, db: &Database, members: &[TupleId]) -> f64 {
        (**self).score(db, members)
    }

    fn maximal_subsets(
        &self,
        db: &Database,
        set: &TupleSet,
        tb: TupleId,
        tau: f64,
        stats: &mut Stats,
    ) -> Vec<TupleSet> {
        (**self).maximal_subsets(db, set, tb, tau, stats)
    }
}

impl<A: ApproxJoin + ?Sized> ApproxJoin for Box<A> {
    fn score(&self, db: &Database, members: &[TupleId]) -> f64 {
        (**self).score(db, members)
    }

    fn maximal_subsets(
        &self,
        db: &Database,
        set: &TupleSet,
        tb: TupleId,
        tau: f64,
        stats: &mut Stats,
    ) -> Vec<TupleSet> {
        (**self).maximal_subsets(db, set, tb, tau, stats)
    }
}

/// Are two tuples "connected" in the Section 6 sense — do their relations
/// share an attribute? `sim` only applies to connected pairs.
fn pair_connected(db: &Database, t1: TupleId, t2: TupleId) -> bool {
    db.rels_connected(db.rel_of(t1), db.rel_of(t2))
}

/// Is the member list connected as a tuple set?
fn members_connected(db: &Database, members: &[TupleId]) -> bool {
    let mut rels: Vec<RelId> = members.iter().map(|&t| db.rel_of(t)).collect();
    rels.sort_unstable();
    rels.dedup();
    rels.len() == members.len() && db.subset_connected(&rels)
}

/// Keeps the members in `tb`'s connected component.
fn component_of(db: &Database, members: &[TupleId], tb: TupleId) -> Vec<TupleId> {
    let rels: Vec<RelId> = members
        .iter()
        .filter(|&&t| t != tb)
        .map(|&t| db.rel_of(t))
        .collect();
    let comp = db.subset_component(&rels, db.rel_of(tb));
    members
        .iter()
        .copied()
        .filter(|&t| t == tb || comp.binary_search(&db.rel_of(t)).is_ok())
        .collect()
}

/// `A_min` (Example 6.1): the minimum over member probabilities and the
/// similarities of all connected member pairs; `prob(t)` for singletons;
/// 0 for disconnected sets. Efficiently computable (Prop. 6.5).
#[derive(Debug, Clone)]
pub struct AMin<S> {
    sim: S,
    prob: ProbScores,
}

impl<S: Similarity> AMin<S> {
    /// Builds from a similarity and per-tuple probabilities.
    pub fn new(sim: S, prob: ProbScores) -> Self {
        AMin { sim, prob }
    }
}

impl<S: Similarity> ApproxJoin for AMin<S> {
    fn score(&self, db: &Database, members: &[TupleId]) -> f64 {
        if members.is_empty() || !members_connected(db, members) {
            return 0.0;
        }
        let mut m = members
            .iter()
            .map(|&t| self.prob.prob(t))
            .fold(f64::INFINITY, f64::min);
        for (i, &t1) in members.iter().enumerate() {
            for &t2 in &members[i + 1..] {
                if pair_connected(db, t1, t2) {
                    m = m.min(self.sim.sim(db, t1, t2));
                }
            }
        }
        m
    }

    /// Prop. 6.5's linear procedure, generalized to handle a same-relation
    /// member of `tb`: drop members that can never accompany `tb` (same
    /// relation, or connected with `sim < τ`), keep `tb`'s component. The
    /// result is the unique maximal subset, or nothing when
    /// `A({tb}) < τ`.
    fn maximal_subsets(
        &self,
        db: &Database,
        set: &TupleSet,
        tb: TupleId,
        tau: f64,
        stats: &mut Stats,
    ) -> Vec<TupleSet> {
        stats.approx_evals += 1;
        if self.prob.prob(tb) < tau {
            return Vec::new();
        }
        let rel_b = db.rel_of(tb);
        let mut members: Vec<TupleId> = set
            .tuples()
            .iter()
            .copied()
            .filter(|&t| {
                db.rel_of(t) != rel_b
                    && (!pair_connected(db, t, tb) || {
                        stats.approx_evals += 1;
                        self.sim.sim(db, t, tb) >= tau
                    })
            })
            .collect();
        let pos = members.partition_point(|&x| x < tb);
        members.insert(pos, tb);
        let kept = component_of(db, &members, tb);
        debug_assert!(self.score(db, &kept) >= tau);
        vec![crate::jcc::rebuild(db, kept)]
    }
}

/// `A_prod` (Example 6.1): the product of the similarities of all
/// connected member pairs; 1 for singletons; 0 for disconnected sets.
/// Not known to have a unique maximal subset (Example 6.3 exhibits two),
/// so line 8 uses a memoized removal search over subsets.
#[derive(Debug, Clone)]
pub struct AProd<S> {
    sim: S,
}

impl<S: Similarity> AProd<S> {
    /// Builds from a similarity.
    pub fn new(sim: S) -> Self {
        AProd { sim }
    }
}

impl<S: Similarity> ApproxJoin for AProd<S> {
    fn score(&self, db: &Database, members: &[TupleId]) -> f64 {
        if members.is_empty() || !members_connected(db, members) {
            return 0.0;
        }
        let mut p = 1.0;
        for (i, &t1) in members.iter().enumerate() {
            for &t2 in &members[i + 1..] {
                if pair_connected(db, t1, t2) {
                    p *= self.sim.sim(db, t1, t2);
                }
            }
        }
        p
    }

    fn maximal_subsets(
        &self,
        db: &Database,
        set: &TupleSet,
        tb: TupleId,
        tau: f64,
        stats: &mut Stats,
    ) -> Vec<TupleSet> {
        let rel_b = db.rel_of(tb);
        let mut members: Vec<TupleId> = set
            .tuples()
            .iter()
            .copied()
            .filter(|&t| db.rel_of(t) != rel_b)
            .collect();
        let pos = members.partition_point(|&x| x < tb);
        members.insert(pos, tb);

        // Removal search: dropping a member can only raise the product
        // (similarities are ≤ 1), so sets that reach τ are frontier
        // candidates; recursion below them is pruned.
        let mut seen: FxHashSet<Box<[TupleId]>> = FxHashSet::default();
        let mut found: Vec<Vec<TupleId>> = Vec::new();
        let mut stack: Vec<Vec<TupleId>> = vec![component_of(db, &members, tb)];
        while let Some(cand) = stack.pop() {
            if !seen.insert(cand.as_slice().into()) {
                continue;
            }
            stats.approx_evals += 1;
            if self.score(db, &cand) >= tau {
                found.push(cand);
                continue;
            }
            if cand.len() <= 1 {
                continue;
            }
            for &t in &cand {
                if t == tb {
                    continue;
                }
                let shrunk: Vec<TupleId> = cand.iter().copied().filter(|&x| x != t).collect();
                stack.push(component_of(db, &shrunk, tb));
            }
        }
        // Keep only the maximal candidates.
        let mut out: Vec<Vec<TupleId>> = Vec::new();
        for cand in found {
            if out.iter().any(|kept| is_sublist(&cand, kept)) {
                continue;
            }
            out.retain(|kept| !is_sublist(kept, &cand));
            out.push(cand);
        }
        out.into_iter()
            .map(|m| crate::jcc::rebuild(db, m))
            .collect()
    }
}

/// Is sorted list `a` a subset of sorted list `b`?
fn is_sublist(a: &[TupleId], b: &[TupleId]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut j = 0;
    for &x in a {
        loop {
            if j >= b.len() {
                return false;
            }
            match b[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    break;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

/// Structural union of two approximate tuple sets: members must be
/// relation-disjoint (shared tuples allowed) and the result connected.
/// Returns the merged member list — scoring is the caller's decision.
fn approx_union(db: &Database, a: &TupleSet, b: &TupleSet) -> Option<Vec<TupleId>> {
    let mut members: Vec<TupleId> = a
        .tuples()
        .iter()
        .chain(b.tuples().iter())
        .copied()
        .collect();
    members.sort_unstable();
    members.dedup();
    if !members_connected(db, &members) {
        return None;
    }
    Some(members)
}

/// Streaming `APPROXINCREMENTALFD(R, i, A, τ)` (Fig. 5): the tuple sets
/// of `AFDi(R, A, τ)` — maximal sets with `A(T) ≥ τ` containing a tuple
/// from `Ri` — with incremental polynomial delay for efficiently
/// computable `A` (Theorem 6.6).
pub struct ApproxFdIter<'db, A: ApproxJoin> {
    db: &'db Database,
    a: A,
    tau: f64,
    ri: RelId,
    /// Pending sets: batch-front FIFO like the exact algorithm.
    queue: VecDeque<(TupleId, TupleSet)>,
    batch: Vec<(TupleId, TupleSet)>,
    /// Printed results; indexed by every member tuple (engine-selected),
    /// so line 11's containment check can look up by the new root.
    complete: CompleteStore,
    pager: Option<Pager<'db>>,
    stats: Stats,
}

impl<'db, A: ApproxJoin> ApproxFdIter<'db, A> {
    /// Initializes `Incomplete` with the singletons of `Ri` whose score
    /// reaches `τ` (Fig. 5 line 3*).
    ///
    /// The join function is taken by value; pass `&a` to keep using a
    /// borrowed one (references implement [`ApproxJoin`]).
    pub fn new(db: &'db Database, ri: RelId, a: A, tau: f64) -> Self {
        Self::with_config(db, ri, a, tau, FdConfig::default())
    }

    /// Like [`new`](Self::new) with an explicit execution configuration:
    /// `engine` selects the `Complete` store structure, `page_size`
    /// switches the candidate scans to block-based execution.
    pub fn with_config(db: &'db Database, ri: RelId, a: A, tau: f64, cfg: FdConfig) -> Self {
        let mut stats = Stats::new();
        let mut batch = Vec::new();
        for t in db.tuples_of(ri) {
            stats.approx_evals += 1;
            if a.score(db, &[t]) >= tau {
                batch.push((t, TupleSet::singleton(db, t)));
                stats.inserts += 1;
            }
        }
        ApproxFdIter {
            db,
            a,
            tau,
            ri,
            queue: VecDeque::new(),
            batch,
            complete: CompleteStore::new(cfg.engine),
            pager: cfg.page_size.map(|ps| Pager::new(db, ps)),
            stats,
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Pages fetched so far (block-based execution only).
    pub fn pages_read(&self) -> u64 {
        self.pager.as_ref().map_or(0, |p| p.stats().pages_read())
    }

    /// Consumes the iterator, returning the join function (used by
    /// [`ApproxAllIter`] to hand one owned function from relation run to
    /// relation run).
    pub fn into_inner(self) -> A {
        self.a
    }

    fn pop(&mut self) -> Option<(TupleId, TupleSet)> {
        for entry in self.batch.drain(..).rev() {
            self.queue.push_front(entry);
        }
        self.queue.pop_front()
    }

    /// Fig. 6 lines 2–6: greedily extend while the score stays above τ.
    fn extend_maximal(&mut self, mut set: TupleSet) -> TupleSet {
        loop {
            self.stats.extension_passes += 1;
            let mut grew = false;
            for rel_idx in 0..self.db.num_relations() {
                let rel = RelId(rel_idx as u16);
                if set.tuple_from(self.db, rel).is_some() {
                    continue;
                }
                if !set
                    .tuples()
                    .iter()
                    .any(|&m| self.db.rels_connected(self.db.rel_of(m), rel))
                {
                    continue;
                }
                for tg in self.db.tuples_of(rel) {
                    self.stats.extension_scans += 1;
                    let mut members = set.tuples().to_vec();
                    let pos = members.partition_point(|&x| x < tg);
                    members.insert(pos, tg);
                    self.stats.approx_evals += 1;
                    if self.a.score(self.db, &members) >= self.tau {
                        set = crate::jcc::rebuild(self.db, members);
                        grew = true;
                        break;
                    }
                }
            }
            if !grew {
                return set;
            }
        }
    }

    /// Fig. 6 lines 14–15 analog: merge `t_prime` into a pending set with
    /// the same root when the union stays above τ.
    fn try_merge(&mut self, root: TupleId, t_prime: &TupleSet) -> bool {
        let db = self.db;
        let a = &self.a;
        let tau = self.tau;
        for (r, s) in self.batch.iter_mut().chain(self.queue.iter_mut()) {
            if *r != root {
                continue;
            }
            self.stats.incomplete_scans += 1;
            if let Some(members) = approx_union(db, s, t_prime) {
                self.stats.approx_evals += 1;
                if a.score(db, &members) >= tau {
                    self.stats.merges += 1;
                    *s = crate::jcc::rebuild(db, members);
                    return true;
                }
            }
        }
        false
    }

    /// One candidate tuple of the Fig. 5 loop.
    fn candidate(&mut self, set: &TupleSet, tb: TupleId) {
        self.stats.candidate_scans += 1;
        if set.contains(tb) {
            return;
        }
        let subsets = self
            .a
            .maximal_subsets(self.db, set, tb, self.tau, &mut self.stats);
        for t_prime in subsets {
            let Some(new_root) = t_prime.tuple_from(self.db, self.ri) else {
                continue;
            };
            if self
                .complete
                .contains_superset(&t_prime, new_root, &mut self.stats)
            {
                continue;
            }
            if self.try_merge(new_root, &t_prime) {
                continue;
            }
            self.stats.inserts += 1;
            self.batch.push((new_root, t_prime));
        }
    }

    fn step(&mut self) -> Option<TupleSet> {
        let (_root, set) = self.pop()?;
        let set = self.extend_maximal(set);

        // Take the pager out so the candidate callback can borrow `self`.
        let pager = self.pager.take();
        crate::getnext::scan_candidates(self.db, pager.as_ref(), |tb| self.candidate(&set, tb));
        self.pager = pager;

        // Line 19: print, registering every member as a lookup root (any
        // later subset shares at least its own root tuple with the set).
        self.complete.insert(set.clone(), set.tuples());
        self.stats.results += 1;
        Some(set)
    }
}

impl<A: ApproxJoin> Iterator for ApproxFdIter<'_, A> {
    type Item = TupleSet;

    fn next(&mut self) -> Option<TupleSet> {
        self.step()
    }
}

/// Streaming `AFD(R, A, τ)`: the union of the `APPROXINCREMENTALFD`
/// runs over every `i ≤ n`, with exactly-once emission — the approximate
/// counterpart of [`FdIter`](crate::FdIter), and what the query builder's
/// `.approx(…)` streaming mode is backed by.
///
/// Owns its join function and hands it from relation run to relation run
/// (via [`ApproxFdIter::into_inner`]), so both borrowed (`&A`) and boxed
/// (`Box<dyn ApproxJoin>`) functions drive it.
pub struct ApproxAllIter<'db, A: ApproxJoin> {
    db: &'db Database,
    tau: f64,
    cfg: FdConfig,
    next_rel: usize,
    current: Option<ApproxFdIter<'db, A>>,
    emitted: FxHashSet<Box<[TupleId]>>,
    stats: Stats,
    /// Pages fetched by already-finished relation runs.
    pages_done: u64,
}

impl<'db, A: ApproxJoin> ApproxAllIter<'db, A> {
    /// Builds the driver with default configuration.
    pub fn new(db: &'db Database, a: A, tau: f64) -> Self {
        Self::with_config(db, a, tau, FdConfig::default())
    }

    /// Builds the driver with an explicit execution configuration, passed
    /// to every per-relation run.
    pub fn with_config(db: &'db Database, a: A, tau: f64, cfg: FdConfig) -> Self {
        let current =
            (db.num_relations() > 0).then(|| ApproxFdIter::with_config(db, RelId(0), a, tau, cfg));
        ApproxAllIter {
            db,
            tau,
            cfg,
            next_rel: 1,
            current,
            emitted: FxHashSet::default(),
            stats: Stats::new(),
            pages_done: 0,
        }
    }

    /// Counters of the finished runs plus the in-flight one.
    pub fn stats_total(&self) -> Stats {
        let mut s = self.stats;
        if let Some(cur) = &self.current {
            s.merge(cur.stats());
        }
        s
    }

    /// Pages fetched so far across all relation runs (block-based
    /// execution only).
    pub fn pages_read(&self) -> u64 {
        self.pages_done + self.current.as_ref().map_or(0, |c| c.pages_read())
    }
}

impl<A: ApproxJoin> Iterator for ApproxAllIter<'_, A> {
    type Item = TupleSet;

    fn next(&mut self) -> Option<TupleSet> {
        loop {
            let cur = self.current.as_mut()?;
            match cur.next() {
                Some(set) => {
                    if self.emitted.insert(set.tuples().into()) {
                        return Some(set);
                    }
                }
                None => {
                    let done = self.current.take().expect("checked above");
                    self.stats.merge(done.stats());
                    self.pages_done += done.pages_read();
                    let a = done.into_inner();
                    if self.next_rel >= self.db.num_relations() {
                        return None;
                    }
                    let ri = RelId(self.next_rel as u16);
                    self.next_rel += 1;
                    self.current = Some(ApproxFdIter::with_config(
                        self.db, ri, a, self.tau, self.cfg,
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ExactSim, TableSim};
    use fd_relational::tourist_database;

    fn approx_full_disjunction<A: ApproxJoin>(db: &Database, a: &A, tau: f64) -> Vec<TupleSet> {
        ApproxAllIter::new(db, a, tau).collect()
    }

    const C1: TupleId = TupleId(0);
    const A2: TupleId = TupleId(4);
    const S1: TupleId = TupleId(6);
    const S2: TupleId = TupleId(7);

    /// Fig. 4 of the paper: the misspelled `c1 = (Cannada, diverse)` with
    /// explicit probabilities and pair similarities.
    fn figure_4() -> (fd_relational::Database, TableSim<ExactSim>, ProbScores) {
        let db = tourist_database();
        let mut sim = TableSim::new(ExactSim);
        // Edges of Fig. 4 (labels: c1, a2, s1, s2 as in the figure).
        sim.set(C1, A2, 0.8); // Cannada ≈ Canada
        sim.set(C1, S1, 0.8);
        sim.set(C1, S2, 0.8);
        sim.set(A2, S1, 1.0);
        sim.set(A2, S2, 0.5);
        let prob = ProbScores::from_fn(&db, |t| match t.0 {
            0 => 0.9, // c1
            4 => 1.0, // a2
            6 => 0.9, // s1
            7 => 0.7, // s2
            _ => 1.0,
        });
        (db, sim, prob)
    }

    #[test]
    fn example_6_1_amin_and_aprod_values() {
        let (db, sim, prob) = figure_4();
        // T1 = {c1, a2, s2}.
        let t1 = [C1, A2, S2];
        let amin = AMin::new(sim.clone(), prob);
        assert!(
            (amin.score(&db, &t1) - 0.5).abs() < 1e-12,
            "A_min(T1) = 0.5"
        );
        let aprod = AProd::new(sim);
        // A_prod(T1) = 0.8 * 0.8 * 0.5 = 0.32.
        assert!(
            (aprod.score(&db, &t1) - 0.32).abs() < 1e-12,
            "A_prod(T1) = 0.32"
        );
    }

    #[test]
    fn example_6_3_maximal_subsets() {
        let (db, sim, prob) = figure_4();
        let tau = 0.4;
        let mut stats = Stats::new();
        // T = {c1, s1, a2}, tb = s2.
        let t = crate::jcc::rebuild(&db, vec![C1, A2, S1]);

        // A_min: the unique maximal subset is {c1, s2, a2}.
        let amin = AMin::new(sim.clone(), prob);
        let subs = amin.maximal_subsets(&db, &t, S2, tau, &mut stats);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].tuples(), &[C1, A2, S2]);
        assert!(amin.score(&db, &[C1, A2, S2]) >= tau);

        // A_prod: {c1,s2,a2} scores 0.32 < τ; the two maximal subsets are
        // {c1, s2} and {s2, a2}.
        let aprod = AProd::new(sim);
        let mut subs: Vec<Vec<TupleId>> = aprod
            .maximal_subsets(&db, &t, S2, tau, &mut stats)
            .into_iter()
            .map(|s| s.tuples().to_vec())
            .collect();
        subs.sort();
        assert_eq!(subs, vec![vec![C1, S2], vec![A2, S2]]);
    }

    #[test]
    fn exact_similarity_reduces_afd_to_fd() {
        let db = tourist_database();
        let amin = AMin::new(ExactSim, ProbScores::uniform(&db, 1.0));
        let mut afd: Vec<Vec<TupleId>> = approx_full_disjunction(&db, &amin, 0.99)
            .into_iter()
            .map(|s| s.tuples().to_vec())
            .collect();
        afd.sort();
        let mut fd: Vec<Vec<TupleId>> = crate::incremental::FdIter::new(&db)
            .map(|s| s.tuples().to_vec())
            .collect();
        fd.sort();
        assert_eq!(afd, fd);
    }

    #[test]
    fn lower_tau_merges_more() {
        let (db, sim, prob) = figure_4();
        let amin = AMin::new(sim, prob);
        // τ = 0.75: sims of 0.8 qualify, 0.5/0.7 do not.
        let strict = approx_full_disjunction(&db, &amin, 0.75);
        // τ = 0.4: everything in Fig. 4 qualifies.
        let loose = approx_full_disjunction(&db, &amin, 0.4);
        // Each strict result must be contained in some loose result
        // (antitone A: growing τ only shrinks sets).
        for s in &strict {
            assert!(
                loose.iter().any(|l| s.is_subset_of(l)),
                "{} not covered at looser τ",
                s.label(&db)
            );
        }
    }

    #[test]
    fn afd_results_respect_threshold_and_maximality() {
        let (db, sim, prob) = figure_4();
        let amin = AMin::new(sim, prob);
        let tau = 0.6;
        let afd = approx_full_disjunction(&db, &amin, tau);
        for s in &afd {
            assert!(amin.score(&db, s.tuples()) >= tau, "{}", s.label(&db));
        }
        for a in &afd {
            for b in &afd {
                if a.tuples() != b.tuples() {
                    assert!(!a.is_subset_of(b));
                }
            }
        }
    }

    #[test]
    fn low_probability_tuples_are_excluded_entirely() {
        let db = tourist_database();
        let prob = ProbScores::from_fn(&db, |t| if t.0 == 0 { 0.1 } else { 1.0 });
        let amin = AMin::new(ExactSim, prob);
        let afd = approx_full_disjunction(&db, &amin, 0.5);
        // c1 (prob 0.1) can appear in no result.
        assert!(afd.iter().all(|s| !s.contains(TupleId(0))));
    }

    #[test]
    fn aprod_singletons_score_one() {
        let db = tourist_database();
        let aprod = AProd::new(ExactSim);
        assert_eq!(aprod.score(&db, &[TupleId(0)]), 1.0);
        assert_eq!(aprod.score(&db, &[]), 0.0);
    }
}
