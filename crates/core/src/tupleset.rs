//! The central data structure: tuple sets.
//!
//! The paper represents a tuple set as a linked list of `(relation,
//! attribute, value)` triples sorted by attribute (Section 4). We keep the
//! same sorted-by-attribute *bindings* — enabling the single-linear-pass
//! JCC checks of Theorem 4.8 — but factor the relation/tuple membership
//! into a separate sorted id list, which gives `O(log)` membership tests
//! and cheap canonical hashing for global deduplication.

use fd_relational::{AttrId, Database, RelId, TupleId, Value};
use std::fmt;

/// A set of tuples from distinct relations, with the merged attribute
/// bindings of all members.
///
/// **Binding semantics.** For every attribute appearing in any member's
/// schema there is exactly one binding `(attr, value, origin)`. A
/// non-null value means every member whose schema has the attribute
/// carries that value; `origin` is the first member that bound it. A
/// `Value::Null` binding means the *single* member `origin` holds `⊥`
/// there — a valid join-consistent set can never have two members sharing
/// a null attribute. The origin disambiguates unions: two sets sharing
/// the member `s2` may both bind `City = ⊥` via `s2`, which is no
/// conflict, whereas nulls from different tuples always are.
///
/// Invariants (maintained by the constructors in [`crate::jcc`]):
/// * `tuples` is sorted ascending (hence grouped by relation — tuple ids
///   are dense per relation);
/// * at most one tuple per relation;
/// * `bindings` is sorted by attribute id with no duplicate attributes.
///
/// Equality, hashing and ordering use the member list only: the bindings
/// are derived data (and their origins depend on construction order).
#[derive(Debug, Clone)]
pub struct TupleSet {
    tuples: Vec<TupleId>,
    bindings: Vec<(AttrId, Value, TupleId)>,
}

impl PartialEq for TupleSet {
    fn eq(&self, other: &Self) -> bool {
        self.tuples == other.tuples
    }
}

impl Eq for TupleSet {}

impl std::hash::Hash for TupleSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.tuples.hash(state);
    }
}

impl TupleSet {
    /// The singleton tuple set `{t}`. Built in linear time from the
    /// relation's pre-sorted attribute positions — the paper's bucket-sort
    /// remark in Section 4.
    pub fn singleton(db: &Database, t: TupleId) -> Self {
        let schema = db.tuple_schema(t);
        let values = db.tuple_values(t);
        let bindings = schema
            .columns_by_attr()
            .iter()
            .map(|&(a, col)| (a, values[col as usize].clone(), t))
            .collect();
        TupleSet {
            tuples: vec![t],
            bindings,
        }
    }

    /// Builds a tuple set from parts. `tuples` must be sorted and
    /// relation-distinct, `bindings` sorted by attribute; debug-asserted.
    pub(crate) fn from_parts(
        tuples: Vec<TupleId>,
        bindings: Vec<(AttrId, Value, TupleId)>,
    ) -> Self {
        debug_assert!(tuples.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(bindings.windows(2).all(|w| w[0].0 < w[1].0));
        TupleSet { tuples, bindings }
    }

    /// Member tuples, ascending.
    #[inline]
    pub fn tuples(&self) -> &[TupleId] {
        &self.tuples
    }

    /// Merged attribute bindings `(attr, value, origin)`, ascending by
    /// attribute. `origin` is the member that established the binding —
    /// meaningful for null bindings, where it is the unique member holding
    /// the attribute.
    #[inline]
    pub fn bindings(&self) -> &[(AttrId, Value, TupleId)] {
        &self.bindings
    }

    /// Number of member tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True for the (never valid as a result) empty set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Is `t` a member?
    #[inline]
    pub fn contains(&self, t: TupleId) -> bool {
        self.tuples.binary_search(&t).is_ok()
    }

    /// The member from relation `rel`, if any. Builder-time tuple ids are
    /// dense per relation, so the common case is one binary search over
    /// the base band; dynamically inserted members (ids above the base
    /// space) fall back to a short scan of the set's tail.
    pub fn tuple_from(&self, db: &Database, rel: RelId) -> Option<TupleId> {
        let range = db.base_tuples(rel);
        let idx = self.tuples.partition_point(|&t| t.0 < range.start);
        if let Some(&t) = self.tuples.get(idx) {
            if t.0 < range.end {
                return Some(t);
            }
        }
        let base = db.base_tuple_count();
        self.tuples
            .iter()
            .rev()
            .take_while(|t| t.0 >= base)
            .find(|&&t| db.rel_of(t) == rel)
            .copied()
    }

    /// Does the set contain a tuple from any relation before `rel`
    /// (`R1..R_{i-1}` in the paper's duplicate-suppression rule for
    /// computing the full `FD` from the `FDi`)?
    pub fn has_tuple_before(&self, db: &Database, rel: RelId) -> bool {
        self.tuples.iter().any(|&t| db.rel_of(t) < rel)
    }

    /// The distinct relations of the members, ascending.
    pub fn relations(&self, db: &Database) -> Vec<RelId> {
        let mut rels: Vec<RelId> = self.tuples.iter().map(|&t| db.rel_of(t)).collect();
        rels.dedup();
        rels
    }

    /// Is this a subset of `other`? (Sorted-merge containment.)
    pub fn is_subset_of(&self, other: &TupleSet) -> bool {
        if self.tuples.len() > other.tuples.len() {
            return false;
        }
        let mut j = 0;
        for &t in &self.tuples {
            loop {
                if j >= other.tuples.len() {
                    return false;
                }
                match other.tuples[j].cmp(&t) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        j += 1;
                        break;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
        }
        true
    }

    /// The binding for `attr`, if any member's schema has it.
    #[inline]
    pub fn binding(&self, attr: AttrId) -> Option<&Value> {
        self.bindings
            .binary_search_by_key(&attr, |&(a, _, _)| a)
            .ok()
            .map(|i| &self.bindings[i].1)
    }

    /// Total size of the set as the paper measures output size `f`:
    /// the number of `(relation, attribute, value)` triples.
    #[inline]
    pub fn total_size(&self) -> usize {
        self.bindings.len()
    }

    /// Renders as the paper prints tuple sets: `{c1, a2, s1}`.
    pub fn label(&self, db: &Database) -> String {
        let labels: Vec<String> = self.tuples.iter().map(|&t| db.tuple_label(t)).collect();
        format!("{{{}}}", labels.join(", "))
    }

    /// Stable display-independent form for assertions: sorted tuple ids.
    pub fn canonical(&self) -> &[TupleId] {
        &self.tuples
    }
}

impl fmt::Display for TupleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// Orders tuple sets canonically (by member id lists) so result
/// collections can be sorted deterministically for comparison.
impl PartialOrd for TupleSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TupleSet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.tuples.cmp(&other.tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_relational::tourist_database;

    #[test]
    fn singleton_bindings_are_sorted_by_attr() {
        let db = tourist_database();
        // a1 = (Canada, Toronto, Plaza, 4) over Country City Hotel Stars.
        let s = TupleSet::singleton(&db, TupleId(3));
        assert_eq!(s.len(), 1);
        assert_eq!(s.bindings().len(), 4);
        assert!(s.bindings().windows(2).all(|w| w[0].0 < w[1].0));
        let country = db.attr_id("Country").unwrap();
        assert_eq!(s.binding(country), Some(&Value::str("Canada")));
    }

    #[test]
    fn singleton_preserves_nulls_in_bindings() {
        let db = tourist_database();
        // a3 = (Bahamas, Nassau, Hilton, ⊥).
        let s = TupleSet::singleton(&db, TupleId(5));
        let stars = db.attr_id("Stars").unwrap();
        assert!(s.binding(stars).unwrap().is_null());
    }

    #[test]
    fn tuple_from_finds_relation_member() {
        let db = tourist_database();
        let s = TupleSet::from_parts(
            vec![TupleId(0), TupleId(4)],
            Vec::new(), // bindings unused in this test
        );
        assert_eq!(s.tuple_from(&db, RelId(0)), Some(TupleId(0)));
        assert_eq!(s.tuple_from(&db, RelId(1)), Some(TupleId(4)));
        assert_eq!(s.tuple_from(&db, RelId(2)), None);
    }

    #[test]
    fn has_tuple_before_detects_earlier_relations() {
        let db = tourist_database();
        let s = TupleSet::from_parts(vec![TupleId(4)], Vec::new()); // a2 ∈ R1 (0-based)
        assert!(s.has_tuple_before(&db, RelId(2)));
        assert!(!s.has_tuple_before(&db, RelId(1)));
        assert!(!s.has_tuple_before(&db, RelId(0)));
    }

    #[test]
    fn subset_checks() {
        let a = TupleSet::from_parts(vec![TupleId(1), TupleId(5)], Vec::new());
        let b = TupleSet::from_parts(vec![TupleId(1), TupleId(3), TupleId(5)], Vec::new());
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        let c = TupleSet::from_parts(vec![TupleId(2)], Vec::new());
        assert!(!c.is_subset_of(&b));
    }

    #[test]
    fn label_matches_paper_notation() {
        let db = tourist_database();
        let s = TupleSet::from_parts(vec![TupleId(0), TupleId(4), TupleId(6)], Vec::new());
        assert_eq!(s.label(&db), "{c1, a2, s1}");
    }

    #[test]
    fn relations_are_deduped_and_sorted() {
        let db = tourist_database();
        let s = TupleSet::from_parts(vec![TupleId(0), TupleId(6)], Vec::new());
        assert_eq!(s.relations(&db), vec![RelId(0), RelId(2)]);
    }

    #[test]
    fn canonical_ordering_is_by_member_ids() {
        let a = TupleSet::from_parts(vec![TupleId(0), TupleId(2)], Vec::new());
        let b = TupleSet::from_parts(vec![TupleId(0), TupleId(3)], Vec::new());
        assert!(a < b);
    }
}
