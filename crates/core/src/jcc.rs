//! Join consistency and connectivity (the paper's `JCC` predicate) and the
//! three primitive operations of `GETNEXTRESULT`:
//!
//! * [`can_add`] / [`add_tuple`] — grow a tuple set by one tuple (the
//!   maximal-extension loop, Fig. 2 lines 2–6);
//! * [`try_union`] — the single-linear-pass `JCC(S ∪ T′)` test of
//!   Theorem 4.8 plus the actual merge (Fig. 2 lines 14–15);
//! * [`maximal_subset_with`] — footnote 3's unique maximal subset
//!   `T′ ⊆ T ∪ {tb}` that contains `tb` (Fig. 2 line 8).
//!
//! All predicates implement the paper's null semantics: a shared attribute
//! is consistent only when both sides are equal **and non-null**.

use crate::stats::Stats;
use crate::tupleset::TupleSet;
use fd_relational::{AttrId, Database, RelId, TupleId, Value};

/// Are two *tuples* join consistent — equal and non-null on every shared
/// attribute of their relations' schemas? Tuples of the same relation are
/// never combinable (a tuple set holds at most one tuple per relation), so
/// the caller must handle that case; this function only inspects values.
pub fn tuples_join_consistent(db: &Database, t1: TupleId, t2: TupleId) -> bool {
    let (r1, r2) = (db.rel_of(t1), db.rel_of(t2));
    db.shared_attrs(r1, r2).iter().all(|&a| {
        let v1 = db.tuple_value(t1, a).expect("shared attr in schema");
        let v2 = db.tuple_value(t2, a).expect("shared attr in schema");
        v1.join_consistent_with(v2)
    })
}

/// Can tuple `t` be added to `set` while keeping it join consistent and
/// connected (`JCC(T ∪ {t})`, Fig. 2 line 4)?
///
/// For a valid non-empty `set` this checks:
/// 1. `t`'s relation is not already represented (sets hold one tuple per
///    relation);
/// 2. every attribute of `t` that some member also has is equal & non-null
///    on both sides — one merge pass over the sorted bindings;
/// 3. `t`'s relation shares an attribute with some member relation
///    (connectivity is preserved because `set` is itself connected).
pub fn can_add(db: &Database, set: &TupleSet, t: TupleId, stats: &mut Stats) -> bool {
    stats.jcc_checks += 1;
    if set.is_empty() {
        return true;
    }
    let rel = db.rel_of(t);
    if set.tuple_from(db, rel).is_some() {
        return false;
    }
    // Connectivity first (cheap: relation-graph adjacency, no allocation).
    if !set
        .tuples()
        .iter()
        .any(|&m| db.rels_connected(db.rel_of(m), rel))
    {
        return false;
    }
    // Binding compatibility: merge pass over sorted attribute lists.
    // `t` is not a member, so every shared attribute must be equal and
    // non-null on both sides (a null binding always conflicts here).
    let values = db.tuple_values(t);
    let schema = db.tuple_schema(t);
    let mut bi = set.bindings().iter().peekable();
    for &(attr, col) in schema.columns_by_attr() {
        // Advance set bindings to `attr`.
        while matches!(bi.peek(), Some(&&(a, _, _)) if a < attr) {
            bi.next();
        }
        if let Some(&&(a, ref bound, _)) = bi.peek() {
            if a == attr {
                let v = &values[col as usize];
                if !bound.join_consistent_with(v) {
                    return false;
                }
            }
        }
    }
    true
}

/// Adds tuple `t` to `set`, assuming [`can_add`] approved it. Returns the
/// grown set; merging the sorted binding lists is linear.
pub fn add_tuple(db: &Database, set: &TupleSet, t: TupleId) -> TupleSet {
    let mut tuples = Vec::with_capacity(set.len() + 1);
    tuples.extend_from_slice(set.tuples());
    let pos = tuples.partition_point(|&x| x < t);
    tuples.insert(pos, t);

    let schema = db.tuple_schema(t);
    let values = db.tuple_values(t);
    let new_bindings = schema.columns_by_attr();
    let mut merged = Vec::with_capacity(set.bindings().len() + new_bindings.len());
    let old = set.bindings();
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new_bindings.len() {
        if j >= new_bindings.len() {
            merged.push(old[i].clone());
            i += 1;
        } else if i >= old.len() {
            let (a, col) = new_bindings[j];
            merged.push((a, values[col as usize].clone(), t));
            j += 1;
        } else {
            let (a_new, col) = new_bindings[j];
            match old[i].0.cmp(&a_new) {
                std::cmp::Ordering::Less => {
                    merged.push(old[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((a_new, values[col as usize].clone(), t));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    // Shared attribute: values are equal non-null by
                    // `can_add`; keep the existing binding.
                    merged.push(old[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    TupleSet::from_parts(tuples, merged)
}

/// Does the member list hold at most one tuple per relation? Member ids
/// are sorted, but with dynamically-inserted overflow tuples the id order
/// does not group relations, so adjacent-pair scans are not enough — two
/// tuples of one relation can be separated by an interleaved id.
pub(crate) fn one_tuple_per_relation(db: &Database, members: &[fd_relational::TupleId]) -> bool {
    let mut rels: Vec<fd_relational::RelId> = members.iter().map(|&t| db.rel_of(t)).collect();
    rels.sort_unstable();
    rels.windows(2).all(|w| w[0] != w[1])
}

/// `JCC(S ∪ T)` plus the union itself (Fig. 2 lines 14–15). Returns
/// `None` when the union is not a valid join-consistent connected tuple
/// set. Implements the single-pass criterion of Theorem 4.8: the parts may
/// not bind a shared attribute differently (or null), must not contain
/// different tuples of the same relation, and must be connected — which,
/// for two individually-connected sets, holds when they share a tuple or
/// some pair of relations across the parts shares an attribute.
pub fn try_union(db: &Database, a: &TupleSet, b: &TupleSet, stats: &mut Stats) -> Option<TupleSet> {
    stats.jcc_checks += 1;
    // Relation-disjointness (same relation ⇒ must be the same tuple) and
    // the merged tuple list, one pass.
    let (ta, tb) = (a.tuples(), b.tuples());
    let mut tuples = Vec::with_capacity(ta.len() + tb.len());
    let (mut i, mut j) = (0, 0);
    let mut shares_tuple = false;
    while i < ta.len() || j < tb.len() {
        if j >= tb.len() {
            tuples.push(ta[i]);
            i += 1;
        } else if i >= ta.len() {
            tuples.push(tb[j]);
            j += 1;
        } else {
            match ta[i].cmp(&tb[j]) {
                std::cmp::Ordering::Less => {
                    tuples.push(ta[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    tuples.push(tb[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    shares_tuple = true;
                    tuples.push(ta[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    // One tuple per relation?
    if !one_tuple_per_relation(db, &tuples) {
        return None;
    }

    // Binding compatibility, one merge pass. On a shared attribute the
    // values must be equal and non-null — unless both bindings are the
    // *same tuple's* null (the parts share that member; a tuple's null
    // never conflicts with itself, only with other tuples).
    let (ba, bb) = (a.bindings(), b.bindings());
    let mut merged = Vec::with_capacity(ba.len() + bb.len());
    let (mut i, mut j) = (0, 0);
    let mut shares_attr = false;
    while i < ba.len() || j < bb.len() {
        if j >= bb.len() {
            merged.push(ba[i].clone());
            i += 1;
        } else if i >= ba.len() {
            merged.push(bb[j].clone());
            j += 1;
        } else {
            match ba[i].0.cmp(&bb[j].0) {
                std::cmp::Ordering::Less => {
                    merged.push(ba[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(bb[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    shares_attr = true;
                    let (_, ref va, oa) = ba[i];
                    let (_, ref vb, ob) = bb[j];
                    let compatible = if va.is_null() || vb.is_null() {
                        va.is_null() && vb.is_null() && oa == ob
                    } else {
                        va == vb
                    };
                    if !compatible {
                        return None;
                    }
                    merged.push(ba[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    // Connectivity: parts are connected internally; the union is connected
    // iff they touch. Sharing a member tuple or a bound attribute is the
    // paper's one-pass criterion. (A shared attribute between two schemas
    // always yields a shared *binding* attribute, since bindings cover
    // every member-schema attribute.)
    if !(shares_tuple || shares_attr) {
        return None;
    }
    Some(TupleSet::from_parts(tuples, merged))
}

/// Footnote 3 / Fig. 2 line 8: the unique maximal subset `T′` of
/// `T ∪ {tb}` that contains `tb` and is join consistent and connected.
///
/// Procedure (as in the paper): drop every member of `T` that is not
/// pairwise join consistent with `tb` (members of `tb`'s own relation
/// drop automatically), then keep the connected component of `tb`'s
/// relation among the survivors, and rebuild the set.
pub fn maximal_subset_with(
    db: &Database,
    set: &TupleSet,
    tb: TupleId,
    stats: &mut Stats,
) -> TupleSet {
    stats.subset_computations += 1;
    let rel_b = db.rel_of(tb);
    // Pass 1: pairwise consistency with tb.
    let mut survivors = 0usize;
    let mut all_survive = true;
    for &t in set.tuples() {
        stats.jcc_checks += 1;
        if db.rel_of(t) != rel_b && tuples_join_consistent(db, t, tb) {
            survivors += 1;
        } else {
            all_survive = false;
        }
    }
    // Fast paths covering the overwhelmingly common candidate outcomes:
    // nothing survives (T′ = {tb}) or everything does (T′ = T ∪ {tb} if
    // tb attaches to the — already connected — set, else {tb}).
    if survivors == 0 {
        return TupleSet::singleton(db, tb);
    }
    if all_survive {
        let attached = set
            .tuples()
            .iter()
            .any(|&m| db.rels_connected(db.rel_of(m), rel_b));
        return if attached {
            add_tuple(db, set, tb)
        } else {
            TupleSet::singleton(db, tb)
        };
    }
    // General path. Pass 2: connected component of tb's relation among
    // the survivors (O(n²) auxiliary-graph search, Theorem 4.8).
    let survivors: Vec<TupleId> = set
        .tuples()
        .iter()
        .copied()
        .filter(|&t| db.rel_of(t) != rel_b && tuples_join_consistent(db, t, tb))
        .collect();
    let rels: Vec<RelId> = survivors.iter().map(|&t| db.rel_of(t)).collect();
    let component = db.subset_component(&rels, rel_b);
    let mut chosen: Vec<TupleId> = survivors
        .into_iter()
        .filter(|&t| component.binary_search(&db.rel_of(t)).is_ok())
        .collect();
    let pos = chosen.partition_point(|&x| x < tb);
    chosen.insert(pos, tb);
    rebuild(db, chosen)
}

/// Builds a [`TupleSet`] from sorted, relation-distinct member tuples that
/// are already known to be mutually join consistent.
pub fn rebuild(db: &Database, tuples: Vec<TupleId>) -> TupleSet {
    let mut set = TupleSet::singleton(db, tuples[0]);
    for &t in &tuples[1..] {
        set = add_tuple(db, &set, t);
    }
    set
}

/// Full `JCC` validation of an arbitrary candidate set — used by tests,
/// the brute-force oracle, and property checks rather than the hot path.
/// Checks all pairs for join consistency, one-tuple-per-relation, and
/// connectivity of the member relations.
pub fn is_jcc(db: &Database, tuples: &[TupleId]) -> bool {
    if tuples.is_empty() {
        return false;
    }
    for (i, &t1) in tuples.iter().enumerate() {
        for &t2 in &tuples[i + 1..] {
            if db.rel_of(t1) == db.rel_of(t2) || !tuples_join_consistent(db, t1, t2) {
                return false;
            }
        }
    }
    let mut rels: Vec<RelId> = tuples.iter().map(|&t| db.rel_of(t)).collect();
    rels.sort_unstable();
    rels.dedup();
    db.subset_connected(&rels)
}

/// The maximal-extension loop of Fig. 2 lines 2–6: repeatedly add any
/// tuple `tg ∉ T` with `JCC(T ∪ {tg})` until a fixpoint.
///
/// Tuples are scanned in global id order (relation order, then row order),
/// matching the paper's trace in Table 3. The loop re-scans until no tuple
/// is added: a pass can newly connect a relation whose tuples were
/// rejected earlier, so up to `n` passes may be needed (`O(s·n)` total,
/// Theorem 4.8).
pub fn extend_to_maximal(db: &Database, set: TupleSet, stats: &mut Stats) -> TupleSet {
    extend_to_maximal_from(db, set, 0, stats)
}

/// [`extend_to_maximal`] restricted to candidate tuples from relations
/// with index `≥ rel_min` — Section 7's "iterate only over tuples in
/// `R_{i+1}, …, R_n`" refinement for the repeated-work-minimizing
/// initialization strategies.
///
/// Candidates come from [`Database::probe`] rather than a relation scan:
/// a connected relation always shares at least one attribute with some
/// member's schema, and every member-schema attribute is bound, so the
/// probe intersects posting lists on those bindings and yields — in
/// ascending id order, the same first-match order as the scan it
/// replaces — exactly the tuples agreeing with the set on every shared
/// attribute. [`can_add`] stays as the authoritative `JCC` check on each
/// candidate (it also keeps the operation counts meaningful).
pub fn extend_to_maximal_from(
    db: &Database,
    mut set: TupleSet,
    rel_min: usize,
    stats: &mut Stats,
) -> TupleSet {
    loop {
        stats.extension_passes += 1;
        let mut grew = false;
        for rel_idx in rel_min..db.num_relations() {
            let rel = RelId(rel_idx as u16);
            // Skip relations already represented or unreachable from the
            // current set (footnote 5's refinement).
            if set.tuple_from(db, rel).is_some() {
                continue;
            }
            if !set
                .tuples()
                .iter()
                .any(|&m| db.rels_connected(db.rel_of(m), rel))
            {
                continue;
            }
            for t in db.probe(rel, set.bindings()) {
                stats.extension_scans += 1;
                if can_add(db, &set, t, stats) {
                    set = add_tuple(db, &set, t);
                    grew = true;
                    break; // one tuple per relation; move on.
                }
            }
        }
        if !grew {
            return set;
        }
    }
}

/// Extracts the binding value of `attr` from tuple `t` if its schema has
/// it (`t[A]`), mirroring the paper's notation for tests.
pub fn tuple_attr(db: &Database, t: TupleId, attr: AttrId) -> Option<Value> {
    db.tuple_value(t, attr).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_relational::tourist_database;

    // Tourist tuple ids: c1..c3 = 0..2, a1..a3 = 3..5, s1..s4 = 6..9.
    const C1: TupleId = TupleId(0);
    const C2: TupleId = TupleId(1);
    const C3: TupleId = TupleId(2);
    const A1: TupleId = TupleId(3);
    const A2: TupleId = TupleId(4);
    const A3: TupleId = TupleId(5);
    const S1: TupleId = TupleId(6);
    const S2: TupleId = TupleId(7);

    /// Overflow ids from dynamic inserts do not group by relation, so
    /// the one-tuple-per-relation test must not rely on id adjacency:
    /// here two relation-A tuples are separated by a relation-B id.
    #[test]
    fn try_union_rejects_same_relation_members_with_interleaved_ids() {
        let mut b = fd_relational::DatabaseBuilder::new();
        b.relation("A", &["X", "Y"]).row([1, 2]);
        b.relation("B", &["X", "Z"]).row([1, 7]);
        let mut db = b.build().unwrap();
        let a1 = db.insert_tuple(RelId(0), vec![1.into(), 2.into()]).unwrap();
        let b1 = db.insert_tuple(RelId(1), vec![1.into(), 7.into()]).unwrap();
        let a2 = db.insert_tuple(RelId(0), vec![1.into(), 2.into()]).unwrap();
        assert!(a1 < b1 && b1 < a2, "ids interleave the relations");
        assert!(!one_tuple_per_relation(&db, &[a1, b1, a2]));

        let mut stats = Stats::new();
        let left = rebuild(&db, vec![a1, b1]);
        let right = rebuild(&db, vec![b1, a2]);
        // a1 and a2 bind identical values, so only the relation test can
        // reject the union — and it must.
        assert!(try_union(&db, &left, &right, &mut stats).is_none());
    }

    #[test]
    fn pairwise_consistency_follows_paper_examples() {
        let db = tourist_database();
        assert!(tuples_join_consistent(&db, C1, A1)); // Canada = Canada
        assert!(tuples_join_consistent(&db, C1, S2)); // share only Country
        assert!(!tuples_join_consistent(&db, C1, A3)); // Canada ≠ Bahamas
                                                       // s2 has City = ⊥, Accommodations has City ⇒ never consistent.
        assert!(!tuples_join_consistent(&db, A1, S2));
        assert!(!tuples_join_consistent(&db, A2, S2));
        // a2 (London) and s1 (London) agree on Country and City.
        assert!(tuples_join_consistent(&db, A2, S1));
        assert!(!tuples_join_consistent(&db, A1, S1)); // Toronto ≠ London
    }

    #[test]
    fn can_add_enforces_relation_uniqueness() {
        let db = tourist_database();
        let mut stats = Stats::new();
        let set = TupleSet::singleton(&db, C1);
        assert!(!can_add(&db, &set, C2, &mut stats));
        assert!(can_add(&db, &set, A1, &mut stats));
    }

    #[test]
    fn can_add_checks_all_members_not_just_bindings_of_one() {
        let db = tourist_database();
        let mut stats = Stats::new();
        let set = rebuild(&db, vec![C1, A1]); // Canada, Toronto
                                              // s1 is Canada/London: conflicts with a1's Toronto via City.
        assert!(!can_add(&db, &set, S1, &mut stats));
        // s2 has City ⊥, conflicting with a1 having City bound.
        assert!(!can_add(&db, &set, S2, &mut stats));
    }

    #[test]
    fn add_tuple_merges_bindings() {
        let db = tourist_database();
        let set = rebuild(&db, vec![C1, A2]);
        assert_eq!(set.len(), 2);
        let climate = db.attr_id("Climate").unwrap();
        let hotel = db.attr_id("Hotel").unwrap();
        let country = db.attr_id("Country").unwrap();
        assert_eq!(set.binding(climate), Some(&Value::str("diverse")));
        assert_eq!(set.binding(hotel), Some(&Value::str("Ramada")));
        assert_eq!(set.binding(country), Some(&Value::str("Canada")));
        // 2 + 4 schemas attrs, 1 shared (Country): 5 bindings.
        assert_eq!(set.bindings().len(), 5);
    }

    #[test]
    fn try_union_requires_shared_structure() {
        let db = tourist_database();
        let mut stats = Stats::new();
        let ca = rebuild(&db, vec![C1, A2]);
        let cs = rebuild(&db, vec![C1, S1]);
        // {c1,a2} ∪ {c1,s1} = {c1,a2,s1}: the Example 4.1 merge.
        let u = try_union(&db, &ca, &cs, &mut stats).expect("merge succeeds");
        assert_eq!(u.tuples(), &[C1, A2, S1]);

        // {c1,s1} vs {c1,s2}: two Sites tuples ⇒ invalid.
        let cs2 = rebuild(&db, vec![C1, S2]);
        assert!(try_union(&db, &cs, &cs2, &mut stats).is_none());

        // {c2} vs {c1,s2}: two Climates tuples ⇒ invalid.
        let c2 = TupleSet::singleton(&db, C2);
        assert!(try_union(&db, &c2, &cs2, &mut stats).is_none());
    }

    #[test]
    fn try_union_rejects_value_conflicts() {
        let db = tourist_database();
        let mut stats = Stats::new();
        let a1 = TupleSet::singleton(&db, A1); // Toronto
        let s1 = TupleSet::singleton(&db, S1); // London
        assert!(try_union(&db, &a1, &s1, &mut stats).is_none());
    }

    #[test]
    fn try_union_rejects_disconnected_parts() {
        // Build a database where two relations share no attributes.
        let mut b = fd_relational::DatabaseBuilder::new();
        b.relation("P", &["A"]).row([1]);
        b.relation("Q", &["B"]).row([2]);
        let db = b.build().unwrap();
        let mut stats = Stats::new();
        let p = TupleSet::singleton(&db, TupleId(0));
        let q = TupleSet::singleton(&db, TupleId(1));
        assert!(try_union(&db, &p, &q, &mut stats).is_none());
    }

    #[test]
    fn maximal_subset_matches_example_4_1() {
        let db = tourist_database();
        let mut stats = Stats::new();

        // T = {c1, a1}; tb = a2 ⇒ T′ = {c1, a2}.
        let t = rebuild(&db, vec![C1, A1]);
        let t1 = maximal_subset_with(&db, &t, A2, &mut stats);
        assert_eq!(t1.tuples(), &[C1, A2]);

        // T = {c1, a1}; tb = a3 ⇒ T′ = {a3} (no Climates tuple).
        let t2 = maximal_subset_with(&db, &t, A3, &mut stats);
        assert_eq!(t2.tuples(), &[A3]);

        // T = {c1, a1}; tb = s1 ⇒ T′ = {c1, s1} (a1 conflicts on City).
        let t3 = maximal_subset_with(&db, &t, S1, &mut stats);
        assert_eq!(t3.tuples(), &[C1, S1]);

        // T = {c1, a2, s1}; tb = s2 ⇒ T′ = {c1, s2}.
        let t4 = rebuild(&db, vec![C1, A2, S1]);
        let t5 = maximal_subset_with(&db, &t4, S2, &mut stats);
        assert_eq!(t5.tuples(), &[C1, S2]);
    }

    #[test]
    fn maximal_subset_keeps_only_component_of_tb() {
        // A - B(bridge) - C, where tb kills the bridge: C must drop even
        // though it is consistent with tb.
        let mut b = fd_relational::DatabaseBuilder::new();
        b.relation("A", &["x", "w"]).row([1, 5]);
        b.relation("B", &["x", "y"]).row([1, 2]).row([9, 2]);
        b.relation("C", &["y"]).row([2]);
        let db = b.build().unwrap();
        let mut stats = Stats::new();
        // T = {a1, b1, c1}; tb = b2 (x=9 conflicts with nothing shared
        // with A? A has x: b2.x=9 vs a1.x=1 conflict ⇒ a1 dropped;
        // c1 consistent with b2 on y ⇒ stays via b2's component).
        let t = rebuild(&db, vec![TupleId(0), TupleId(1), TupleId(3)]);
        let sub = maximal_subset_with(&db, &t, TupleId(2), &mut stats);
        assert_eq!(sub.tuples(), &[TupleId(2), TupleId(3)]);
    }

    #[test]
    fn extension_reaches_maximal_set() {
        let db = tourist_database();
        let mut stats = Stats::new();
        let t = extend_to_maximal(&db, TupleSet::singleton(&db, C1), &mut stats);
        // Table 3: {c1} extends to {c1, a1}.
        assert_eq!(t.tuples(), &[C1, A1]);

        let t2 = extend_to_maximal(&db, TupleSet::singleton(&db, C3), &mut stats);
        // {c3} extends to {c3, a3}.
        assert_eq!(t2.tuples(), &[C3, A3]);
    }

    #[test]
    fn extension_uses_multiple_passes_when_connectivity_arrives_late() {
        // D is connected only through C; scanning order tries... relations
        // in order, so C is reached after D fails once.
        let mut b = fd_relational::DatabaseBuilder::new();
        b.relation("A", &["x"]).row([1]);
        b.relation("D", &["z"]).row([3]);
        b.relation("C", &["x", "z"]).row([1, 3]);
        let db = b.build().unwrap();
        let mut stats = Stats::new();
        let t = extend_to_maximal(&db, TupleSet::singleton(&db, TupleId(0)), &mut stats);
        assert_eq!(t.len(), 3);
        assert!(stats.extension_passes >= 2);
    }

    #[test]
    fn is_jcc_validates_full_predicate() {
        let db = tourist_database();
        assert!(is_jcc(&db, &[C1]));
        assert!(is_jcc(&db, &[C1, A2, S1]));
        assert!(!is_jcc(&db, &[C1, C2])); // same relation
        assert!(!is_jcc(&db, &[A1, S1])); // Toronto vs London
        assert!(!is_jcc(&db, &[])); // empty is not a result
    }
}
