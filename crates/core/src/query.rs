//! The unified query builder: one typed entry point for every
//! enumeration mode of the paper's algorithm family.
//!
//! `INCREMENTALFD`, `PRIORITYINCREMENTALFD` and `APPROXINCREMENTALFD`
//! share one `GETNEXTRESULT` core; [`FdQuery`] exposes them — batch,
//! streaming, ranked top-k/threshold, approximate, ranked-approximate,
//! parallel, and (through [`FdSession`](crate::session::FdSession))
//! delta/live maintenance — behind a
//! single chainable builder, the way ranked-enumeration systems expose
//! one parameterized interface over many strategies:
//!
//! ```
//! use fd_core::{FdQuery, FMax, ImpScores, InitStrategy, StoreEngine};
//! use fd_relational::tourist_database;
//!
//! let db = tourist_database();
//!
//! // Batch, with explicit execution knobs.
//! let fd = FdQuery::over(&db)
//!     .engine(StoreEngine::Scan)
//!     .page_size(4)
//!     .init(InitStrategy::ReuseResults)
//!     .run()?;
//! assert_eq!(fd.len(), 6); // Table 2 of the paper
//!
//! // Ranked top-k — same knobs, now honored by the priority algorithm.
//! let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
//! let top = FdQuery::over(&db)
//!     .engine(StoreEngine::Scan)
//!     .ranked(FMax::new(&imp))
//!     .top_k(2)
//!     .run()?;
//! assert_eq!(top.len(), 2);
//! assert!(top.ranks().unwrap()[0] >= top.ranks().unwrap()[1]);
//!
//! // Streaming, with polynomial delay per answer.
//! let mut stream = FdQuery::over(&db).stream()?;
//! assert!(stream.next().unwrap().is_ok());
//! # Ok::<(), fd_core::FdError>(())
//! ```
//!
//! Invalid combinations are typed [`FdError`]s, not panics:
//!
//! ```
//! use fd_core::{FdError, FdQuery};
//! use fd_relational::tourist_database;
//!
//! let db = tourist_database();
//! let err = FdQuery::over(&db).top_k(3).run().unwrap_err();
//! assert_eq!(err, FdError::RankingRequired { option: ".top_k" });
//! ```

use crate::approx::{ApproxAllIter, ApproxJoin};
use crate::error::FdError;
use crate::incremental::{FdConfig, FdIter};
use crate::init::InitStrategy;
use crate::lists::StoreEngine;
use crate::obs::QueryTimings;
use crate::parallel::{
    parallel_approx, parallel_full_disjunction, parallel_ranked, parallel_ranked_approx, RankedCut,
    RankedMerge,
};
use crate::priority::RankedFdIter;
use crate::ranked_approx::RankedApproxFdIter;
use crate::ranking::{canonical_rank_order, MonotoneCDetermined};
use crate::stats::Stats;
use crate::tupleset::TupleSet;
use fd_relational::{Database, TupleId};
use std::collections::VecDeque;

/// A dynamically dispatched ranking function, as stored by [`FdQuery`].
/// `Sync` so the parallel ranked plan can share it across workers, and
/// `Send` so a ranked session built from a query can cross threads (the
/// `fd serve` daemon shares one session among all its connections).
pub type BoxedRanking<'q> = Box<dyn MonotoneCDetermined + Send + Sync + 'q>;

/// A dynamically dispatched approximate join function, as stored by
/// [`FdQuery`]. `Sync` so the parallel plans can share it across workers.
pub type BoxedApprox<'q> = Box<dyn ApproxJoin + Sync + 'q>;

/// A full-disjunction query under construction.
///
/// Start with [`FdQuery::over`], chain option setters, finish with
/// [`run`](Self::run) (materialized [`FdResult`]), [`stream`](Self::stream)
/// (lazy [`FdStream`]), or the delta-maintenance terminals
/// [`delta_insert`](Self::delta_insert) / [`delta_delete`](Self::delta_delete).
/// The execution knobs of [`FdConfig`] — store engine, block-based page
/// size, initialization strategy — apply uniformly to every mode.
pub struct FdQuery<'q> {
    db: &'q Database,
    cfg: FdConfig,
    ranking: Option<BoxedRanking<'q>>,
    approx: Option<(BoxedApprox<'q>, f64)>,
    top_k: Option<usize>,
    min_rank: Option<f64>,
    threads: Option<usize>,
}

/// Which enumeration family a validated query selects; each family also
/// has a parallel plan, chosen by `.parallel(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Batch,
    Ranked,
    Approx,
    RankedApprox,
}

impl<'q> FdQuery<'q> {
    /// Begins a query over `db`. With no further options this is the
    /// plain `INCREMENTALFD` full disjunction.
    pub fn over(db: &'q Database) -> Self {
        FdQuery {
            db,
            cfg: FdConfig::default(),
            ranking: None,
            approx: None,
            top_k: None,
            min_rank: None,
            threads: None,
        }
    }

    /// Selects the `Complete`/`Incomplete` store engine (Section 7's
    /// indexing ablation).
    pub fn engine(mut self, engine: StoreEngine) -> Self {
        self.cfg.engine = engine;
        self
    }

    /// Switches the `GETNEXTRESULT` scans to block-based execution with
    /// `n` tuples per page (Section 7). `n = 0` is an
    /// [`FdError::InvalidPageSize`] at execution time.
    pub fn page_size(mut self, n: usize) -> Self {
        self.cfg.page_size = Some(n);
        self
    }

    /// Selects how `Incomplete` is initialized across the `n` runs of the
    /// sequential batch mode (Section 7, "Minimizing repeated work").
    /// The reuse strategies seed run `i` from the results of runs `< i`,
    /// which neither the single-seed modes (ranked, approximate — they
    /// have their own Fig. 3 / Fig. 5 initializations) nor the parallel
    /// plans (their runs are mutually independent) can honor; combining a
    /// non-default strategy with `.ranked`/`.approx`/`.parallel` is a
    /// typed [`FdError::Incompatible`] instead of a silent no-op.
    pub fn init(mut self, init: InitStrategy) -> Self {
        self.cfg.init = init;
        self
    }

    /// Replaces the whole execution configuration at once.
    pub fn with_config(mut self, cfg: FdConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Asks for answers in non-increasing rank order under `f`
    /// (`PRIORITYINCREMENTALFD`). The function must be monotonically
    /// c-determined — the paper's tractability boundary (`f_sum` is
    /// excluded by the type system; Proposition 5.1 shows its top-1
    /// problem is NP-hard). Pass `&f` to keep ownership.
    ///
    /// Emission is deterministic: answers of equal rank arrive in
    /// canonical (member-id) order, for every engine and thread count.
    pub fn ranked(mut self, f: impl MonotoneCDetermined + Send + Sync + 'q) -> Self {
        self.ranking = Some(Box::new(f));
        self
    }

    /// Bounds a ranked query to the k highest-ranking answers
    /// (Theorem 5.5). Requires [`ranked`](Self::ranked).
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Bounds a ranked query to the answers with rank ≥ `t`
    /// (Remark 5.6's threshold variant). Requires
    /// [`ranked`](Self::ranked); combines with
    /// [`top_k`](Self::top_k) (both bounds apply).
    pub fn threshold(mut self, t: f64) -> Self {
        self.min_rank = Some(t);
        self
    }

    /// Switches to the `(A, τ)`-approximate full disjunction
    /// (`APPROXINCREMENTALFD`): maximal tuple sets with `A(T) ≥ τ`.
    /// Combines with [`ranked`](Self::ranked) for the ranked-approximate
    /// mode. Pass `&a` to keep ownership.
    pub fn approx(mut self, a: impl ApproxJoin + Sync + 'q, tau: f64) -> Self {
        self.approx = Some((Box::new(a), tau));
        self
    }

    /// Executes with up to `threads` workers. Composes with every
    /// enumeration family: the batch and approximate plans partition the
    /// per-relation runs (a result is owned by its smallest member
    /// relation), the ranked plans shard the priority queues and k-way
    /// heap-merge the per-worker rank-ordered streams back into one
    /// globally ordered stream. Output is identical to the sequential
    /// plan — sets *and* order — for every `threads`.
    pub fn parallel(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The database this query runs over.
    pub fn db(&self) -> &'q Database {
        self.db
    }

    /// The execution configuration accumulated so far.
    pub fn config(&self) -> FdConfig {
        self.cfg
    }

    /// Checks the option combination without executing anything.
    pub fn validate(&self) -> Result<(), FdError> {
        self.mode().map(|_| ())
    }

    /// Deconstructs the builder for downstream engines (session assembly).
    pub fn into_parts(self) -> QueryParts<'q> {
        QueryParts {
            db: self.db,
            config: self.cfg,
            ranking: self.ranking,
            approx: self.approx,
            top_k: self.top_k,
            min_rank: self.min_rank,
            threads: self.threads,
        }
    }

    fn mode(&self) -> Result<Mode, FdError> {
        if self.cfg.page_size == Some(0) {
            return Err(FdError::InvalidPageSize);
        }
        if let Some((_, tau)) = &self.approx {
            if !tau.is_finite() || !(0.0..=1.0).contains(tau) {
                return Err(FdError::InvalidTau { tau: *tau });
            }
        }
        if let Some(t) = self.min_rank {
            if t.is_nan() {
                return Err(FdError::InvalidThreshold { value: t });
            }
        }
        if self.ranking.is_none() {
            if self.top_k.is_some() {
                return Err(FdError::RankingRequired { option: ".top_k" });
            }
            if self.min_rank.is_some() {
                return Err(FdError::RankingRequired {
                    option: ".threshold",
                });
            }
        }
        let mode = match (&self.ranking, &self.approx) {
            (None, None) => Mode::Batch,
            (Some(_), None) => Mode::Ranked,
            (None, Some(_)) => Mode::Approx,
            (Some(_), Some(_)) => Mode::RankedApprox,
        };
        if self.cfg.init != InitStrategy::Singletons {
            // The reuse strategies seed run i from the results of runs
            // < i; a single-seed or parallel execution has no such
            // sequence of prior runs — reject instead of silently
            // ignoring the setting.
            let right = match mode {
                Mode::Ranked | Mode::RankedApprox => Some(".ranked"),
                Mode::Approx => Some(".approx"),
                Mode::Batch => self.threads.is_some().then_some(".parallel"),
            };
            if let Some(right) = right {
                return Err(FdError::Incompatible {
                    left: ".init(ReuseResults/TrimExtend)",
                    right,
                });
            }
        }
        Ok(mode)
    }

    /// Ensures the query describes the plain sequential batch full
    /// disjunction — what delta maintenance operates on.
    pub fn require_batch(&self, context: &'static str) -> Result<(), FdError> {
        match self.mode()? {
            Mode::Batch if self.threads.is_some() => Err(FdError::Incompatible {
                left: context,
                right: ".parallel",
            }),
            Mode::Batch => Ok(()),
            Mode::Ranked => Err(FdError::Incompatible {
                left: context,
                right: ".ranked",
            }),
            Mode::Approx | Mode::RankedApprox => Err(FdError::Incompatible {
                left: context,
                right: ".approx",
            }),
        }
    }

    /// Executes the query and materializes every answer (with its rank,
    /// in ranked modes).
    ///
    /// Borrows the builder, so one query can be run repeatedly — handy
    /// for the cross-engine equivalence suite.
    pub fn run(&self) -> Result<FdResult, FdError> {
        let mode = self.mode()?;
        // Re-borrow the boxed functions: `Box<&dyn Trait>` implements the
        // trait through the reference/box blanket impls, so `run` does not
        // consume the builder.
        let ing = Ingredients {
            ranking: self
                .ranking
                .as_ref()
                .map(|f| Box::new(&**f) as BoxedRanking<'_>),
            approx: self
                .approx
                .as_ref()
                .map(|(a, tau)| (Box::new(&**a) as BoxedApprox<'_>, *tau)),
            top_k: self.top_k,
            min_rank: self.min_rank,
            threads: self.threads,
        };
        // The clock starts *before* plan construction: the parallel
        // plans materialize inside `build_inner`, and that work belongs
        // in the wall / time-to-first measurements.
        let started = std::time::Instant::now();
        let mut stream = FdStream::new(
            started,
            build_inner(self.db, self.cfg, mode, ing),
            self.top_k,
        );
        let ranked_mode = matches!(mode, Mode::Ranked | Mode::RankedApprox);
        let mut sets = Vec::new();
        let mut ranks = Vec::new();
        while let Some((set, rank)) = stream.next_ranked() {
            if let Some(r) = rank {
                ranks.push(r);
            }
            sets.push(set);
        }
        let stats = stream.stats();
        let timings = stream.timings();
        Ok(FdResult {
            sets,
            ranks: ranked_mode.then_some(ranks),
            stats,
            timings,
        })
    }

    /// Executes the query lazily: every `next()` delivers one answer with
    /// the algorithms' incremental polynomial delay. Consumes the builder
    /// (the stream owns the ranking/approximate functions).
    ///
    /// Exception: a `.parallel(n)` query has no lazy form — its workers
    /// materialize their shards inside this call and the stream drains
    /// the merged result. In particular, a parallel `.top_k` query
    /// enumerates the whole shard per worker (split across cores) where
    /// the sequential plan would stop after ~k answers; prefer the
    /// sequential plan when k is small and the database is large.
    pub fn stream(self) -> Result<FdStream<'q>, FdError> {
        let mode = self.mode()?;
        let top_k = self.top_k;
        let ing = Ingredients {
            ranking: self.ranking,
            approx: self.approx,
            top_k,
            min_rank: self.min_rank,
            threads: self.threads,
        };
        let started = std::time::Instant::now();
        Ok(FdStream::new(
            started,
            build_inner(self.db, self.cfg, mode, ing),
            top_k,
        ))
    }

    /// Opens a transactional [`FdSession`](crate::session::FdSession)
    /// over this query: the session
    /// clones the database, materializes the result under the query's
    /// configuration (`.parallel(n)` parallelizes that initial
    /// materialization; maintenance passes stay sequential), and then
    /// maintains it under batched, committed mutations with **one**
    /// maintenance pass per commit.
    ///
    /// `.ranked(f).top_k(k)` opens a ranked session with a maintained
    /// top-k window; `.ranked` without `.top_k` is a typed
    /// [`FdError::TopKRequired`], and `.approx` / `.threshold` do not
    /// combine with session maintenance ([`FdError::Incompatible`]).
    ///
    /// ```
    /// use fd_core::{FMax, FdQuery, ImpScores, StoreEngine};
    /// use fd_relational::{tourist_database, RelId};
    ///
    /// let db = tourist_database();
    /// let mut session = FdQuery::over(&db).engine(StoreEngine::Scan).session()?;
    /// let mut batch = session.begin();
    /// batch.insert(RelId(0), vec!["Chile".into(), "arid".into()]);
    /// assert_eq!(session.commit(batch)?.events.len(), 1);
    ///
    /// let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
    /// let ranked = FdQuery::over(&db).ranked(FMax::new(&imp)).top_k(2).session()?;
    /// assert_eq!(ranked.window().unwrap().len(), 2);
    /// # Ok::<(), fd_core::FdError>(())
    /// ```
    pub fn session(self) -> Result<crate::session::FdSession<'q>, FdError> {
        self.validate()?;
        let parts = self.into_parts();
        if parts.approx.is_some() {
            return Err(FdError::Incompatible {
                left: "a session",
                right: ".approx",
            });
        }
        match parts.ranking {
            None => {
                if parts.top_k.is_some() || parts.min_rank.is_some() {
                    // validate() already rejected these (ranking-less
                    // top_k/threshold), so this is unreachable; keep the
                    // match exhaustive for clarity.
                    unreachable!("validate() rejects bounds without .ranked");
                }
                Ok(crate::session::FdSession::with_config_parallel(
                    parts.db.clone(),
                    parts.config,
                    parts.threads,
                ))
            }
            Some(f) => {
                if parts.min_rank.is_some() {
                    return Err(FdError::Incompatible {
                        left: "a ranked session",
                        right: ".threshold",
                    });
                }
                let k = parts.top_k.ok_or(FdError::TopKRequired {
                    context: "a ranked session",
                })?;
                Ok(crate::session::FdSession::ranked_with_config_parallel(
                    parts.db.clone(),
                    f,
                    k,
                    parts.config,
                    parts.threads,
                ))
            }
        }
    }

    /// Delta maintenance: the effect of inserting tuple `t` on the
    /// materialized full disjunction `previous`, under this query's
    /// execution configuration. See [`crate::delta::delta_insert`].
    pub fn delta_insert(
        &self,
        t: TupleId,
        previous: &[TupleSet],
    ) -> Result<crate::delta::InsertDelta, FdError> {
        self.require_batch("delta maintenance")?;
        Ok(crate::delta::delta_insert(self.db, t, previous, self.cfg))
    }

    /// Delta maintenance: the effect of deleting tuple `t` on the
    /// materialized full disjunction `previous`, under this query's
    /// execution configuration. See [`crate::delta::delta_delete`].
    pub fn delta_delete(
        &self,
        t: TupleId,
        previous: &[TupleSet],
    ) -> Result<crate::delta::DeleteDelta, FdError> {
        self.require_batch("delta maintenance")?;
        Ok(crate::delta::delta_delete(self.db, t, previous, self.cfg))
    }
}

impl std::fmt::Debug for FdQuery<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FdQuery")
            .field("cfg", &self.cfg)
            .field("ranked", &self.ranking.is_some())
            .field("approx_tau", &self.approx.as_ref().map(|(_, t)| *t))
            .field("top_k", &self.top_k)
            .field("min_rank", &self.min_rank)
            .field("threads", &self.threads)
            .finish()
    }
}

/// The deconstructed fields of an [`FdQuery`], for engines that layer on
/// top of the builder (e.g. [`FdQuery::session`]'s session assembly).
pub struct QueryParts<'q> {
    /// The database the query was built over.
    pub db: &'q Database,
    /// The accumulated execution configuration.
    pub config: FdConfig,
    /// The ranking function, if `.ranked` was called.
    pub ranking: Option<BoxedRanking<'q>>,
    /// The approximate join function and its τ, if `.approx` was called.
    pub approx: Option<(BoxedApprox<'q>, f64)>,
    /// The `.top_k` bound, if set.
    pub top_k: Option<usize>,
    /// The `.threshold` bound, if set.
    pub min_rank: Option<f64>,
    /// The `.parallel` worker count, if set.
    pub threads: Option<usize>,
}

/// The materialized output of [`FdQuery::run`].
#[derive(Debug, Clone)]
pub struct FdResult {
    sets: Vec<TupleSet>,
    ranks: Option<Vec<f64>>,
    stats: Stats,
    timings: QueryTimings,
}

impl FdResult {
    /// The answers, in the executed mode's emission order (rank order for
    /// ranked modes).
    pub fn sets(&self) -> &[TupleSet] {
        &self.sets
    }

    /// Consumes the result, returning the answers.
    pub fn into_sets(self) -> Vec<TupleSet> {
        self.sets
    }

    /// Per-answer ranks, aligned with [`sets`](Self::sets) — `Some` in
    /// ranked modes, `None` otherwise.
    pub fn ranks(&self) -> Option<&[f64]> {
        self.ranks.as_deref()
    }

    /// Consumes the result, returning `(answer, rank)` pairs; `None` when
    /// the query was not ranked.
    pub fn into_ranked(self) -> Option<Vec<(TupleSet, f64)>> {
        let ranks = self.ranks?;
        Some(self.sets.into_iter().zip(ranks).collect())
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Were there no answers?
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Work counters of the execution.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Wall-clock milestones of the execution: total time,
    /// time-to-first-result, and (for `.top_k(k)` queries that yielded
    /// k answers) time-to-k-th-result.
    pub fn timings(&self) -> QueryTimings {
        self.timings
    }
}

/// Option payload threaded from the builder into [`build_inner`].
struct Ingredients<'q> {
    ranking: Option<BoxedRanking<'q>>,
    approx: Option<(BoxedApprox<'q>, f64)>,
    top_k: Option<usize>,
    min_rank: Option<f64>,
    threads: Option<usize>,
}

fn build_inner<'q>(
    db: &'q Database,
    cfg: FdConfig,
    mode: Mode,
    ing: Ingredients<'q>,
) -> StreamInner<'q> {
    let cut = RankedCut {
        top_k: ing.top_k,
        min_rank: ing.min_rank,
    };
    match (mode, ing.threads) {
        (Mode::Batch, None) => StreamInner::Batch(FdIter::with_config(db, cfg)),
        (Mode::Batch, Some(threads)) => {
            let (sets, stats, pages) = parallel_full_disjunction(db, cfg, threads);
            StreamInner::Parallel {
                sets: sets.into_iter(),
                stats,
                pages,
            }
        }
        (Mode::Ranked, None) => {
            let f = ing.ranking.expect("mode implies ranking");
            StreamInner::Ranked(Bounded {
                it: CanonicalTies::new(RankedFdIter::with_config(db, f, cfg)),
                remaining: ing.top_k,
                min_rank: ing.min_rank,
            })
        }
        (Mode::Ranked, Some(threads)) => {
            let f = ing.ranking.expect("mode implies ranking");
            let (merge, stats, pages) = parallel_ranked(db, &f, cfg, threads, cut);
            StreamInner::MergedRanked {
                merge: Bounded {
                    it: merge,
                    remaining: ing.top_k,
                    min_rank: ing.min_rank,
                },
                stats,
                pages,
            }
        }
        (Mode::Approx, None) => {
            let (a, tau) = ing.approx.expect("mode implies approx");
            StreamInner::Approx(ApproxAllIter::with_config(db, a, tau, cfg))
        }
        (Mode::Approx, Some(threads)) => {
            let (a, tau) = ing.approx.expect("mode implies approx");
            let (sets, stats, pages) = parallel_approx(db, &a, tau, cfg, threads);
            StreamInner::Parallel {
                sets: sets.into_iter(),
                stats,
                pages,
            }
        }
        (Mode::RankedApprox, None) => {
            let f = ing.ranking.expect("mode implies ranking");
            let (a, tau) = ing.approx.expect("mode implies approx");
            StreamInner::RankedApprox(Bounded {
                it: CanonicalTies::new(RankedApproxFdIter::with_config(db, a, tau, f, cfg)),
                remaining: ing.top_k,
                min_rank: ing.min_rank,
            })
        }
        (Mode::RankedApprox, Some(threads)) => {
            let f = ing.ranking.expect("mode implies ranking");
            let (a, tau) = ing.approx.expect("mode implies approx");
            let (merge, stats, pages) = parallel_ranked_approx(db, &a, tau, &f, cfg, threads, cut);
            StreamInner::MergedRanked {
                merge: Bounded {
                    it: merge,
                    remaining: ing.top_k,
                    min_rank: ing.min_rank,
                },
                stats,
                pages,
            }
        }
    }
}

/// The unified lazy answer stream of [`FdQuery::stream`]: one enum-backed
/// iterator in place of the four mode-specific iterator types.
///
/// Yields `Result<TupleSet, FdError>` — with the current validation all
/// errors surface at [`FdQuery::stream`] time, so every yielded item is
/// `Ok`; the `Result` item keeps room for execution-time failures (e.g.
/// remote backends) without breaking the interface.
pub struct FdStream<'q> {
    inner: StreamInner<'q>,
    started: std::time::Instant,
    emitted: usize,
    top_k: Option<usize>,
    first: Option<std::time::Duration>,
    kth: Option<std::time::Duration>,
}

enum StreamInner<'q> {
    Batch(FdIter<'q>),
    Parallel {
        sets: std::vec::IntoIter<TupleSet>,
        stats: Stats,
        pages: u64,
    },
    Ranked(Bounded<CanonicalTies<RankedFdIter<'q, BoxedRanking<'q>>>>),
    MergedRanked {
        merge: Bounded<RankedMerge>,
        stats: Stats,
        pages: u64,
    },
    Approx(ApproxAllIter<'q, BoxedApprox<'q>>),
    RankedApprox(Bounded<CanonicalTies<RankedApproxFdIter<'q, BoxedApprox<'q>, BoxedRanking<'q>>>>),
}

/// A ranked iterator with the `.top_k` / `.threshold` bounds applied.
/// Emission order is non-increasing in rank (Lemma 5.4), so the first
/// queue-top below τ ends the stream without further work.
struct Bounded<I> {
    it: I,
    remaining: Option<usize>,
    min_rank: Option<f64>,
}

trait RankedSource {
    fn peek_rank(&mut self) -> Option<f64>;
    fn next_pair(&mut self) -> Option<(TupleSet, f64)>;
}

impl<F: MonotoneCDetermined> RankedSource for RankedFdIter<'_, F> {
    fn peek_rank(&mut self) -> Option<f64> {
        RankedFdIter::peek_rank(self)
    }

    fn next_pair(&mut self) -> Option<(TupleSet, f64)> {
        self.next()
    }
}

impl<A: ApproxJoin, F: MonotoneCDetermined> RankedSource for RankedApproxFdIter<'_, A, F> {
    fn peek_rank(&mut self) -> Option<f64> {
        RankedApproxFdIter::peek_rank(self)
    }

    fn next_pair(&mut self) -> Option<(TupleSet, f64)> {
        self.next()
    }
}

impl RankedSource for RankedMerge {
    fn peek_rank(&mut self) -> Option<f64> {
        RankedMerge::peek_rank(self)
    }

    fn next_pair(&mut self) -> Option<(TupleSet, f64)> {
        RankedMerge::next_pair(self)
    }
}

/// Deterministic tie order for the ranked plans: the underlying iterator
/// delivers answers in non-increasing rank order (Lemma 5.4) but breaks
/// ties in an arbitrary, engine-dependent order. This adapter buffers
/// each maximal run of equal-rank answers and releases it sorted by
/// member ids — the same canonical order the parallel k-way merge
/// produces — so the sequential and parallel ranked plans are
/// output-identical and every engine/page-size configuration emits the
/// same sequence. The look-ahead is one tie group plus one answer, so
/// the incremental polynomial delay bound survives (scaled by the tie
/// group size).
struct CanonicalTies<I> {
    it: I,
    group: VecDeque<(TupleSet, f64)>,
    pending: Option<(TupleSet, f64)>,
    done: bool,
}

impl<I: RankedSource> CanonicalTies<I> {
    fn new(it: I) -> Self {
        CanonicalTies {
            it,
            group: VecDeque::new(),
            pending: None,
            done: false,
        }
    }

    /// The wrapped iterator (for stats/pages accessors).
    fn inner(&self) -> &I {
        &self.it
    }

    /// Pulls the next full tie group out of the underlying stream and
    /// sorts it canonically.
    fn refill(&mut self) {
        if !self.group.is_empty() {
            return;
        }
        let first = match self.pending.take() {
            Some(first) => first,
            None if self.done => return,
            None => match self.it.next_pair() {
                Some(first) => first,
                None => {
                    self.done = true;
                    return;
                }
            },
        };
        let rank = first.1;
        let mut group = vec![first];
        loop {
            match self.it.next_pair() {
                Some(item) if item.1.total_cmp(&rank).is_eq() => group.push(item),
                Some(item) => {
                    self.pending = Some(item);
                    break;
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        group.sort_by(|a, b| canonical_rank_order(a.1, &a.0, b.1, &b.0));
        self.group = group.into();
    }
}

impl<I: RankedSource> RankedSource for CanonicalTies<I> {
    fn peek_rank(&mut self) -> Option<f64> {
        if let Some((_, r)) = self.group.front() {
            return Some(*r);
        }
        if let Some((_, r)) = &self.pending {
            return Some(*r);
        }
        if self.done {
            return None;
        }
        self.it.peek_rank()
    }

    fn next_pair(&mut self) -> Option<(TupleSet, f64)> {
        self.refill();
        self.group.pop_front()
    }
}

impl<I: RankedSource> Bounded<I> {
    fn next(&mut self) -> Option<(TupleSet, f64)> {
        if self.remaining == Some(0) {
            return None;
        }
        if let Some(tau) = self.min_rank {
            // Queue ranks never exceed the final ranks (monotonicity), so
            // once every queue top falls below τ no unseen answer can
            // reach it — and emission is non-increasing, so stopping at
            // the first sub-τ answer is exact.
            if self.it.peek_rank()? < tau {
                return None;
            }
        }
        let (set, rank) = self.it.next_pair()?;
        if let Some(tau) = self.min_rank {
            if rank < tau {
                return None;
            }
        }
        if let Some(r) = &mut self.remaining {
            *r -= 1;
        }
        Some((set, rank))
    }
}

impl<'q> FdStream<'q> {
    fn new(started: std::time::Instant, inner: StreamInner<'q>, top_k: Option<usize>) -> Self {
        FdStream {
            inner,
            started,
            emitted: 0,
            top_k,
            first: None,
            kth: None,
        }
    }

    /// The next answer together with its rank (`None` rank outside the
    /// ranked modes).
    pub fn next_ranked(&mut self) -> Option<(TupleSet, Option<f64>)> {
        let item = match &mut self.inner {
            StreamInner::Batch(it) => it.next().map(|s| (s, None)),
            StreamInner::Parallel { sets, .. } => sets.next().map(|s| (s, None)),
            StreamInner::Ranked(b) => b.next().map(|(s, r)| (s, Some(r))),
            StreamInner::MergedRanked { merge, .. } => merge.next().map(|(s, r)| (s, Some(r))),
            StreamInner::Approx(it) => it.next().map(|s| (s, None)),
            StreamInner::RankedApprox(b) => b.next().map(|(s, r)| (s, Some(r))),
        };
        if item.is_some() {
            self.emitted += 1;
            if self.emitted == 1 {
                self.first = Some(self.started.elapsed());
            }
            if self.top_k == Some(self.emitted) {
                self.kth = Some(self.started.elapsed());
            }
        }
        item
    }

    /// Wall-clock milestones so far: elapsed time since the stream was
    /// built, time-to-first-result, and time-to-k-th-result (for
    /// `.top_k(k)` plans, once the k-th answer has been emitted).
    pub fn timings(&self) -> QueryTimings {
        QueryTimings {
            wall: self.started.elapsed(),
            first_result: self.first,
            kth_result: self.kth,
        }
    }

    /// Work counters accumulated so far (for the parallel plans: the
    /// merged counters of all workers of the already-finished
    /// computation).
    pub fn stats(&self) -> Stats {
        match &self.inner {
            StreamInner::Batch(it) => it.stats_total(),
            StreamInner::Parallel { stats, .. } => *stats,
            StreamInner::Ranked(b) => *b.it.inner().stats(),
            StreamInner::MergedRanked { stats, .. } => *stats,
            StreamInner::Approx(it) => it.stats_total(),
            StreamInner::RankedApprox(b) => *b.it.inner().stats(),
        }
    }

    /// Pages fetched so far (block-based execution only). For the
    /// parallel plans this is the sum over all workers; the sequential
    /// multi-run batch driver accounts pages inside its per-run stats.
    pub fn pages_read(&self) -> u64 {
        match &self.inner {
            StreamInner::Batch(_) => 0,
            StreamInner::Parallel { pages, .. } | StreamInner::MergedRanked { pages, .. } => *pages,
            StreamInner::Ranked(b) => b.it.inner().pages_read(),
            StreamInner::Approx(it) => it.pages_read(),
            StreamInner::RankedApprox(b) => b.it.inner().pages_read(),
        }
    }
}

impl Iterator for FdStream<'_> {
    type Item = Result<TupleSet, FdError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_ranked().map(|(set, _)| Ok(set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::canonicalize;
    use crate::priority::RankedFdIter;
    use crate::ranking::{FMax, ImpScores};
    use crate::sim::ExactSim;
    use crate::{AMin, ProbScores};
    use fd_relational::tourist_database;

    #[test]
    fn batch_run_matches_direct_iterator() {
        let db = tourist_database();
        let via_query = canonicalize(FdQuery::over(&db).run().unwrap().into_sets());
        let via_iter = canonicalize(FdIter::new(&db).collect());
        assert_eq!(via_query, via_iter);
    }

    #[test]
    fn run_borrows_and_is_repeatable() {
        let db = tourist_database();
        let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
        let q = FdQuery::over(&db).ranked(FMax::new(&imp)).top_k(3);
        let a = q.run().unwrap();
        let b = q.run().unwrap();
        assert_eq!(a.sets(), b.sets());
        assert_eq!(a.ranks(), b.ranks());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn ranked_query_matches_top_k() {
        let db = tourist_database();
        let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
        let f = FMax::new(&imp);
        let direct: Vec<_> = RankedFdIter::new(&db, &f).take(4).collect();
        let via_query = FdQuery::over(&db)
            .ranked(&f)
            .top_k(4)
            .run()
            .unwrap()
            .into_ranked()
            .unwrap();
        assert_eq!(direct.len(), via_query.len());
        for (d, q) in direct.iter().zip(&via_query) {
            assert_eq!(d.1, q.1);
        }
    }

    #[test]
    fn threshold_and_top_k_combine() {
        let db = tourist_database();
        let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
        let all = FdQuery::over(&db)
            .ranked(FMax::new(&imp))
            .threshold(5.0)
            .run()
            .unwrap();
        assert!(all.ranks().unwrap().iter().all(|&r| r >= 5.0));
        let bounded = FdQuery::over(&db)
            .ranked(FMax::new(&imp))
            .threshold(5.0)
            .top_k(1)
            .run()
            .unwrap();
        assert_eq!(bounded.len(), 1.min(all.len()));
    }

    #[test]
    fn stream_agrees_with_run_in_every_mode() {
        fn check(name: &str, build: impl Fn() -> FdQuery<'static>) {
            let ran = build().run().unwrap().into_sets();
            let streamed: Vec<TupleSet> = build()
                .stream()
                .unwrap()
                .map(|r| r.expect("streams do not fail"))
                .collect();
            assert_eq!(ran, streamed, "{name}");
        }
        let db: &'static Database = Box::leak(Box::new(tourist_database()));
        let imp: &'static ImpScores = Box::leak(Box::new(ImpScores::from_fn(db, |t| t.0 as f64)));
        check("batch", || FdQuery::over(db));
        check("parallel", || FdQuery::over(db).parallel(3));
        check("ranked", || {
            FdQuery::over(db).ranked(FMax::new(imp)).top_k(4)
        });
        check("parallel_ranked", || {
            FdQuery::over(db)
                .ranked(FMax::new(imp))
                .top_k(4)
                .parallel(2)
        });
        check("approx", || {
            FdQuery::over(db).approx(AMin::new(ExactSim, ProbScores::uniform(db, 1.0)), 0.9)
        });
        check("parallel_approx", || {
            FdQuery::over(db)
                .approx(AMin::new(ExactSim, ProbScores::uniform(db, 1.0)), 0.9)
                .parallel(2)
        });
        check("ranked_approx", || {
            FdQuery::over(db)
                .approx(AMin::new(ExactSim, ProbScores::uniform(db, 1.0)), 0.9)
                .ranked(FMax::new(imp))
        });
        check("parallel_ranked_approx", || {
            FdQuery::over(db)
                .approx(AMin::new(ExactSim, ProbScores::uniform(db, 1.0)), 0.9)
                .ranked(FMax::new(imp))
                .parallel(2)
        });
    }

    #[test]
    fn parallel_ranked_is_output_identical_to_sequential() {
        let db = tourist_database();
        // (t.0 % 3) gives heavy rank ties, stressing the canonical tie
        // order on both sides of the comparison.
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 3) as f64);
        let f = FMax::new(&imp);
        let sequential = FdQuery::over(&db).ranked(&f).run().unwrap();
        for threads in [1usize, 2, 4, 8] {
            let parallel = FdQuery::over(&db)
                .ranked(&f)
                .parallel(threads)
                .run()
                .unwrap();
            assert_eq!(sequential.sets(), parallel.sets(), "threads = {threads}");
            assert_eq!(sequential.ranks(), parallel.ranks(), "threads = {threads}");
        }
        // Bounded forms agree too, including at tie boundaries.
        for k in 0..=sequential.len() + 1 {
            let seq_k = FdQuery::over(&db).ranked(&f).top_k(k).run().unwrap();
            let par_k = FdQuery::over(&db)
                .ranked(&f)
                .top_k(k)
                .parallel(3)
                .run()
                .unwrap();
            assert_eq!(seq_k.sets(), par_k.sets(), "k = {k}");
            assert_eq!(seq_k.ranks(), par_k.ranks(), "k = {k}");
        }
        let tau = 1.0;
        let seq_t = FdQuery::over(&db).ranked(&f).threshold(tau).run().unwrap();
        let par_t = FdQuery::over(&db)
            .ranked(&f)
            .threshold(tau)
            .parallel(2)
            .run()
            .unwrap();
        assert_eq!(seq_t.sets(), par_t.sets());
        assert_eq!(seq_t.ranks(), par_t.ranks());
    }

    #[test]
    fn parallel_ranked_aggregates_stats_and_pages() {
        let db = tourist_database();
        let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
        let mut s = FdQuery::over(&db)
            .ranked(FMax::new(&imp))
            .page_size(2)
            .parallel(3)
            .stream()
            .unwrap();
        while s.next().is_some() {}
        assert!(s.pages_read() > 0, "worker pages must aggregate");
        assert!(s.stats().results >= 6, "worker stats must merge");
    }

    #[test]
    fn invalid_combinations_are_typed_errors() {
        let db = tourist_database();
        let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
        assert_eq!(
            FdQuery::over(&db).top_k(1).run().unwrap_err(),
            FdError::RankingRequired { option: ".top_k" }
        );
        assert_eq!(
            FdQuery::over(&db).threshold(1.0).run().unwrap_err(),
            FdError::RankingRequired {
                option: ".threshold"
            }
        );
        assert_eq!(
            FdQuery::over(&db)
                .approx(AMin::new(ExactSim, ProbScores::uniform(&db, 1.0)), 0.5)
                .threshold(1.0)
                .run()
                .unwrap_err(),
            FdError::RankingRequired {
                option: ".threshold"
            }
        );
        assert_eq!(
            FdQuery::over(&db)
                .approx(AMin::new(ExactSim, ProbScores::uniform(&db, 1.0)), 1.5)
                .run()
                .unwrap_err(),
            FdError::InvalidTau { tau: 1.5 }
        );
        assert_eq!(
            FdQuery::over(&db).page_size(0).run().unwrap_err(),
            FdError::InvalidPageSize
        );
        // A non-default InitStrategy only makes sense for the sequential
        // multi-run batch driver; elsewhere it is rejected, not ignored.
        assert_eq!(
            FdQuery::over(&db)
                .init(crate::InitStrategy::ReuseResults)
                .ranked(FMax::new(&imp))
                .run()
                .unwrap_err(),
            FdError::Incompatible {
                left: ".init(ReuseResults/TrimExtend)",
                right: ".ranked"
            }
        );
        assert_eq!(
            FdQuery::over(&db)
                .init(crate::InitStrategy::TrimExtend)
                .approx(AMin::new(ExactSim, ProbScores::uniform(&db, 1.0)), 0.5)
                .run()
                .unwrap_err(),
            FdError::Incompatible {
                left: ".init(ReuseResults/TrimExtend)",
                right: ".approx"
            }
        );
        assert_eq!(
            FdQuery::over(&db)
                .init(crate::InitStrategy::ReuseResults)
                .parallel(2)
                .run()
                .unwrap_err(),
            FdError::Incompatible {
                left: ".init(ReuseResults/TrimExtend)",
                right: ".parallel"
            }
        );
        // The former `.parallel × .ranked` rejection is gone.
        assert!(FdQuery::over(&db)
            .parallel(2)
            .ranked(FMax::new(&imp))
            .run()
            .is_ok());
        assert_eq!(
            FdQuery::over(&db)
                .ranked(FMax::new(&imp))
                .delta_insert(fd_relational::TupleId(0), &[])
                .unwrap_err(),
            FdError::Incompatible {
                left: "delta maintenance",
                right: ".ranked"
            }
        );
    }

    #[test]
    fn page_size_is_honored_in_ranked_and_approx_modes() {
        let db = tourist_database();
        let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
        let mut s = FdQuery::over(&db)
            .ranked(FMax::new(&imp))
            .page_size(2)
            .stream()
            .unwrap();
        while s.next().is_some() {}
        assert!(s.pages_read() > 0, "ranked mode must scan through pages");

        let mut s = FdQuery::over(&db)
            .approx(AMin::new(ExactSim, ProbScores::uniform(&db, 1.0)), 0.9)
            .page_size(2)
            .stream()
            .unwrap();
        while s.next().is_some() {}
        assert!(s.pages_read() > 0, "approx mode must scan through pages");
    }

    #[test]
    fn delta_round_trip_through_the_builder() {
        let mut db = tourist_database();
        let before = canonicalize(FdQuery::over(&db).run().unwrap().into_sets());
        let t = db
            .insert_tuple(fd_relational::RelId(0), vec!["Chile".into(), "arid".into()])
            .unwrap();
        let ins = FdQuery::over(&db).delta_insert(t, &before).unwrap();
        assert!(!ins.added.is_empty());
        db.remove_tuple(t).unwrap();
        let mut mid: Vec<TupleSet> = before.clone();
        mid.extend(ins.added.iter().cloned());
        let del = FdQuery::over(&db).delta_delete(t, &mid).unwrap();
        assert_eq!(del.dropped.len(), ins.added.len());
    }
}
